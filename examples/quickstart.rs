//! Quickstart: write a tiny fault-tolerant parallel program against
//! the lclog runtime, crash a rank mid-run, and watch rollback
//! recovery restore the exact result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lclog::prelude::*;

/// A minimal ring computation: each round, every rank passes a token
/// to its right-hand neighbour and folds what it receives into its
/// state.
#[derive(Clone)]
struct TokenRing {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct RingState {
    round: u64,
    value: u64,
}
// Any state that can cross the wire can be checkpointed.
impl_wire_struct!(RingState { round, value });

const TAG: u32 = 1;

impl RankApp for TokenRing {
    type State = RingState;

    fn init(&self, rank: usize, _n: usize) -> RingState {
        RingState {
            round: 0,
            value: rank as u64 + 1,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut RingState) -> Result<StepStatus, Fault> {
        if state.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let right = (ctx.rank() + 1) % n;
        if ctx.rank() == 0 {
            ctx.send_value(right, TAG, &state.value)?;
            let (_, incoming): (_, u64) = ctx.recv_value(RecvSpec::from(n - 1, TAG))?;
            state.value = state.value.wrapping_mul(31).wrapping_add(incoming);
        } else {
            let (_, incoming): (_, u64) = ctx.recv_value(RecvSpec::from(ctx.rank() - 1, TAG))?;
            state.value = state.value.wrapping_mul(31).wrapping_add(incoming);
            ctx.send_value(right, TAG, &state.value)?;
        }
        state.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &RingState) -> u64 {
        state.value
    }
}

fn main() {
    let app = TokenRing { rounds: 24 };
    let n = 4;

    // 1. A fault-free reference run under the paper's TDI protocol.
    let base = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(5)),
    );
    let clean = Cluster::run(&base, app.clone()).expect("fault-free run");
    println!("fault-free digests: {:x?}", clean.digests);

    // 2. The same run, but rank 2 crashes before its 11th step. Its
    //    incarnation restores the last checkpoint, broadcasts ROLLBACK,
    //    and rolls forward from the other ranks' message logs.
    let faulty_cfg = base.with_failures(FailurePlan::kill_at(2, 11));
    let faulty = Cluster::run(&faulty_cfg, app).expect("recovered run");
    println!("post-crash digests:  {:x?}  (kills: {})", faulty.digests, faulty.kills);

    assert_eq!(clean.digests, faulty.digests, "recovery must be transparent");
    println!(
        "\nrecovery was exact. piggyback: {:.1} identifiers/message \
         ({} messages, {:.1} bytes/message)",
        faulty.stats.avg_ids_per_msg(),
        faulty.stats.sends,
        faulty.stats.avg_bytes_per_msg(),
    );
}
