//! The paper's §II.C motivating scenario: `n` workers send their
//! results to `P_0` to compute a sum, received with `MPI_ANY_SOURCE`.
//! Any delivery order yields the same answer, so the PWD model's
//! per-message order tracking is pure overhead — exactly what TDI
//! relaxes.
//!
//! This example runs the scenario under all three protocols, crashes
//! the master mid-run, verifies every protocol recovers to the same
//! sum, and prints the paper's Fig. 6-style piggyback comparison.
//!
//! ```text
//! cargo run --example master_worker_sum
//! ```

use lclog::prelude::*;
use lclog::runtime::collectives;

#[derive(Clone)]
struct MasterWorkerSum {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct SumState {
    round: u64,
    acc: f64,
}
impl_wire_struct!(SumState { round, acc });

impl RankApp for MasterWorkerSum {
    type State = SumState;

    fn init(&self, rank: usize, _n: usize) -> SumState {
        SumState {
            round: 0,
            acc: 1.0 + rank as f64 * 0.25,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut SumState) -> Result<StepStatus, Fault> {
        if state.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        // Workers contribute; rank 0 gathers with ANY_SOURCE inside
        // `reduce` and the fold is applied in rank order, so the
        // result is identical whatever order messages become
        // deliverable — in normal operation *and* during recovery.
        let tag = 10 + (state.round as u32) * 2;
        let total = collectives::allreduce_sum_f64(ctx, tag, state.acc * 0.9)?;
        state.acc = 0.5 * state.acc + 0.1 * total;
        state.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &SumState) -> u64 {
        state.acc.to_bits()
    }
}

fn main() {
    let n = 6;
    let app = MasterWorkerSum { rounds: 16 };
    println!("master-worker ANY_SOURCE sum, {n} ranks, master crash at step 7\n");
    println!(
        "{:<9} {:>14} {:>12} {:>14} {:>10}",
        "protocol", "ids/message", "bytes/msg", "tracking µs", "recovered"
    );

    let mut digests: Vec<Vec<u64>> = Vec::new();
    for kind in ProtocolKind::ALL {
        let base = ClusterConfig::new(
            n,
            RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(4)),
        );
        let clean = Cluster::run(&base, app.clone()).expect("clean run");
        let faulty = Cluster::run(
            &base.clone().with_failures(FailurePlan::kill_at(0, 7)),
            app.clone(),
        )
        .expect("recovered run");
        let ok = clean.digests == faulty.digests;
        println!(
            "{:<9} {:>14.1} {:>12.1} {:>14.1} {:>10}",
            kind.to_string(),
            faulty.stats.avg_ids_per_msg(),
            faulty.stats.avg_bytes_per_msg(),
            faulty.stats.tracking_ms() * 1e3,
            if ok { "yes" } else { "NO!" }
        );
        assert!(ok, "{kind} failed to recover exactly");
        digests.push(clean.digests);
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    println!("\nall protocols agree on the result; TDI piggybacks the least.");
}
