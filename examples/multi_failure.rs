//! Fig. 2's hard case: several processes fail *simultaneously*, so
//! the message logs each held for the others are lost too. The
//! incarnations must regenerate those messages (and their dependency
//! piggybacks) for each other while rolling forward — and the
//! surviving minority must not be perturbed.
//!
//! ```text
//! cargo run --example multi_failure
//! ```

use lclog::npb::{run_benchmark, Benchmark, Class};
use lclog::prelude::*;

fn main() {
    let n = 5;
    println!("simultaneous triple failure (ranks 1, 2, 3) on LU, {n} ranks\n");
    for kind in [ProtocolKind::Tdi, ProtocolKind::Tag] {
        let base = ClusterConfig::new(
            n,
            RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(5)),
        );
        let clean = run_benchmark(Benchmark::Lu, Class::Test, &base).expect("clean run");
        let plan = FailurePlan::kill_at(1, 9).and_kill(2, 9).and_kill(3, 9);
        let faulty = run_benchmark(Benchmark::Lu, Class::Test, &base.with_failures(plan))
            .expect("recovered run");
        assert_eq!(faulty.kills, 3);
        assert_eq!(
            clean.digests, faulty.digests,
            "{kind}: multi-failure recovery diverged"
        );
        println!(
            "{kind}: 3 simultaneous crashes, {} total messages on the wire, result exact",
            faulty.net_msgs
        );
    }
    println!("\nno orphans, no lost messages, no duplicates — Algorithm 1 held up.");
}
