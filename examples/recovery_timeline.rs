//! Watch a recovery unfold: run LU with a mid-run crash and print the
//! structured fault-tolerance timeline — checkpoints, the crash, the
//! ROLLBACK handshake, log resends, and the recovery-sync point.
//!
//! ```text
//! cargo run --example recovery_timeline
//! ```

use lclog::npb::{run_benchmark, Benchmark, Class};
use lclog::prelude::*;

fn main() {
    let n = 4;
    let cfg = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(6)),
    )
    .with_failures(FailurePlan::kill_at(2, 10))
    .with_trace(true);

    let report = run_benchmark(Benchmark::Lu, Class::Test, &cfg).expect("traced run");
    println!(
        "LU on {n} ranks under TDI; rank 2 crashed once; run took {:.1} ms\n",
        report.wall.as_secs_f64() * 1e3
    );
    for event in &report.timeline {
        println!("{event}");
    }

    // The timeline tells a complete story: every rank spawned, rank 2
    // crashed and its incarnation respawned, broadcast ROLLBACK, got
    // answers from all survivors, and everyone finished.
    let crashes = report
        .timeline
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Crashed { .. }))
        .count();
    let resyncs = report
        .timeline
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RecoverySynced { .. }))
        .count();
    println!("\n{crashes} crash, {resyncs} completed recovery — digests intact.");
}
