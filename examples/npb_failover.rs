//! Run the NPB-style LU, BT and SP kernels with a mid-run crash under
//! the TDI protocol, on the LAN-like reordering fabric — a miniature
//! of the paper's testbed campaign.
//!
//! ```text
//! cargo run --release --example npb_failover
//! ```

use lclog::npb::{run_benchmark, Benchmark, Class};
use lclog::prelude::*;

fn main() {
    let n = 4;
    println!("NPB kernels under TDI with one crash, {n} ranks, LAN-like fabric\n");
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>11} {:>10} {:>9}",
        "bench", "msgs", "bytes/msg", "ids/msg", "clean ms", "crash ms", "exact"
    );
    for bench in Benchmark::ALL {
        let base = ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(6)),
        )
        .with_net(NetConfig::lan_like(7));
        let clean = run_benchmark(bench, Class::Test, &base).expect("clean run");
        let faulty = run_benchmark(
            bench,
            Class::Test,
            &base.with_failures(FailurePlan::kill_at(1, 8)),
        )
        .expect("recovered run");
        let exact = clean.digests == faulty.digests;
        println!(
            "{:<6} {:>8} {:>12.1} {:>12.1} {:>11.1} {:>10.1} {:>9}",
            bench.to_string(),
            faulty.stats.sends,
            faulty.net_bytes as f64 / faulty.net_msgs as f64,
            faulty.stats.avg_ids_per_msg(),
            clean.wall.as_secs_f64() * 1e3,
            faulty.wall.as_secs_f64() * 1e3,
            if exact { "yes" } else { "NO!" }
        );
        assert!(exact, "{bench} recovery diverged");
    }
    println!("\nLU sends the most messages, BT the biggest — and every crash recovered exactly.");
}
