//! Offline stand-in for the `crossbeam` crate: `crossbeam::channel`
//! implemented over `std::sync::mpsc`.

/// Multi-producer channels with timeout-aware receive operations.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns immediately with a message if one is queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Drains and returns all currently queued messages.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_errors() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
