//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the `proptest!` macro, `Strategy` with `prop_map`/`prop_flat_map`,
//! `any::<T>()`, ranges, tuples, `Just`, `prop_oneof!`,
//! `collection::{vec, btree_map}`, `option::of`, `sample::subsequence`
//! and the `prop_assert*` macros.
//!
//! Differences from upstream: case generation is deterministic (seeded
//! from the test name, overridable with the `PROPTEST_SEED` environment
//! variable), there is no shrinking, and regression files are ignored.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for compatibility; this stand-in never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 1024 }
        }
    }

    /// Deterministic SplitMix64 generator used for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for a named test: a fixed base seed (or
        /// `PROPTEST_SEED` when set) mixed with a hash of the name, so
        /// every test sees a distinct but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x4C43_4C4F_475F_5345);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: base ^ h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// derives from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_uint {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let v = ((rng.next_u64() as u128) % span) as $t;
                    self.start + v
                }
            }
        )*};
    }

    impl_range_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_int!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String literals act as regex strategies upstream; here any
    /// literal produces arbitrary short strings (only `".*"` is used
    /// by this workspace, for which that is a faithful sample).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(16) as usize;
            (0..len).map(|_| crate::arbitrary::arbitrary_char(rng)).collect()
        }
    }

    macro_rules! impl_tuple {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Produces an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            arbitrary_char(rng)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only; keeps equality-based roundtrips sane.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    pub(crate) fn arbitrary_char(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally an arbitrary Unicode scalar.
        if rng.below(4) != 0 {
            (0x20 + rng.below(0x5f) as u32) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generates arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// Element-count specification: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive; lo == hi means "exactly lo"
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<T>` with a size specification.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `BTreeMap<K, V>` with a size specification.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            let mut map = BTreeMap::new();
            // Duplicate keys collapse, so maps may come out smaller
            // than requested — matching upstream's "up to" semantics.
            for _ in 0..len {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    /// Generates maps from the `key` and `value` strategies.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`; `None` with probability 1/4.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Wraps `inner` into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing a fixed-size, order-preserving subsequence.
    pub struct Subsequence<T> {
        values: Vec<T>,
        count: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.values.len();
            // Reservoir-free selection: walk the indices, keeping each
            // with the probability needed to end up with `count`.
            let mut picked = Vec::with_capacity(self.count);
            let mut needed = self.count;
            for (i, v) in self.values.iter().enumerate() {
                let remaining = n - i;
                if needed > 0 && rng.below(remaining as u64) < needed as u64 {
                    picked.push(v.clone());
                    needed -= 1;
                }
            }
            picked
        }
    }

    /// Picks `count` distinct elements of `values`, preserving order.
    pub fn subsequence<T: Clone>(values: Vec<T>, count: usize) -> Subsequence<T> {
        assert!(count <= values.len(), "subsequence count exceeds input length");
        Subsequence { values, count }
    }
}

/// Convenience re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `config.cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(v in 3usize..9, f in -1.5f64..2.5) {
            prop_assert!((3..9).contains(&v));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn mapped_values_hold(v in parity()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_vec_and_subsequence(
            ops in crate::collection::vec(prop_oneof![Just(0u8), Just(1u8)], 0..10),
            sub in crate::sample::subsequence(vec![1, 2, 3, 4], 2),
        ) {
            prop_assert!(ops.len() < 10);
            prop_assert!(ops.iter().all(|&o| o < 2));
            prop_assert_eq!(sub.len(), 2);
            prop_assert!(sub[0] < sub[1]);
        }

        #[test]
        fn flat_map_exact_len(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(crate::arbitrary::any::<u8>(), n).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }
}
