//! Offline stand-in for the `parking_lot` crate: poison-ignoring
//! wrappers over `std::sync` with `parking_lot`'s (Result-free) API.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock()` returns the guard directly (poisoning is
/// transparently ignored, matching parking_lot semantics).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. Holds the underlying std guard in an
/// `Option` so [`Condvar::wait_for`] can temporarily take it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking; `None` when the
    /// lock is held elsewhere (poisoning is transparently ignored,
    /// matching parking_lot semantics).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed wait: reports whether the deadline elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Blocks on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks on the guard until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard { inner: g }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard { inner: g }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_and_condvar() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (mx, cv) = &*pair;
        let mut g = mx.lock();
        let start = Instant::now();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
            assert!(start.elapsed() < Duration::from_secs(5));
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
