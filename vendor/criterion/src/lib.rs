//! Offline stand-in for the `criterion` crate: a wall-clock timing
//! harness with text output and no statistical analysis.
//!
//! Mirrors criterion's execution model: when the binary is invoked by
//! `cargo bench` (a `--bench` argument is present) every benchmark runs
//! `sample_size` iterations and prints its mean time; when invoked by
//! `cargo test` each benchmark runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; accepted for compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; cargo test does not.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, criterion: self }
    }

    /// Registers and immediately runs a standalone benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = id.into();
        run_one(&id, 10, self.bench_mode, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed iterations each benchmark runs in bench mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.criterion.bench_mode, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(id: &str, sample_size: usize, bench_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let samples = if bench_mode { sample_size } else { 1 };
    let mut b = Bencher { samples, total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("{id}: no iterations recorded");
    } else if bench_mode {
        let mean = b.total / b.iters as u32;
        println!("{id}: {} iterations, mean {:?}", b.iters, mean);
    } else {
        println!("{id}: ok (test mode, 1 iteration, {:?})", b.total);
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `samples` calls of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Hands the iteration count to `routine`, which returns its own
    /// measured duration — criterion's escape hatch for loops that
    /// must time multi-threaded work as one wall-clock interval.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        let iters = self.samples as u64;
        self.total += routine(iters);
        self.iters += iters;
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
