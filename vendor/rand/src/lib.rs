//! Offline stand-in for the `rand` crate: a SplitMix64-based `StdRng`
//! plus the `Rng`/`SeedableRng` trait surface the workspace uses.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Samples a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as u128) - (low as u128);
                // Modulo bias is negligible for the spans used here and
                // irrelevant for simulation purposes.
                let v = ((rng.next_u64() as u128) % span) as $t;
                low + v
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// High-level sampling methods, blanket-implemented for any `RngCore`.
pub trait Rng: RngCore {
    /// Samples uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Commonly used generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (fast, 64-bit state, good
    /// enough statistical quality for simulation and test workloads).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// `use rand::prelude::*;` convenience re-exports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0u64..1000);
            assert_eq!(x, b.gen_range(0u64..1000));
            assert!(x < 1000);
        }
        let mut c = StdRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| c.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
        let f = c.gen_range(-1.0f64..1.0);
        assert!((-1.0..1.0).contains(&f));
    }
}
