//! Offline stand-in for the `bytes` crate: cheaply-cloneable immutable
//! byte buffers with **zero-copy slicing**, plus a `BytesMut` builder
//! whose `freeze()` hands the accumulated bytes over without copying.
//!
//! A `Bytes` is a `(Arc<Vec<u8>>, offset, len)` view: `clone()` and
//! `slice()` bump a refcount and adjust the window; the backing
//! allocation is freed when the last view drops. This is the property
//! the data plane relies on — one frame allocation per send, with the
//! sender log, the unacked map, and the in-flight envelope all holding
//! windows into it.
//!
//! Under `debug_assertions` the [`audit`] module counts every copying
//! constructor (`copy_from_slice` and friends) so the transport can
//! assert a copy budget per send path.

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::{Arc, OnceLock};

/// Copy-audit counters, live only under `debug_assertions`.
///
/// Every constructor that memcpys bytes into a fresh allocation bumps
/// [`audit::copies`]. Zero-copy operations (`clone`, `slice`,
/// `From<Vec<u8>>`, `BytesMut::freeze`) do not. Code that wants to
/// prove a path copy-free snapshots the counter around it.
pub mod audit {
    #[cfg(debug_assertions)]
    use std::cell::Cell;

    // Per-thread so a copy-budget assertion around a send path cannot
    // be tripped by concurrent traffic on other threads.
    #[cfg(debug_assertions)]
    thread_local! {
        static COPIES: Cell<u64> = const { Cell::new(0) };
        static BYTES_COPIED: Cell<u64> = const { Cell::new(0) };
    }

    /// Copying `Bytes` constructions performed by the current thread.
    #[cfg(debug_assertions)]
    pub fn copies() -> u64 {
        COPIES.with(Cell::get)
    }

    /// Bytes memcpy'd by the current thread's copying constructions.
    #[cfg(debug_assertions)]
    pub fn bytes_copied() -> u64 {
        BYTES_COPIED.with(Cell::get)
    }

    #[cfg(debug_assertions)]
    pub(crate) fn note_copy(n: usize) {
        COPIES.with(|c| c.set(c.get() + 1));
        BYTES_COPIED.with(|c| c.set(c.get() + n as u64));
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub(crate) fn note_copy(_n: usize) {}
}

fn empty_backing() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

/// An immutable, reference-counted window into a contiguous allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Bytes {
    /// Creates a new empty `Bytes` (shared backing, no allocation
    /// beyond the process-wide empty buffer).
    pub fn new() -> Self {
        Bytes { data: empty_backing(), off: 0, len: 0 }
    }

    /// Creates `Bytes` from a static slice (this stand-in copies once;
    /// upstream borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a new `Bytes`. Counted by [`audit`].
    pub fn copy_from_slice(data: &[u8]) -> Self {
        audit::note_copy(data.len());
        let len = data.len();
        Bytes { data: Arc::new(data.to_vec()), off: 0, len }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a slice containing the entire view.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Returns a copy of the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Returns a sub-range of the view as a new `Bytes` **without
    /// copying**: the result shares the backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice out of range: {start}..{end} of {}",
            self.len
        );
        Bytes { data: Arc::clone(&self.data), off: self.off + start, len: end - start }
    }

    /// True when `self` and `other` are windows into the **same
    /// allocation** — the zero-copy invariant probe used by tests and
    /// the debug copy counter. Views of the shared empty backing are
    /// never considered aliased.
    pub fn shares_allocation(&self, other: &Bytes) -> bool {
        self.len > 0 && other.len > 0 && Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of `v` without copying its contents.
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::new(v), off: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == &other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A unique, growable byte buffer; `freeze()` converts it into an
/// immutable [`Bytes`] **without copying** (the `Vec` moves into the
/// shared allocation).
#[derive(Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Capacity of the backing allocation.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Clears contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Appends `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.vec.push(b);
    }

    /// Mutable access to the underlying `Vec` so `Encode` impls (which
    /// write into `&mut Vec<u8>`) can target this buffer directly.
    pub fn as_mut_vec(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytesMut").field("len", &self.vec.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
        assert!(Bytes::new().is_empty());
        let c = b.clone();
        assert_eq!(c, b);
        assert_eq!(b.slice(1..3), Bytes::from_static(&[2, 3]));
    }

    #[test]
    fn slice_is_zero_copy_and_nested() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(s, &[2u8, 3, 4, 5][..]);
        assert!(s.shares_allocation(&b));
        let s2 = s.slice(1..3);
        assert_eq!(s2, &[3u8, 4][..]);
        assert!(s2.shares_allocation(&b));
        // Open-ended ranges work too.
        assert_eq!(b.slice(6..), &[6u8, 7][..]);
        assert_eq!(b.slice(..2), &[0u8, 1][..]);
        // Copying constructors do NOT alias.
        assert!(!Bytes::copy_from_slice(&b).shares_allocation(&b));
    }

    #[test]
    fn freeze_is_zero_copy() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(&[9, 8, 7]);
        m.put_u8(6);
        assert_eq!(m.len(), 4);
        let b = m.freeze();
        assert_eq!(b, &[9u8, 8, 7, 6][..]);
        let s = b.slice(1..3);
        assert!(s.shares_allocation(&b));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn audit_counts_copying_constructors_only() {
        let before = audit::copies();
        let b = Bytes::from(vec![1, 2, 3, 4]); // zero-copy
        let _ = b.clone(); // zero-copy
        let _ = b.slice(1..4); // zero-copy
        let _ = BytesMut::from(vec![5, 6]).freeze(); // zero-copy
        assert_eq!(audit::copies(), before);
        let _ = Bytes::copy_from_slice(&[1, 2]);
        assert_eq!(audit::copies(), before + 1);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_bounds_checked() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..5);
    }
}
