//! Offline stand-in for the `bytes` crate: a cheaply-cloneable,
//! immutable byte buffer backed by `Arc<[u8]>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Creates `Bytes` from a static slice without copying the backing
    /// storage semantics of upstream (this stand-in copies once).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a slice containing the entire buffer.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Returns a copy of the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a sub-range of the buffer as a new `Bytes` (copies).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes { data: Arc::from(&self.data[range]) }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
        assert!(Bytes::new().is_empty());
        let c = b.clone();
        assert_eq!(c, b);
        assert_eq!(b.slice(1..3), Bytes::from_static(&[2, 3]));
    }
}
