//! Seeded chaos soak for the failure-detection stack: fixed seeds,
//! random kills, a hostile fabric with heavy-tailed delays, and *no*
//! scripted kill notifications — every death must be detected,
//! certified, fenced, and recovered from with exactly-once digests and
//! zero false kills at the default threshold.
//!
//! These runs are `#[ignore]`d for the ordinary `cargo test` pass and
//! executed by the CI chaos-soak step:
//!
//! ```sh
//! cargo test --release --test detector_soak -- --ignored
//! ```

use std::time::Duration;

use lclog::npb::{run_benchmark, Benchmark, Class};
use lclog::prelude::*;

/// The fixed CI seed set. Deliberately spread across protocols and
/// benchmarks (seed % 3 picks each) so one soak pass covers TDI, TAG,
/// and TEL under detected failures.
const SEEDS: [u64; 8] = [
    0x0001, 0x00a5, 0x0b1e, 0xc0de, 0xd00d, 0x1234, 0x9e37, 0xf00d,
];

fn protocol_for(seed: u64) -> ProtocolKind {
    match seed % 3 {
        0 => ProtocolKind::Tdi,
        1 => ProtocolKind::Tag,
        _ => ProtocolKind::Tel,
    }
}

fn bench_for(seed: u64) -> Benchmark {
    match (seed / 3) % 3 {
        0 => Benchmark::Lu,
        1 => Benchmark::Bt,
        _ => Benchmark::Sp,
    }
}

#[test]
#[ignore = "chaos soak: run via the CI soak step (--ignored)"]
fn soak_detected_random_failures_across_seeds() {
    let n = 4;
    for seed in SEEDS {
        let kind = protocol_for(seed);
        let bench = bench_for(seed);
        let base = ClusterConfig::new(
            n,
            RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(4)),
        );
        let clean = run_benchmark(bench, Class::Test, &base).expect("clean run");
        let chaotic = ClusterConfig::new(
            n,
            RunConfig::new(kind)
                .with_checkpoint(CheckpointPolicy::EverySteps(4))
                .with_detector(DetectorConfig::default()),
        )
        .with_net(NetConfig::direct().with_chaos(
            ChaosConfig::seeded(seed)
                .with_drop(0.05)
                .with_duplicate(0.05)
                .with_corrupt(0.05)
                .with_heavy_tail(
                    0.02,
                    Duration::from_millis(2),
                    1.0,
                    Duration::from_millis(20),
                ),
        ))
        .with_failures(FailurePlan::seeded_random(seed, n, 2, 14));
        let faulty = run_benchmark(bench, Class::Test, &chaotic)
            .unwrap_or_else(|e| panic!("soak run failed: {kind}/{bench:?} seed {seed:#x}: {e}"));
        assert_eq!(
            clean.digests, faulty.digests,
            "{kind}/{bench:?} seed {seed:#x}"
        );
        let det = faulty.detector.expect("detector report");
        eprintln!("{kind}/{bench:?} seed {seed:#x}: {det:?}");
        assert_eq!(det.false_kills, 0, "{kind}/{bench:?} seed {seed:#x}: {det:?}");
        assert_eq!(
            det.gate_timeouts, 0,
            "{kind}/{bench:?} seed {seed:#x}: {det:?}"
        );
    }
}

/// The fencing property end to end: under pure false-suspicion stress
/// (an aggressively low threshold plus heavy-tailed delays that *will*
/// cross it), fenced incarnations must drop volatile state and rejoin
/// — digests still exactly match the failure-free run even though the
/// kills are all false.
#[test]
#[ignore = "chaos soak: run via the CI soak step (--ignored)"]
fn soak_false_suspicion_fencing_is_safe() {
    let n = 4;
    for seed in [0x0aceu64, 0x0bed, 0x0cab, 0x0dad] {
        let base = ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
        );
        let clean = run_benchmark(Benchmark::Lu, Class::Test, &base).expect("clean run");
        // Threshold 2.0 detects after ~9 ms of silence; a 40 ms delay
        // cap guarantees some stalls read as deaths.
        let twitchy = ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi)
                .with_checkpoint(CheckpointPolicy::EverySteps(4))
                .with_detector(DetectorConfig::default().with_threshold(2.0)),
        )
        .with_net(NetConfig::direct().with_chaos(
            ChaosConfig::seeded(seed).with_heavy_tail(
                0.05,
                Duration::from_millis(4),
                1.2,
                Duration::from_millis(40),
            ),
        ));
        let faulty = run_benchmark(Benchmark::Lu, Class::Test, &twitchy)
            .unwrap_or_else(|e| panic!("false-suspicion run failed: seed {seed:#x}: {e}"));
        assert_eq!(clean.digests, faulty.digests, "seed {seed:#x}");
        if let Some(det) = &faulty.detector {
            eprintln!("seed {seed:#x}: {det:?}");
        }
    }
}
