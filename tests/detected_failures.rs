//! Detected failures end to end: the detector + membership + fencing
//! stack replaces announced failures, and recovery must still be
//! exactly-once.

use std::time::Duration;

use lclog::npb::{run_benchmark, Benchmark, Class};
use lclog::prelude::*;

#[test]
fn smoke_detected_single_failure() {
    let n = 4;
    let base = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
    );
    let clean = run_benchmark(Benchmark::Lu, Class::Test, &base).expect("clean run");
    let detected = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi)
            .with_checkpoint(CheckpointPolicy::EverySteps(4))
            .with_detector(DetectorConfig::default()),
    )
    .with_failures(FailurePlan::kill_at(1, 9));
    let faulty = run_benchmark(Benchmark::Lu, Class::Test, &detected).expect("detected run");
    assert_eq!(clean.digests, faulty.digests);
    let det = faulty.detector.expect("detector report");
    eprintln!("detector report: {det:?}");
    assert!(det.declarations >= 1);
    assert_eq!(det.false_kills, 0);
}

// Detected failures under a hostile fabric: seeded random kills plus a
// chaos schedule with loss, duplication, corruption, and a seeded
// heavy-tailed (lognormal) delay distribution. The delay cap (20 ms)
// sits below the default threshold's detection silence (~37 ms), so
// the detector must ride out every stall without a false kill while
// still certifying the real deaths — and recovery must stay
// exactly-once.
#[test]
fn detected_seeded_chaos_with_heavy_tail() {
    let n = 4;
    let base = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
    );
    let clean = run_benchmark(Benchmark::Lu, Class::Test, &base).expect("clean run");
    for seed in [0xfeed_u64, 0xbeef, 0x5eed] {
        let chaotic = ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi)
                .with_checkpoint(CheckpointPolicy::EverySteps(4))
                .with_detector(DetectorConfig::default()),
        )
        .with_net(NetConfig::direct().with_chaos(
            ChaosConfig::seeded(seed)
                .with_drop(0.05)
                .with_duplicate(0.05)
                .with_corrupt(0.05)
                .with_heavy_tail(
                    0.02,
                    Duration::from_millis(2),
                    1.0,
                    Duration::from_millis(20),
                ),
        ))
        .with_failures(FailurePlan::seeded_random(seed, n, 2, 14));
        let faulty =
            run_benchmark(Benchmark::Lu, Class::Test, &chaotic).expect("detected chaotic run");
        assert_eq!(clean.digests, faulty.digests, "seed {seed:#x}");
        let det = faulty.detector.expect("detector report");
        eprintln!("seed {seed:#x}: {det:?}");
        assert_eq!(det.false_kills, 0, "seed {seed:#x}: {det:?}");
        assert_eq!(det.gate_timeouts, 0, "seed {seed:#x}: {det:?}");
    }
}

// Cascading failure: rank 2 dies while rank 1's recovery is in flight,
// i.e. while rank 1 may still be owed a RESPONSE from rank 2. The
// detector must certify the second death, and the supervised-recovery
// re-drive must rebroadcast ROLLBACK so rank 1's `Replaying` cannot
// wedge on the dead responder. Every recovering incarnation must reach
// `synced`, and the digests must match the failure-free run.
#[test]
fn cascading_failure_survivor_dies_mid_recovery() {
    let n = 4;
    let base = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
    );
    let clean = run_benchmark(Benchmark::Lu, Class::Test, &base).expect("clean run");
    let cascading = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi)
            .with_checkpoint(CheckpointPolicy::EverySteps(4))
            .with_detector(DetectorConfig::default()),
    )
    .with_failures(FailurePlan::kill_at(1, 8).and_kill(2, 8))
    .with_trace(true);
    let faulty = run_benchmark(Benchmark::Lu, Class::Test, &cascading).expect("cascading run");
    assert_eq!(clean.digests, faulty.digests);
    let det = faulty.detector.as_ref().expect("detector report");
    eprintln!("cascading report: {det:?}");
    assert!(det.declarations >= 2, "{det:?}");
    assert_eq!(det.false_kills, 0, "{det:?}");
    assert_recovering_incarnations_synced(&faulty);
}

// Repeated failure of the same rank: its second incarnation is killed
// mid-recovery too, so detection and the membership floor must advance
// twice for one rank and the third incarnation must finish the job.
#[test]
fn repeated_incarnation_failure_detected() {
    let n = 4;
    let base = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
    );
    let clean = run_benchmark(Benchmark::Lu, Class::Test, &base).expect("clean run");
    let repeated = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi)
            .with_checkpoint(CheckpointPolicy::EverySteps(4))
            .with_detector(DetectorConfig::default()),
    )
    .with_failures(FailurePlan::kill_at(1, 8).and_kill_incarnation(1, 4, 2))
    .with_trace(true);
    let faulty = run_benchmark(Benchmark::Lu, Class::Test, &repeated).expect("repeated run");
    assert_eq!(clean.digests, faulty.digests);
    let det = faulty.detector.as_ref().expect("detector report");
    eprintln!("repeated report: {det:?}");
    assert!(det.declarations >= 2, "{det:?}");
    assert_eq!(det.false_kills, 0, "{det:?}");
    assert_recovering_incarnations_synced(&faulty);
}

// Every incarnation the timeline shows recovering (spawned with
// incarnation > 1 and not itself killed later) must log a transition
// into `synced` before its successor spawns or the run ends.
fn assert_recovering_incarnations_synced(report: &RunReport) {
    let n = report.digests.len();
    for rank in 0..n {
        let mut recovering: Option<u64> = None;
        let mut last_done: Option<u64> = None;
        for ev in report.timeline.iter().filter(|e| e.rank == rank) {
            match &ev.kind {
                EventKind::Spawned { incarnation } => {
                    if let Some(inc) = recovering {
                        panic!("rank {rank} incarnation {inc} never synced before respawn");
                    }
                    if *incarnation > 1 {
                        recovering = Some(*incarnation);
                    }
                }
                EventKind::Crashed { .. } => {
                    // A recovering incarnation killed mid-recovery is
                    // excused — its successor takes over the claim.
                    recovering = None;
                }
                EventKind::RecoveryTransition { to, .. } if *to == "synced" => {
                    recovering = None;
                }
                EventKind::Done { step } => last_done = Some(*step),
                _ => {}
            }
        }
        assert!(
            recovering.is_none(),
            "rank {rank} still recovering (incarnation {recovering:?}) at end of run"
        );
        assert!(last_done.is_some(), "rank {rank} never finished");
    }
}
