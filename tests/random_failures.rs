//! Property-based failure injection: for randomized victims, crash
//! steps, checkpoint cadences, and protocols, recovery must always
//! reproduce the fault-free digests.

use lclog::npb::{run_benchmark, Benchmark, Class};
use lclog::prelude::*;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Tdi),
        Just(ProtocolKind::Tag),
        Just(ProtocolKind::Tel),
    ]
}

fn bench_strategy() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Lu),
        Just(Benchmark::Bt),
        Just(Benchmark::Sp),
    ]
}

proptest! {
    // Cluster runs take ~100 ms each (two per case), so keep the case
    // count modest; the space is still explored across CI runs thanks
    // to proptest's RNG persistence.
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_single_failure_recovery_is_exact(
        kind in kind_strategy(),
        bench in bench_strategy(),
        victim in 0usize..4,
        at_step in 1u64..18,
        ckpt in 2u64..8,
    ) {
        let n = 4;
        let base = ClusterConfig::new(
            n,
            RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(ckpt)),
        );
        let clean = run_benchmark(bench, Class::Test, &base).expect("clean run");
        let faulty = run_benchmark(
            bench,
            Class::Test,
            &base.with_failures(FailurePlan::kill_at(victim, at_step)),
        )
        .expect("recovered run");
        prop_assert_eq!(&clean.digests, &faulty.digests,
            "{}/{} victim {} step {} ckpt {}", kind, bench, victim, at_step, ckpt);
    }

    // Chaos fabric: seeded loss, duplication, and corruption (up to
    // 10% each) plus one random kill. The transport's ack/retransmit,
    // CRC, and dedup layers must hide all of it — the digests of every
    // rank equal the fault-free run's, i.e. end-to-end exactly-once.
    #[test]
    fn prop_chaos_schedule_recovery_is_exact(
        kind in kind_strategy(),
        bench in bench_strategy(),
        chaos_seed in any::<u64>(),
        drop_p in 0.0f64..0.10,
        dup_p in 0.0f64..0.10,
        corrupt_p in 0.0f64..0.10,
        victim in 0usize..4,
        at_step in 1u64..18,
    ) {
        let n = 4;
        let base = ClusterConfig::new(
            n,
            RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(4)),
        );
        let clean = run_benchmark(bench, Class::Test, &base).expect("clean run");
        let chaotic = base
            .with_net(NetConfig::direct().with_chaos(
                ChaosConfig::seeded(chaos_seed)
                    .with_drop(drop_p)
                    .with_duplicate(dup_p)
                    .with_corrupt(corrupt_p),
            ))
            .with_failures(FailurePlan::kill_at(victim, at_step));
        let faulty = run_benchmark(bench, Class::Test, &chaotic).expect("chaotic run");
        prop_assert_eq!(&clean.digests, &faulty.digests,
            "{}/{} seed {:#x} drop {:.3} dup {:.3} corrupt {:.3} victim {} step {}",
            kind, bench, chaos_seed, drop_p, dup_p, corrupt_p, victim, at_step);
        prop_assert_eq!(faulty.kills, 1);
    }

    // The recovery state machine must be one-way within an
    // incarnation: once a rank's timeline shows a transition into
    // `synced`, no further recovery transition — in particular no
    // re-entry into `replaying` — may appear for that rank until its
    // next respawn (a `Spawned` event starts a fresh machine).
    #[test]
    fn prop_recovery_never_reenters_replaying_after_sync(
        kind in kind_strategy(),
        seed in any::<u64>(),
    ) {
        let n = 4;
        let base = ClusterConfig::new(
            n,
            RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(4)),
        );
        let clean = run_benchmark(Benchmark::Lu, Class::Test, &base).expect("clean run");
        let traced = base
            .with_failures(FailurePlan::seeded_random(seed, n, 2, 14))
            .with_trace(true);
        let faulty =
            run_benchmark(Benchmark::Lu, Class::Test, &traced).expect("recovered run");
        prop_assert_eq!(&clean.digests, &faulty.digests, "{} seed {:#x}", kind, seed);
        for rank in 0..n {
            let mut synced = false;
            for ev in faulty.timeline.iter().filter(|e| e.rank == rank) {
                match &ev.kind {
                    EventKind::Spawned { .. } => synced = false,
                    EventKind::RecoveryTransition { from, to } => {
                        prop_assert!(
                            !synced,
                            "rank {} took {} -> {} after syncing (seed {:#x})",
                            rank, from, to, seed
                        );
                        if *to == "synced" {
                            synced = true;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn prop_double_failure_recovery_is_exact_tdi(
        victims in proptest::sample::subsequence(vec![0usize, 1, 2, 3], 2),
        at_step in 2u64..16,
        stagger in 0u64..4,
    ) {
        let n = 4;
        let base = ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi)
                .with_checkpoint(CheckpointPolicy::EverySteps(4)),
        );
        let clean = run_benchmark(Benchmark::Lu, Class::Test, &base).expect("clean run");
        let plan = FailurePlan::kill_at(victims[0], at_step)
            .and_kill(victims[1], at_step + stagger);
        let faulty = run_benchmark(Benchmark::Lu, Class::Test, &base.with_failures(plan))
            .expect("recovered run");
        prop_assert_eq!(&clean.digests, &faulty.digests,
            "victims {:?} step {} stagger {}", victims, at_step, stagger);
    }
}
