//! The paper's worked scenarios (Figs. 1–3), driven end-to-end
//! through the facade crate.

use lclog::core::{make_protocol, DeliveryVerdict, ProtocolKind};
use lclog::npb::{run_benchmark, Benchmark, Class};
use lclog::prelude::*;

// ---------------------------------------------------------------------------
// Fig. 1 — the dependency chain m0..m5 at the protocol level.
// ---------------------------------------------------------------------------

#[test]
fn fig1_dependency_chain_under_tdi() {
    // Processes P0..P3; messages (paper numbering):
    //   m0: P0 -> P1,   m1: P3 -> P2,  m2: P2 -> P1 (after m1),
    //   m3: P1 -> P2 (after m0, m2),   m4: P3 -> P2,
    //   m5: P2 -> P1 (after m3, m4).
    let n = 4;
    let mut p0 = make_protocol(ProtocolKind::Tdi, 0, n);
    let mut p1 = make_protocol(ProtocolKind::Tdi, 1, n);
    let mut p2 = make_protocol(ProtocolKind::Tdi, 2, n);
    let mut p3 = make_protocol(ProtocolKind::Tdi, 3, n);

    let m0 = p0.on_send(1, 1);
    let m1 = p3.on_send(2, 1);
    p2.on_deliver(3, 1, &m1.piggyback).unwrap();
    let m2 = p2.on_send(1, 1);

    // §III.A: m0 and m2 both depend on interval 0 of P1 — either
    // delivery order is admissible. Take the "wrong" one.
    assert_eq!(p1.deliverable(2, 1, &m2.piggyback), DeliveryVerdict::Deliver);
    p1.on_deliver(2, 1, &m2.piggyback).unwrap();
    p1.on_deliver(0, 1, &m0.piggyback).unwrap();

    let m3 = p1.on_send(2, 1);
    p2.on_deliver(1, 1, &m3.piggyback).unwrap();
    let m4 = p3.on_send(2, 2);
    p2.on_deliver(3, 2, &m4.piggyback).unwrap();
    let m5 = p2.on_send(1, 2);

    // §III.A's worked vector: m5's dependency set simplifies to
    // V(0, 2, 2, 1) — and the m5 piggyback is exactly n identifiers.
    assert_eq!(m5.id_count, n as u64);
    // A fresh incarnation of P1 cannot deliver m5 until it has
    // delivered 2 messages (the "cannot deliver m5 until it has
    // delivered other 2 messages" rule).
    let mut p1_fresh = make_protocol(ProtocolKind::Tdi, 1, n);
    assert_eq!(
        p1_fresh.deliverable(2, 2, &m5.piggyback),
        DeliveryVerdict::Wait
    );
    p1_fresh.on_deliver(2, 1, &m2.piggyback).unwrap();
    assert_eq!(
        p1_fresh.deliverable(2, 2, &m5.piggyback),
        DeliveryVerdict::Wait,
        "one delivery is not enough"
    );
    p1_fresh.on_deliver(0, 1, &m0.piggyback).unwrap();
    assert_eq!(
        p1_fresh.deliverable(2, 2, &m5.piggyback),
        DeliveryVerdict::Deliver,
        "after two deliveries m5 becomes deliverable"
    );
}

// ---------------------------------------------------------------------------
// Fig. 2 — multiple simultaneous failures, end to end.
// ---------------------------------------------------------------------------

#[test]
fn fig2_simultaneous_failures_every_protocol() {
    let n = 5;
    for kind in ProtocolKind::ALL {
        let base = ClusterConfig::new(
            n,
            RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(5)),
        );
        let clean = run_benchmark(Benchmark::Lu, Class::Test, &base).expect("clean");
        let plan = FailurePlan::kill_at(1, 8).and_kill(2, 8).and_kill(3, 8);
        let faulty = run_benchmark(Benchmark::Lu, Class::Test, &base.with_failures(plan))
            .expect("recovered");
        assert_eq!(faulty.kills, 3, "{kind}");
        assert_eq!(clean.digests, faulty.digests, "{kind}: diverged");
    }
}

// ---------------------------------------------------------------------------
// Fig. 3 — repetitive messages during rolling forward are discarded.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct CountingApp {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct CountState {
    round: u64,
    sum: u64,
    delivered: u64,
}
impl_wire_struct!(CountState {
    round,
    sum,
    delivered
});

impl RankApp for CountingApp {
    type State = CountState;

    fn init(&self, rank: usize, _n: usize) -> CountState {
        CountState {
            round: 0,
            sum: rank as u64,
            delivered: 0,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut CountState) -> Result<StepStatus, Fault> {
        if state.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let right = (ctx.rank() + 1) % n;
        let left = (ctx.rank() + n - 1) % n;
        // Everyone sends, then receives: exactly one message from the
        // left per round. If a repetitive message were ever delivered
        // twice, `delivered` would exceed rounds and digests diverge.
        ctx.send_value(right, 5, &(state.sum + state.round))?;
        let (_, v): (_, u64) = ctx.recv_value(RecvSpec::from(left, 5))?;
        state.sum = state.sum.wrapping_mul(33).wrapping_add(v);
        state.delivered += 1;
        state.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &CountState) -> u64 {
        state.sum ^ (state.delivered << 32)
    }
}

#[test]
fn fig3_repetitive_messages_are_discarded_exactly_once_semantics() {
    let n = 4;
    let app = CountingApp { rounds: 15 };
    let base = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
    );
    let clean = Cluster::run(&base, app.clone()).expect("clean");
    // Kill rank 1 right after it (re)sends: its incarnation rolls
    // forward and re-sends messages its neighbour already delivered.
    let faulty = Cluster::run(&base.with_failures(FailurePlan::kill_at(1, 7)), app)
        .expect("recovered");
    assert_eq!(clean.digests, faulty.digests);
    // Delivered counts embedded in the digest prove exactly-once
    // delivery despite duplicate transmissions.
}

// ---------------------------------------------------------------------------
// Cross-crate sanity through the facade.
// ---------------------------------------------------------------------------

#[test]
fn facade_reexports_compose() {
    let cfg = ClusterConfig::new(2, RunConfig::new(ProtocolKind::Tel));
    let report = run_benchmark(Benchmark::Sp, Class::Test, &cfg).expect("run");
    assert_eq!(report.digests.len(), 2);
    assert!(report.stats.sends > 0);
}
