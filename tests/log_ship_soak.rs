//! Seeded soak for durable log shipping: fixed seeds, overlapping
//! transient partitions, rank kills (including node-loss wipes),
//! storage outages, transient remote errors and latency spikes — all
//! at once. Every run must finish with exactly-once digests, a spill
//! buffer that never exceeded its byte bound, and a fully caught-up
//! remote.
//!
//! These runs are `#[ignore]`d for the ordinary `cargo test` pass and
//! executed by the CI log-ship soak step:
//!
//! ```sh
//! cargo test --release --test log_ship_soak -- --ignored
//! ```

use std::time::Duration;

use lclog::npb::{run_benchmark, Benchmark, Class};
use lclog::prelude::*;

const SEEDS: [u64; 8] = [
    0x0007, 0x00b5, 0x0dad, 0xbeef, 0xcafe, 0x2468, 0x8d31, 0xfade,
];

// Must sit above the un-sheddable floor: the newest generation per
// rank (what a node-loss restore needs) is never shed, and Test-class
// checkpoint images run tens of KiB each across 4 ranks.
const SPILL_LIMIT: usize = 192 * 1024;

fn protocol_for(seed: u64) -> ProtocolKind {
    match seed % 3 {
        0 => ProtocolKind::Tdi,
        1 => ProtocolKind::Tag,
        _ => ProtocolKind::Tel,
    }
}

fn bench_for(seed: u64) -> Benchmark {
    match (seed / 3) % 3 {
        0 => Benchmark::Lu,
        1 => Benchmark::Bt,
        _ => Benchmark::Sp,
    }
}

#[test]
#[ignore = "log-ship soak: run via the CI soak step (--ignored)"]
fn soak_log_shipping_across_seeds() {
    let n = 4;
    for seed in SEEDS {
        let kind = protocol_for(seed);
        let bench = bench_for(seed);
        let run_cfg = || RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(4));
        let clean = run_benchmark(bench, Class::Test, &ClusterConfig::new(n, run_cfg()))
            .expect("clean run");

        // One ordinary kill a third of the way in, one node-loss wipe
        // two thirds in (several checkpoints deep), on different
        // ranks.
        let total = match bench {
            Benchmark::Lu => {
                let (_, _, gnz, iters) = Class::Test.lu_dims();
                iters * (2 * gnz as u64 + 1)
            }
            Benchmark::Bt => Class::Test.adi_dims().1 * 4,
            Benchmark::Sp => Class::Test.adi_dims().1 * 6,
            // bench_for never selects the remaining benchmarks.
            _ => Class::Test.adi_dims().1 * 4,
        };
        let kill_rank = (seed % n as u64) as usize;
        let wipe_rank = ((seed + 1) % n as u64) as usize;
        let failures = FailurePlan::kill_at(kill_rank, (total / 3).max(2) + seed % 2)
            .and_kill_wipe(wipe_rank, (2 * total / 3).max(5) + seed % 2);

        // Overlapping transient partitions plus light envelope chaos.
        let net_chaos = ChaosConfig::seeded(seed ^ 0x5011)
            .with_drop(0.01)
            .with_duplicate(0.01)
            .with_partition(Partition {
                group: vec![0, 1],
                from_seq: 10,
                to_seq: 25,
            })
            .with_partition(Partition {
                group: vec![1, 2],
                from_seq: 18,
                to_seq: 35,
            });

        // A mid-run backend outage riding on transient errors and
        // latency spikes.
        let storage_chaos = StorageChaos::seeded(seed ^ 0x57A6)
            .with_transient(0.05)
            .with_latency_spike(0.05, Duration::from_micros(500))
            .with_outage(20, 90);
        let (remote, handle) = RemoteConfig::faulty(storage_chaos);
        let replicator = ReplicatorConfig {
            retry_initial: Duration::from_micros(200),
            retry_cap: Duration::from_millis(2),
            breaker_cooldown: Duration::from_millis(2),
            spill_limit_bytes: SPILL_LIMIT,
            ..ReplicatorConfig::default()
        };

        let mut cfg = ClusterConfig::new(n, run_cfg())
            .with_net(NetConfig::direct().with_chaos(net_chaos))
            .with_failures(failures)
            .with_remote(remote.with_replicator(replicator));
        cfg.max_wall = Duration::from_secs(300);

        let report = run_benchmark(bench, Class::Test, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed:#06x} ({kind}, {bench:?}): {e}"));
        assert_eq!(
            report.digests, clean.digests,
            "seed {seed:#06x} ({kind}, {bench:?}): digests diverged"
        );
        assert_eq!(report.kills, 2, "seed {seed:#06x}: both kills must fire");

        let stats = report.replicator.as_ref().expect("replicator ran");
        assert!(
            stats.spill_peak_bytes <= SPILL_LIMIT,
            "seed {seed:#06x}: spill peak {} exceeded the {SPILL_LIMIT} byte bound",
            stats.spill_peak_bytes
        );
        assert!(
            stats.restores >= 1,
            "seed {seed:#06x}: the wiped rank must restore from remote: {stats:?}"
        );
        assert_eq!(
            stats.unsynced_at_exit, 0,
            "seed {seed:#06x}: replication must catch up: {stats:?}"
        );

        // The final manifest certifies every object it promises.
        let store = handle.inner();
        let manifest = Manifest::decode(
            &store
                .get(MANIFEST_KEY)
                .unwrap()
                .expect("manifest present after catch-up"),
        )
        .expect("manifest intact");
        for entry in &manifest.entries {
            let blob = store.get(&entry.key).unwrap().expect("object present");
            assert!(
                Manifest::certifies(entry, &blob),
                "seed {seed:#06x}: {} not certified",
                entry.key
            );
        }
    }
}
