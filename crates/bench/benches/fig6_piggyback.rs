//! Criterion companion to Fig. 6: times a fault-free LU/BT/SP run per
//! protocol (the piggyback *volume* itself is printed by the
//! `reproduce` binary; here Criterion tracks the end-to-end cost the
//! volume induces).

use criterion::{criterion_group, criterion_main, Criterion};
use lclog_core::ProtocolKind;
use lclog_npb::{run_benchmark, Benchmark, Class};
use lclog_runtime::{CheckpointPolicy, ClusterConfig, RunConfig};

fn bench_piggyback(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_piggyback");
    group.sample_size(10);
    for bench in Benchmark::ALL {
        for kind in ProtocolKind::ALL {
            group.bench_function(format!("{bench}/{kind}/n4"), |b| {
                b.iter(|| {
                    let cfg = ClusterConfig::new(
                        4,
                        RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(8)),
                    );
                    let report = run_benchmark(bench, Class::Test, &cfg).expect("run");
                    assert!(report.stats.sends > 0);
                    report.stats.piggyback_ids
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_piggyback);
criterion_main!(benches);
