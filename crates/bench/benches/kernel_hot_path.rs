//! Per-operation cost of the kernel hot path — `app_send`, `ingest`,
//! `try_deliver` — with and without a concurrent communication thread
//! hammering the same kernel (the contention the paper's Fig. 4b
//! architecture is supposed to avoid).
//!
//! LOCK-FREE DATA PLANE VARIANT: the kernel is a `Sync` facade over
//! three separately-locked layers plus a lock-free reliability facade
//! (per-peer transport shards, SPSC stage rings — DESIGN.md §11), so
//! app-side sends (`tracking` lock + atomics) and comm-side ingest
//! (`delivery` lock + shards) proceed concurrently instead of
//! serializing on a whole-kernel mutex.
//!
//! Receiver-side servicing (draining the fabric, delivering, and the
//! periodic checkpoint that garbage-collects the sender log) runs
//! *untimed* in `iter_batched` setup for the uncontended numbers, so
//! the timed closure is exactly one kernel operation against bounded
//! state.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lclog_core::ProtocolKind;
use lclog_runtime::{Kernel, RecvSpec, RunConfig};
use lclog_simnet::{NetConfig, SimNet};
use lclog_stable::{CheckpointStore, MemStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const PAYLOAD: usize = 256;
/// Deliveries between receiver checkpoints (sender-log GC cadence).
const CKPT_EVERY: u64 = 1024;

struct Pair {
    _net: SimNet,
    k0: Arc<Kernel>,
    k1: Arc<Kernel>,
    ep0: lclog_simnet::Endpoint,
    ep1: lclog_simnet::Endpoint,
    delivered: u64,
    ckpts: u64,
}

fn pair() -> Pair {
    let net = SimNet::new(3, NetConfig::direct());
    let store = CheckpointStore::new(Arc::new(MemStore::new()));
    let ep0 = net.attach(0);
    let ep1 = net.attach(1);
    let k0 = Arc::new(Kernel::new(
        0,
        2,
        RunConfig::new(ProtocolKind::Tdi),
        net.clone(),
        store.clone(),
    ));
    let k1 = Arc::new(Kernel::new(
        1,
        2,
        RunConfig::new(ProtocolKind::Tdi),
        net.clone(),
        store,
    ));
    Pair {
        _net: net,
        k0,
        k1,
        ep0,
        ep1,
        delivered: 0,
        ckpts: 0,
    }
}

impl Pair {
    /// One round of the comm-thread role for both ranks: drain fabric
    /// inboxes into the kernels, deliver on rank 1, checkpoint every
    /// `CKPT_EVERY` deliveries so rank 0's sender log stays bounded.
    fn service(&mut self) {
        while let Ok(env) = self.ep1.try_recv() {
            self.k1.ingest(env);
        }
        while self.k1.try_deliver(RecvSpec::any()).is_some() {
            self.delivered += 1;
            if self.delivered.is_multiple_of(CKPT_EVERY) {
                self.ckpts += 1;
                self.k1.do_checkpoint(Vec::new(), self.ckpts);
            }
        }
        while let Ok(env) = self.ep0.try_recv() {
            self.k0.ingest(env);
        }
    }
}

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_hot_path");
    group.sample_size(20_000);

    let data = bytes::Bytes::from(vec![7u8; PAYLOAD]);

    // app_send with nobody else touching the kernel; receiver-side
    // servicing happens untimed between operations.
    {
        let mut p = pair();
        let k0 = Arc::clone(&p.k0);
        let data = data.clone();
        group.bench_function("app_send/uncontended", |b| {
            b.iter_batched(
                || p.service(),
                |()| k0.app_send(1, 0, data.clone(), false),
                BatchSize::SmallInput,
            )
        });
    }

    // app_send while a comm thread concurrently ingests acks, delivers
    // on the peer, checkpoints, and drives retransmission timers —
    // the Fig. 4b comm/app split exercising the same kernel.
    {
        let mut p = pair();
        let k0 = Arc::clone(&p.k0);
        let stop = Arc::new(AtomicBool::new(false));
        let comm = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    p.service();
                    p.k0.tick();
                    p.k1.tick();
                    std::hint::spin_loop();
                }
            })
        };
        let data = data.clone();
        group.bench_function("app_send/contended", |b| {
            b.iter(|| k0.app_send(1, 0, data.clone(), false))
        });
        stop.store(true, Ordering::Relaxed);
        comm.join().unwrap();
    }

    // Receiver side: one envelope ingested and delivered, with the
    // send + fabric hop and ack-return untimed in setup.
    {
        let mut p = pair();
        let k1 = Arc::clone(&p.k1);
        group.bench_function("ingest_try_deliver/uncontended", |b| {
            b.iter_batched(
                || {
                    p.service();
                    p.k0.app_send(1, 0, data.clone(), false);
                    p.ep1.try_recv().expect("direct fabric delivers")
                },
                |env| {
                    k1.ingest(env);
                    k1.try_deliver(RecvSpec::any())
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

/// Frames/sec saturation: 1–8 producer threads hammer `app_send` on
/// the same kernel while a service thread drains, delivers, and
/// checkpoints. The reported value is wall time per frame aggregated
/// across producers (throughput = 1e9 / value frames/sec); with the
/// lock-free send path it should stay near-flat as producers go from
/// 1 to 8 instead of multiplying.
fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_saturation");
    // One sample = this many sends per producer; large enough that
    // the scoped-thread spawn cost disappears into the noise.
    group.sample_size(50_000);

    let data = bytes::Bytes::from(vec![7u8; PAYLOAD]);
    for producers in [1usize, 2, 4, 8] {
        let mut p = pair();
        let k0 = Arc::clone(&p.k0);
        let stop = Arc::new(AtomicBool::new(false));
        // Service-only comm loop: the direct fabric never loses
        // frames, so retransmit ticks would only add timer noise to a
        // throughput probe.
        let comm = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    p.service();
                    std::hint::spin_loop();
                }
            })
        };
        let data = data.clone();
        group.bench_function(format!("app_send/{producers}_producers"), |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                std::thread::scope(|s| {
                    for _ in 0..producers {
                        let k0 = &k0;
                        let data = data.clone();
                        s.spawn(move || {
                            for _ in 0..iters {
                                k0.app_send(1, 0, data.clone(), false);
                            }
                        });
                    }
                });
                // `producers * iters` frames went out in `elapsed`;
                // report the per-frame aggregate for `iters` frames.
                start.elapsed() / producers as u32
            })
        });
        stop.store(true, Ordering::Relaxed);
        comm.join().unwrap();
    }

    group.finish();
}

criterion_group!(benches, bench_hot_path, bench_saturation);
criterion_main!(benches);
