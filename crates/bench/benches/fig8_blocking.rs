//! Criterion companion to Fig. 8: end-to-end accomplishment time of a
//! failure-injected LU run under the blocking (Fig. 4a) vs
//! non-blocking (Fig. 4b) engine, on the LAN-like delayed fabric.

use criterion::{criterion_group, criterion_main, Criterion};
use lclog_bench::experiments::total_steps;
use lclog_core::ProtocolKind;
use lclog_npb::{run_benchmark, Benchmark, Class};
use lclog_runtime::{CheckpointPolicy, ClusterConfig, CommMode, FailurePlan, RunConfig};
use lclog_simnet::NetConfig;

fn bench_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_blocking");
    group.sample_size(10);
    let steps = total_steps(Benchmark::Lu, Class::Test);
    for (label, comm) in [
        ("blocking", CommMode::blocking_default()),
        ("nonblocking", CommMode::NonBlocking),
    ] {
        group.bench_function(format!("lu_failure/{label}/n4"), |b| {
            b.iter(|| {
                let cfg = ClusterConfig::new(
                    4,
                    RunConfig::new(ProtocolKind::Tdi)
                        .with_comm(comm)
                        .with_checkpoint(CheckpointPolicy::EverySteps((steps / 4).max(2))),
                )
                .with_net(NetConfig::lan_like(0xF8))
                .with_failures(FailurePlan::kill_at(1, steps / 2));
                let report = run_benchmark(Benchmark::Lu, Class::Test, &cfg).expect("run");
                assert_eq!(report.kills, 1);
                report.wall
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
