//! Criterion companion to Fig. 7: isolates the dependency-tracking
//! hooks themselves (`on_send` piggyback construction + `on_deliver`
//! merge) per protocol, at two system scales — the microbenchmark
//! behind the paper's tracking-time curves.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lclog_core::{make_protocol, LoggingProtocol, ProtocolKind};

/// Prime a pair of protocol instances with some history so the hooks
/// run against realistic state (TAG's graph and TEL's window are
/// non-trivial).
fn primed_pair(kind: ProtocolKind, n: usize, history: u64) -> (Box<dyn LoggingProtocol>, Box<dyn LoggingProtocol>) {
    let mut a = make_protocol(kind, 0, n);
    let mut b = make_protocol(kind, 1, n);
    for i in 1..=history {
        let art = a.on_send(1, i);
        b.on_deliver(0, i, &art.piggyback).expect("deliver");
        let art = b.on_send(0, i);
        a.on_deliver(1, i, &art.piggyback).expect("deliver");
    }
    (a, b)
}

fn bench_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_tracking");
    for n in [8usize, 32] {
        for kind in ProtocolKind::ALL {
            group.bench_function(format!("{kind}/n{n}/send+deliver"), |bch| {
                bch.iter_batched(
                    || primed_pair(kind, n, 32),
                    |(mut a, b)| {
                        let art = a.on_send(1, 1000);
                        // Deliverability of index 1000 is protocol
                        // business; measure the full gate + merge path
                        // via deliverable() which always decodes.
                        let _ = b.deliverable(0, 33, &art.piggyback);
                        art.id_count
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tracking);
criterion_main!(benches);
