//! Microbench for the receive queue (queue "B" of Fig. 4b) under a
//! deep backlog — the shape recovery produces when logged messages
//! arrive in bulk ahead of their FIFO predecessors (§III.E).
//!
//! Three operations dominate the ingest/deliver hot path:
//!
//! * `contains`   — duplicate suppression on every ingest;
//! * `take_first_matching` — matched extraction on every delivery,
//!   scanning past gate-blocked entries;
//! * `drop_repetitive` — per-sender pruning after a delivery bumps
//!   the counter.
//!
//! The queue is loaded with `SENDERS × PER_SENDER` entries that are
//! all FIFO-blocked (send_index starts at 2 while the gate expects 1),
//! plus one deliverable message pushed last — the worst case for a
//! flat arrival-ordered scan.
//!
//! Mutated queues are parked in a sink and freed during the next
//! (untimed) setup, so deallocation never lands in the timed region.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lclog_runtime::{AppWire, Pending, RecvQueue, RecvSpec};
use std::cell::RefCell;

const SENDERS: usize = 32;
const PER_SENDER: u64 = 32;

fn pending(src: usize, tag: u32, send_index: u64) -> Pending {
    Pending {
        src,
        wire: AppWire {
            tag,
            send_index,
            piggyback: bytes::Bytes::new(),
            needs_ack: false,
            data: bytes::Bytes::new(),
        },
    }
}

/// SENDERS×PER_SENDER blocked entries (indices 2..), in round-robin
/// arrival order, then one deliverable entry (src 0, index 1) last.
fn deep_queue() -> RecvQueue {
    let mut q = RecvQueue::default();
    for i in 0..PER_SENDER {
        for src in 0..SENDERS {
            q.push(pending(src, 0, i + 2));
        }
    }
    q.push(pending(0, 0, 1));
    q
}

fn bench_recvq(c: &mut Criterion) {
    let mut group = c.benchmark_group("recvq_deep_backlog");
    group.sample_size(20_000);

    // FIFO gate: only send_index 1 is contiguous with the (empty)
    // delivery counter, so every backlog entry is gate-blocked.
    let gate = |_src: usize, idx: u64, _pb: &[u8]| idx == 1;

    {
        let base = deep_queue();
        let sink: RefCell<Vec<RecvQueue>> = RefCell::new(Vec::new());
        group.bench_function("take_first_matching/any_source", |b| {
            b.iter_batched(
                || {
                    sink.borrow_mut().clear();
                    base.clone()
                },
                |mut q| {
                    let taken = q.take_first_matching(RecvSpec::any(), gate);
                    sink.borrow_mut().push(q);
                    taken.is_some()
                },
                BatchSize::SmallInput,
            )
        });
    }

    {
        let base = deep_queue();
        let sink: RefCell<Vec<RecvQueue>> = RefCell::new(Vec::new());
        group.bench_function("take_first_matching/from_source", |b| {
            b.iter_batched(
                || {
                    sink.borrow_mut().clear();
                    base.clone()
                },
                |mut q| {
                    let taken = q.take_first_matching(RecvSpec::from(0, 0), gate);
                    sink.borrow_mut().push(q);
                    taken.is_some()
                },
                BatchSize::SmallInput,
            )
        });
    }

    {
        let q = deep_queue();
        group.bench_function("contains/dedup_miss", |b| {
            // Worst-case dedup probe: identity not present anywhere.
            b.iter(|| q.contains(SENDERS - 1, PER_SENDER + 10))
        });
    }

    {
        let base = deep_queue();
        let sink: RefCell<Vec<RecvQueue>> = RefCell::new(Vec::new());
        group.bench_function("push/after_dedup", |b| {
            b.iter_batched(
                || {
                    sink.borrow_mut().clear();
                    base.clone()
                },
                |mut q| {
                    let src = SENDERS / 2;
                    let idx = PER_SENDER + 2;
                    if !q.contains(src, idx) {
                        q.push(pending(src, 0, idx));
                    }
                    let len = q.len();
                    sink.borrow_mut().push(q);
                    len
                },
                BatchSize::SmallInput,
            )
        });
    }

    {
        let base = deep_queue();
        let sink: RefCell<Vec<RecvQueue>> = RefCell::new(Vec::new());
        group.bench_function("drop_repetitive/one_sender", |b| {
            b.iter_batched(
                || {
                    sink.borrow_mut().clear();
                    base.clone()
                },
                |mut q| {
                    q.drop_repetitive(SENDERS / 2, PER_SENDER / 2);
                    let len = q.len();
                    sink.borrow_mut().push(q);
                    len
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_recvq);
criterion_main!(benches);
