//! `reproduce` — regenerate the paper's figures from the reproduction.
//!
//! ```text
//! reproduce [--quick] [fig6|fig7|fig8|ablation-rate|ablation-replay|
//!                       ablation-ckpt|ablation-protocols|ablation-f|
//!                       ablation-chaos|data-plane|detector|explore|
//!                       log-ship|scaling|hotpath|serve|all]
//! reproduce explore --replay <case-file>
//! ```
//!
//! Tables are printed to stdout and archived as CSV under `results/`.
//! `--replay` re-executes a counterexample case file (written by the
//! explore table on divergence) through the deterministic runner and
//! prints the per-step timeline.

use lclog_bench::experiments::{
    ablation_chaos, ablation_ckpt, ablation_detector, ablation_f_bound, ablation_protocols,
    ablation_rate, ablation_replay, data_plane_table, explore_table, fig6_table, fig7_table,
    fig8_table, hotpath_table, log_ship_table, overhead_matrix, scaling_table, serve_table,
    ExpConfig,
};
use lclog_bench::Table;
use std::path::Path;

fn save(table: &Table, name: &str) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if std::fs::write(&path, table.to_csv()).is_ok() {
            println!("(saved {})", path.display());
        }
        let json = dir.join(format!("BENCH_{name}.json"));
        if std::fs::write(&json, table.to_json()).is_ok() {
            println!("(saved {})", json.display());
        }
    }
}

/// Replay a counterexample case file through the deterministic runner
/// and print a per-step timeline. Returns an error string for `main`
/// to surface with a nonzero exit.
fn replay(path: &str) -> Result<(), String> {
    use lclog_explore::{replay_trace, ReplayCase, Verdict};

    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let case: ReplayCase = text.parse().map_err(|e| format!("{path}: {e}"))?;
    println!("replaying {path}");
    print!("{case}");
    println!();
    let (out, timeline) = replay_trace(&case);
    for (i, step) in timeline.iter().enumerate() {
        println!(
            "  step {i:3}  {}{}",
            step.action,
            if step.chosen() {
                format!("  [picked {} of {}]", step.picked, step.arity)
            } else {
                String::new()
            }
        );
    }
    println!();
    match &out.verdict {
        Verdict::Completed => println!("verdict: completed"),
        Verdict::Wedged { unfinished } => {
            println!("verdict: WEDGED — unfinished ranks {unfinished:?}")
        }
        Verdict::Desynced => println!("verdict: DESYNCED"),
        Verdict::Aborted => println!("verdict: aborted by decider"),
    }
    println!("faults injected: {}", out.faults_injected);
    println!("delivered:       {}", out.delivered);
    println!("digests:         {:?}", out.digests);
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--replay") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--replay requires a case-file path");
            std::process::exit(2);
        };
        if let Err(e) = replay(path) {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    };

    println!(
        "lclog reproduction — class {}, procs {:?}{}",
        cfg.class,
        cfg.procs,
        if quick { " (quick)" } else { "" }
    );
    println!();

    if all || which.contains(&"fig6") || which.contains(&"fig7") {
        let cells = overhead_matrix(&cfg);
        if all || which.contains(&"fig6") {
            let t = fig6_table(&cells);
            print!("{}", t.render());
            save(&t, "fig6_piggyback");
            println!();
        }
        if all || which.contains(&"fig7") {
            let t = fig7_table(&cells);
            print!("{}", t.render());
            save(&t, "fig7_tracking");
            println!();
        }
    }
    if all || which.contains(&"fig8") {
        let t = fig8_table(&cfg);
        print!("{}", t.render());
        save(&t, "fig8_blocking");
        println!();
    }
    if all || which.contains(&"ablation-rate") {
        let t = ablation_rate(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "ablation_rate");
        println!();
    }
    if all || which.contains(&"ablation-replay") {
        let t = ablation_replay();
        print!("{}", t.render());
        save(&t, "ablation_replay");
        println!();
    }
    if all || which.contains(&"ablation-ckpt") {
        let t = ablation_ckpt();
        print!("{}", t.render());
        save(&t, "ablation_ckpt");
        println!();
    }
    if all || which.contains(&"ablation-protocols") {
        let t = ablation_protocols(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "ablation_protocols");
        println!();
    }
    if all || which.contains(&"ablation-f") {
        let t = ablation_f_bound(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "ablation_f_bound");
        println!();
    }
    if all || which.contains(&"ablation-chaos") {
        let t = ablation_chaos(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "ablation_chaos");
        println!();
    }
    if all || which.contains(&"data-plane") {
        let t = data_plane_table(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "data_plane");
        println!();
    }
    if all || which.contains(&"detector") {
        let t = ablation_detector(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "detector_ablation");
        println!();
    }
    if all || which.contains(&"explore") {
        let t = explore_table(quick);
        print!("{}", t.render());
        save(&t, "explore");
        println!();
    }
    if all || which.contains(&"log-ship") {
        let t = log_ship_table(quick);
        print!("{}", t.render());
        save(&t, "log_ship");
        println!();
    }
    if all || which.contains(&"scaling") {
        let t = scaling_table(quick);
        print!("{}", t.render());
        save(&t, "scaling");
        println!();
    }
    if all || which.contains(&"hotpath") {
        let t = hotpath_table(quick);
        print!("{}", t.render());
        save(&t, "hotpath");
        println!();
    }
    if all || which.contains(&"serve") {
        let t = serve_table(quick);
        print!("{}", t.render());
        save(&t, "serve");
        println!();
    }
}
