//! `reproduce` — regenerate the paper's figures from the reproduction.
//!
//! ```text
//! reproduce [--quick] [fig6|fig7|fig8|ablation-rate|ablation-replay|
//!                       ablation-ckpt|ablation-protocols|ablation-f|
//!                       ablation-chaos|data-plane|detector|explore|
//!                       log-ship|scaling|hotpath|all]
//! ```
//!
//! Tables are printed to stdout and archived as CSV under `results/`.

use lclog_bench::experiments::{
    ablation_chaos, ablation_ckpt, ablation_detector, ablation_f_bound, ablation_protocols,
    ablation_rate, ablation_replay, data_plane_table, explore_table, fig6_table, fig7_table,
    fig8_table, hotpath_table, log_ship_table, overhead_matrix, scaling_table, ExpConfig,
};
use lclog_bench::Table;
use std::path::Path;

fn save(table: &Table, name: &str) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if std::fs::write(&path, table.to_csv()).is_ok() {
            println!("(saved {})", path.display());
        }
        let json = dir.join(format!("BENCH_{name}.json"));
        if std::fs::write(&json, table.to_json()).is_ok() {
            println!("(saved {})", json.display());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    };

    println!(
        "lclog reproduction — class {}, procs {:?}{}",
        cfg.class,
        cfg.procs,
        if quick { " (quick)" } else { "" }
    );
    println!();

    if all || which.contains(&"fig6") || which.contains(&"fig7") {
        let cells = overhead_matrix(&cfg);
        if all || which.contains(&"fig6") {
            let t = fig6_table(&cells);
            print!("{}", t.render());
            save(&t, "fig6_piggyback");
            println!();
        }
        if all || which.contains(&"fig7") {
            let t = fig7_table(&cells);
            print!("{}", t.render());
            save(&t, "fig7_tracking");
            println!();
        }
    }
    if all || which.contains(&"fig8") {
        let t = fig8_table(&cfg);
        print!("{}", t.render());
        save(&t, "fig8_blocking");
        println!();
    }
    if all || which.contains(&"ablation-rate") {
        let t = ablation_rate(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "ablation_rate");
        println!();
    }
    if all || which.contains(&"ablation-replay") {
        let t = ablation_replay();
        print!("{}", t.render());
        save(&t, "ablation_replay");
        println!();
    }
    if all || which.contains(&"ablation-ckpt") {
        let t = ablation_ckpt();
        print!("{}", t.render());
        save(&t, "ablation_ckpt");
        println!();
    }
    if all || which.contains(&"ablation-protocols") {
        let t = ablation_protocols(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "ablation_protocols");
        println!();
    }
    if all || which.contains(&"ablation-f") {
        let t = ablation_f_bound(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "ablation_f_bound");
        println!();
    }
    if all || which.contains(&"ablation-chaos") {
        let t = ablation_chaos(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "ablation_chaos");
        println!();
    }
    if all || which.contains(&"data-plane") {
        let t = data_plane_table(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "data_plane");
        println!();
    }
    if all || which.contains(&"detector") {
        let t = ablation_detector(if quick { 4 } else { 8 });
        print!("{}", t.render());
        save(&t, "detector_ablation");
        println!();
    }
    if all || which.contains(&"explore") {
        let t = explore_table(quick);
        print!("{}", t.render());
        save(&t, "explore_schedules");
        println!();
    }
    if all || which.contains(&"log-ship") {
        let t = log_ship_table(quick);
        print!("{}", t.render());
        save(&t, "log_ship");
        println!();
    }
    if all || which.contains(&"scaling") {
        let t = scaling_table(quick);
        print!("{}", t.render());
        save(&t, "scaling");
        println!();
    }
    if all || which.contains(&"hotpath") {
        let t = hotpath_table(quick);
        print!("{}", t.render());
        save(&t, "hotpath");
        println!();
    }
}
