//! Synthetic applications for the ablation experiments: a token ring
//! (pure point-to-point at a controllable message rate), a hub
//! (collective-like fan-in/fan-out), and a neighbor-exchange ring
//! written as a [`TaskApp`] for the large-n scaling runs.

use lclog_runtime::{Fault, RankApp, RankCtx, RecvSpec, StepStatus, TaskApp, TaskCtx, TaskPoll};
use lclog_wire::impl_wire_struct;

fn mix(x: u64, salt: u64) -> u64 {
    (x ^ salt)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(23)
        .wrapping_add(0x1656_67B1_9E37_79F9)
}

/// Token ring: one message per rank per round.
#[derive(Debug, Clone, Copy)]
pub struct RingApp {
    /// Rounds to run.
    pub rounds: u64,
    /// Payload size in bytes.
    pub payload: usize,
}

/// Ring state.
#[derive(Debug, Clone, PartialEq)]
pub struct RingState {
    /// Completed rounds.
    pub round: u64,
    /// Rolling token value.
    pub token: u64,
}
impl_wire_struct!(RingState { round, token });

const RING_TAG: u32 = 7;

impl RankApp for RingApp {
    type State = RingState;

    fn init(&self, rank: usize, _n: usize) -> RingState {
        RingState {
            round: 0,
            token: mix(rank as u64, 0x1234),
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut RingState) -> Result<StepStatus, Fault> {
        if state.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let r = ctx.rank();
        let right = (r + 1) % n;
        let payload = |token: u64| -> Vec<u8> {
            let mut v = vec![0u8; self.payload.max(8)];
            v[..8].copy_from_slice(&token.to_le_bytes());
            v
        };
        if r == 0 {
            let out = mix(state.token, state.round);
            ctx.send(right, RING_TAG, &payload(out))?;
            let msg = ctx.recv(RecvSpec::from(n - 1, RING_TAG))?;
            state.token = u64::from_le_bytes(msg.data[..8].try_into().expect("8-byte token"));
        } else {
            let msg = ctx.recv(RecvSpec::from(r - 1, RING_TAG))?;
            let t = u64::from_le_bytes(msg.data[..8].try_into().expect("8-byte token"));
            let out = mix(t, state.round ^ (r as u64) << 32);
            ctx.send(right, RING_TAG, &payload(out))?;
            state.token = out;
        }
        state.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &RingState) -> u64 {
        mix(state.token, state.round)
    }
}

/// Hub: every round, all ranks send to rank 0 (`ANY_SOURCE` fan-in),
/// rank 0 combines and broadcasts back — the §II.C sum scenario.
#[derive(Debug, Clone, Copy)]
pub struct HubApp {
    /// Rounds to run.
    pub rounds: u64,
}

/// Hub state.
#[derive(Debug, Clone, PartialEq)]
pub struct HubState {
    /// Completed rounds.
    pub round: u64,
    /// Rolling accumulator.
    pub acc: u64,
}
impl_wire_struct!(HubState { round, acc });

impl RankApp for HubApp {
    type State = HubState;

    fn init(&self, rank: usize, _n: usize) -> HubState {
        HubState {
            round: 0,
            acc: mix(rank as u64, 0x5678),
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut HubState) -> Result<StepStatus, Fault> {
        if state.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let r = ctx.rank();
        // Unique tags per round keep ANY_SOURCE matching safe.
        let up = 100 + (state.round as u32) * 2;
        let down = up + 1;
        if r == 0 {
            let mut contributions = vec![state.acc];
            for _ in 1..n {
                let (src, v): (_, u64) = ctx.recv_value(RecvSpec::any_source(up))?;
                contributions.push(mix(v, src as u64));
            }
            // Order-insensitive combine (sorted), per the paper's
            // commutativity observation.
            contributions.sort_unstable();
            let combined = contributions.into_iter().fold(0u64, |a, b| mix(a ^ b, 1));
            for dst in 1..n {
                ctx.send_value(dst, down, &combined)?;
            }
            state.acc = combined;
        } else {
            ctx.send_value(0, up, &state.acc)?;
            let (_, combined): (_, u64) = ctx.recv_value(RecvSpec::from(0, down))?;
            state.acc = combined;
        }
        state.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &HubState) -> u64 {
        mix(state.acc, state.round)
    }
}

/// Neighbor-exchange ring for the SC1 scaling runs: each round every
/// rank sends one payload to its right neighbor and folds one from its
/// left, so all `n` messages of a round are in flight concurrently and
/// a round costs O(1) delivery sweeps regardless of `n`. Written as a
/// poll-style [`TaskApp`] so it runs at n = 1024 under the task
/// scheduler — and, via [`lclog_runtime::BlockingTaskApp`], unchanged
/// under the thread engine for small-n cross-checks.
#[derive(Debug, Clone, Copy)]
pub struct TaskRing {
    /// Rounds to run (each round is one step / checkpoint boundary).
    pub rounds: u64,
    /// Payload size in bytes (the folded value rides the first 8).
    pub payload: usize,
}

/// Neighbor-exchange state.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRingState {
    /// Completed rounds.
    pub round: u64,
    /// This round's send already issued.
    pub sent: bool,
    /// Rolling fold of everything received.
    pub acc: u64,
}
impl_wire_struct!(TaskRingState { round, sent, acc });

const EXCHANGE_TAG: u32 = 9;

impl TaskApp for TaskRing {
    type State = TaskRingState;

    fn init(&self, rank: usize, _n: usize) -> TaskRingState {
        TaskRingState {
            round: 0,
            sent: false,
            acc: mix(rank as u64, 0x9abc),
        }
    }

    fn poll(&self, ctx: &mut TaskCtx<'_>, st: &mut TaskRingState) -> Result<TaskPoll, Fault> {
        if st.round >= self.rounds {
            return Ok(TaskPoll::Done);
        }
        let n = ctx.n();
        let me = ctx.rank();
        if !st.sent {
            let out = mix(st.acc, st.round);
            let mut v = vec![0u8; self.payload.max(8)];
            v[..8].copy_from_slice(&out.to_le_bytes());
            ctx.send((me + 1) % n, EXCHANGE_TAG, &v)?;
            st.sent = true;
        }
        let left = (me + n - 1) % n;
        match ctx.try_recv(RecvSpec::from(left, EXCHANGE_TAG))? {
            Some(msg) => {
                let v = u64::from_le_bytes(msg.data[..8].try_into().expect("8-byte fold value"));
                st.acc = mix(st.acc.wrapping_add(v), st.round);
                st.sent = false;
                st.round += 1;
                Ok(TaskPoll::Step)
            }
            None => Ok(TaskPoll::Pending),
        }
    }

    fn digest(&self, st: &TaskRingState) -> u64 {
        mix(st.acc, st.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_core::ProtocolKind;
    use lclog_runtime::{
        run_tasks, BlockingTaskApp, CheckpointPolicy, Cluster, ClusterConfig, EngineMode,
        FailurePlan, RunConfig,
    };
    use std::time::Duration;

    fn cfg(n: usize) -> ClusterConfig {
        ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
        )
    }

    #[test]
    fn ring_recovers_with_payloads() {
        let app = RingApp {
            rounds: 12,
            payload: 256,
        };
        let clean = Cluster::run(&cfg(4), app).unwrap().digests;
        let faulty = Cluster::run(&cfg(4).with_failures(FailurePlan::kill_at(2, 6)), app)
            .unwrap()
            .digests;
        assert_eq!(clean, faulty);
    }

    #[test]
    fn task_ring_agrees_across_engines_and_recovers() {
        let app = TaskRing {
            rounds: 8,
            payload: 64,
        };
        let threads = Cluster::run(&cfg(4), BlockingTaskApp(app)).unwrap().digests;
        let tasks_cfg = ClusterConfig::new(
            4,
            RunConfig::new(ProtocolKind::Tdi)
                .with_checkpoint(CheckpointPolicy::EverySteps(4))
                .with_engine(EngineMode::Tasks { workers: 2 }),
        )
        .with_max_wall(Duration::from_secs(30));
        let tasks = run_tasks(&tasks_cfg, app).unwrap().digests;
        assert_eq!(threads, tasks);
        let faulty = run_tasks(
            &tasks_cfg.clone().with_failures(FailurePlan::kill_at(2, 4)),
            app,
        )
        .unwrap();
        assert!(faulty.kills >= 1);
        assert_eq!(faulty.digests, tasks);
    }

    #[test]
    fn hub_recovers_with_anysource() {
        let app = HubApp { rounds: 10 };
        let clean = Cluster::run(&cfg(5), app).unwrap().digests;
        let faulty = Cluster::run(&cfg(5).with_failures(FailurePlan::kill_at(0, 5)), app)
            .unwrap()
            .digests;
        assert_eq!(clean, faulty);
    }
}
