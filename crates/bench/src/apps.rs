//! Synthetic applications for the ablation experiments: a token ring
//! (pure point-to-point at a controllable message rate) and a hub
//! (collective-like fan-in/fan-out).

use lclog_runtime::{Fault, RankApp, RankCtx, RecvSpec, StepStatus};
use lclog_wire::impl_wire_struct;

fn mix(x: u64, salt: u64) -> u64 {
    (x ^ salt)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(23)
        .wrapping_add(0x1656_67B1_9E37_79F9)
}

/// Token ring: one message per rank per round.
#[derive(Debug, Clone, Copy)]
pub struct RingApp {
    /// Rounds to run.
    pub rounds: u64,
    /// Payload size in bytes.
    pub payload: usize,
}

/// Ring state.
#[derive(Debug, Clone, PartialEq)]
pub struct RingState {
    /// Completed rounds.
    pub round: u64,
    /// Rolling token value.
    pub token: u64,
}
impl_wire_struct!(RingState { round, token });

const RING_TAG: u32 = 7;

impl RankApp for RingApp {
    type State = RingState;

    fn init(&self, rank: usize, _n: usize) -> RingState {
        RingState {
            round: 0,
            token: mix(rank as u64, 0x1234),
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut RingState) -> Result<StepStatus, Fault> {
        if state.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let r = ctx.rank();
        let right = (r + 1) % n;
        let payload = |token: u64| -> Vec<u8> {
            let mut v = vec![0u8; self.payload.max(8)];
            v[..8].copy_from_slice(&token.to_le_bytes());
            v
        };
        if r == 0 {
            let out = mix(state.token, state.round);
            ctx.send(right, RING_TAG, &payload(out))?;
            let msg = ctx.recv(RecvSpec::from(n - 1, RING_TAG))?;
            state.token = u64::from_le_bytes(msg.data[..8].try_into().expect("8-byte token"));
        } else {
            let msg = ctx.recv(RecvSpec::from(r - 1, RING_TAG))?;
            let t = u64::from_le_bytes(msg.data[..8].try_into().expect("8-byte token"));
            let out = mix(t, state.round ^ (r as u64) << 32);
            ctx.send(right, RING_TAG, &payload(out))?;
            state.token = out;
        }
        state.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &RingState) -> u64 {
        mix(state.token, state.round)
    }
}

/// Hub: every round, all ranks send to rank 0 (`ANY_SOURCE` fan-in),
/// rank 0 combines and broadcasts back — the §II.C sum scenario.
#[derive(Debug, Clone, Copy)]
pub struct HubApp {
    /// Rounds to run.
    pub rounds: u64,
}

/// Hub state.
#[derive(Debug, Clone, PartialEq)]
pub struct HubState {
    /// Completed rounds.
    pub round: u64,
    /// Rolling accumulator.
    pub acc: u64,
}
impl_wire_struct!(HubState { round, acc });

impl RankApp for HubApp {
    type State = HubState;

    fn init(&self, rank: usize, _n: usize) -> HubState {
        HubState {
            round: 0,
            acc: mix(rank as u64, 0x5678),
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut HubState) -> Result<StepStatus, Fault> {
        if state.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let r = ctx.rank();
        // Unique tags per round keep ANY_SOURCE matching safe.
        let up = 100 + (state.round as u32) * 2;
        let down = up + 1;
        if r == 0 {
            let mut contributions = vec![state.acc];
            for _ in 1..n {
                let (src, v): (_, u64) = ctx.recv_value(RecvSpec::any_source(up))?;
                contributions.push(mix(v, src as u64));
            }
            // Order-insensitive combine (sorted), per the paper's
            // commutativity observation.
            contributions.sort_unstable();
            let combined = contributions.into_iter().fold(0u64, |a, b| mix(a ^ b, 1));
            for dst in 1..n {
                ctx.send_value(dst, down, &combined)?;
            }
            state.acc = combined;
        } else {
            ctx.send_value(0, up, &state.acc)?;
            let (_, combined): (_, u64) = ctx.recv_value(RecvSpec::from(0, down))?;
            state.acc = combined;
        }
        state.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &HubState) -> u64 {
        mix(state.acc, state.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_core::ProtocolKind;
    use lclog_runtime::{CheckpointPolicy, Cluster, ClusterConfig, FailurePlan, RunConfig};

    fn cfg(n: usize) -> ClusterConfig {
        ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
        )
    }

    #[test]
    fn ring_recovers_with_payloads() {
        let app = RingApp {
            rounds: 12,
            payload: 256,
        };
        let clean = Cluster::run(&cfg(4), app).unwrap().digests;
        let faulty = Cluster::run(&cfg(4).with_failures(FailurePlan::kill_at(2, 6)), app)
            .unwrap()
            .digests;
        assert_eq!(clean, faulty);
    }

    #[test]
    fn hub_recovers_with_anysource() {
        let app = HubApp { rounds: 10 };
        let clean = Cluster::run(&cfg(5), app).unwrap().digests;
        let faulty = Cluster::run(&cfg(5).with_failures(FailurePlan::kill_at(0, 5)), app)
            .unwrap()
            .digests;
        assert_eq!(clean, faulty);
    }
}
