//! Minimal aligned-text tables for the `reproduce` binary, with CSV
//! export so results can be archived in EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Render as a JSON document (`{"title", "header", "rows"}`) for
    /// machine-readable benchmark artifacts. Hand-rolled: the
    /// reproduction vendors no serialization framework.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let arr = |cells: &[String]| -> String {
            let quoted: Vec<String> = cells.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", quoted.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| format!("    {}", arr(r))).collect();
        format!(
            "{{\n  \"title\": \"{}\",\n  \"header\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            esc(&self.title),
            arr(&self.header),
            rows.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns_and_csv() {
        let mut t = Table::new("demo", &["bench", "procs", "value"]);
        t.row(vec!["LU".into(), "4".into(), "1.5".into()]);
        t.row(vec!["BT".into(), "32".into(), "12.25".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.render();
        assert!(text.contains("## demo"));
        assert!(text.contains("bench"));
        assert!(text.contains("12.25"));
        let csv = t.to_csv();
        assert!(csv.starts_with("bench,procs,value\n"));
        assert!(csv.contains("BT,32,12.25"));
    }

    #[test]
    fn json_escapes_and_round_trips_shape() {
        let mut t = Table::new("quote \"x\"\nline", &["a", "b"]);
        t.row(vec!["1".into(), "back\\slash".into()]);
        let json = t.to_json();
        assert!(json.contains("\"title\": \"quote \\\"x\\\"\\nline\""));
        assert!(json.contains("\"header\": [\"a\",\"b\"]"));
        assert!(json.contains("[\"1\",\"back\\\\slash\"]"));
        assert!(json.ends_with("}\n"));
    }
}
