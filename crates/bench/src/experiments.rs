//! The figure-regeneration experiments (see crate docs).

use crate::apps::{RingApp, TaskRing};
use crate::table::Table;
use lclog_core::ProtocolKind;
use lclog_npb::{run_benchmark, Benchmark, Class};
use lclog_runtime::{
    run_tasks, CheckpointPolicy, Cluster, ClusterConfig, CommMode, DetectorConfig, EngineMode,
    FailurePlan, RemoteConfig, ReplicatorConfig, RunConfig,
};
use lclog_simnet::{ChaosConfig, NetConfig, StorageChaos};
use std::time::Duration;

/// Shape of an experiment sweep.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Problem scale for the NPB kernels.
    pub class: Class,
    /// Process counts to sweep (the paper uses 4, 8, 16, 32).
    pub procs: Vec<usize>,
}

impl ExpConfig {
    /// The paper's full sweep.
    pub fn full() -> Self {
        ExpConfig {
            class: Class::Small,
            procs: vec![4, 8, 16, 32],
        }
    }

    /// A fast sweep for smoke tests.
    pub fn quick() -> Self {
        ExpConfig {
            class: Class::Test,
            procs: vec![4, 8],
        }
    }
}

/// One cell of the Fig. 6 / Fig. 7 measurement matrix.
#[derive(Debug, Clone)]
pub struct OverheadCell {
    /// Workload.
    pub bench: Benchmark,
    /// Process count.
    pub n: usize,
    /// Protocol.
    pub kind: ProtocolKind,
    /// Fig. 6 metric: identifiers piggybacked per message.
    pub avg_ids: f64,
    /// Fig. 7 metric: total tracking time across ranks, ms.
    pub tracking_ms: f64,
    /// Supporting data: total application messages.
    pub sends: u64,
    /// Supporting data: piggyback bytes per message.
    pub avg_bytes: f64,
}

fn base_cfg(n: usize, kind: ProtocolKind) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        n,
        RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(8)),
    );
    cfg.max_wall = Duration::from_secs(600);
    cfg
}

/// Run the fault-free overhead matrix shared by Fig. 6 and Fig. 7.
pub fn overhead_matrix(cfg: &ExpConfig) -> Vec<OverheadCell> {
    let mut cells = Vec::new();
    for bench in Benchmark::ALL {
        for &n in &cfg.procs {
            for kind in ProtocolKind::ALL {
                let report = run_benchmark(bench, cfg.class, &base_cfg(n, kind))
                    .expect("fault-free overhead run");
                cells.push(OverheadCell {
                    bench,
                    n,
                    kind,
                    avg_ids: report.stats.avg_ids_per_msg(),
                    tracking_ms: report.stats.tracking_ms(),
                    sends: report.stats.sends,
                    avg_bytes: report.stats.avg_bytes_per_msg(),
                });
            }
        }
    }
    cells
}

/// Fig. 6: average piggyback amount per message (identifier count).
pub fn fig6_table(cells: &[OverheadCell]) -> Table {
    let mut t = Table::new(
        "Fig. 6 — Average piggyback per message (identifiers)",
        &["bench", "procs", "TDI", "TAG", "TEL", "msgs"],
    );
    fill_protocol_columns(&mut t, cells, |c| format!("{:.1}", c.avg_ids));
    t
}

/// Fig. 7: dependency-tracking time overhead.
pub fn fig7_table(cells: &[OverheadCell]) -> Table {
    let mut t = Table::new(
        "Fig. 7 — Tracking time overhead (ms, summed over ranks)",
        &["bench", "procs", "TDI", "TAG", "TEL", "msgs"],
    );
    fill_protocol_columns(&mut t, cells, |c| format!("{:.2}", c.tracking_ms));
    t
}

fn fill_protocol_columns(
    t: &mut Table,
    cells: &[OverheadCell],
    value: impl Fn(&OverheadCell) -> String,
) {
    let mut seen: Vec<(Benchmark, usize)> = Vec::new();
    for c in cells {
        if !seen.contains(&(c.bench, c.n)) {
            seen.push((c.bench, c.n));
        }
    }
    for (bench, n) in seen {
        let get = |kind: ProtocolKind| {
            cells
                .iter()
                .find(|c| c.bench == bench && c.n == n && c.kind == kind)
                .expect("matrix cell present")
        };
        t.row(vec![
            bench.to_string(),
            n.to_string(),
            value(get(ProtocolKind::Tdi)),
            value(get(ProtocolKind::Tag)),
            value(get(ProtocolKind::Tel)),
            get(ProtocolKind::Tdi).sends.to_string(),
        ]);
    }
}

/// Approximate runtime-step count of a benchmark run (to place the
/// injected failure mid-computation).
pub fn total_steps(bench: Benchmark, class: Class) -> u64 {
    match bench {
        Benchmark::Lu => {
            let (_, _, gnz, iters) = class.lu_dims();
            iters * (2 * gnz as u64 + 1)
        }
        Benchmark::Bt => class.adi_dims().1 * 4,
        Benchmark::Sp => class.adi_dims().1 * 6,
        // CG: matvec + update per iteration.
        Benchmark::Cg => lclog_npb::CgApp::dims(class).1 * 2,
    }
}

/// Fig. 8: normalized accomplishment time under one mid-run failure,
/// blocking vs non-blocking communication (TDI protocol, LAN-like
/// fabric). `gain = 1 − t_nonblocking / t_blocking` is the paper's
/// improvement metric.
pub fn fig8_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Fig. 8 — Accomplishment time with one failure: blocking vs non-blocking (TDI)",
        &["bench", "procs", "blocking_ms", "nonblocking_ms", "normalized_nb", "gain_%"],
    );
    for bench in Benchmark::ALL {
        for &n in &cfg.procs {
            let steps = total_steps(bench, cfg.class);
            let kill_at = steps / 2;
            let ckpt = (steps / 6).max(2);
            let run_mode = |comm: CommMode| -> f64 {
                let mut c = ClusterConfig::new(
                    n,
                    RunConfig::new(ProtocolKind::Tdi)
                        .with_comm(comm)
                        .with_checkpoint(CheckpointPolicy::EverySteps(ckpt)),
                )
                .with_net(NetConfig::lan_like(0xF168 ^ n as u64))
                .with_failures(FailurePlan::kill_at(1 % n, kill_at));
                c.max_wall = Duration::from_secs(600);
                let report = run_benchmark(bench, cfg.class, &c).expect("fig8 run");
                report.wall.as_secs_f64() * 1e3
            };
            // §III.E: the original architecture blocks on *every*
            // send "until the message has been received by its
            // receiver" — no eager path (threshold 0).
            let blocking = run_mode(CommMode::Blocking { eager_threshold: 0 });
            let nonblocking = run_mode(CommMode::NonBlocking);
            let normalized = nonblocking / blocking;
            t.row(vec![
                bench.to_string(),
                n.to_string(),
                format!("{blocking:.1}"),
                format!("{nonblocking:.1}"),
                format!("{normalized:.3}"),
                format!("{:.1}", (1.0 - normalized) * 100.0),
            ]);
        }
    }
    t
}

/// Ablation ABL1: piggyback growth vs message history on a fixed-size
/// ring. TDI stays at `n`; TAG grows with the retained history; TEL
/// plateaus at the stabilization window.
pub fn ablation_rate(n: usize) -> Table {
    let mut t = Table::new(
        format!("ABL1 — Piggyback (ids/msg) vs message count, ring n={n}"),
        &["rounds", "TDI", "TAG", "TEL"],
    );
    for rounds in [10u64, 20, 40, 80] {
        let per_kind = |kind: ProtocolKind| -> f64 {
            let mut cfg = ClusterConfig::new(
                n,
                RunConfig::new(kind).with_checkpoint(CheckpointPolicy::Never),
            );
            cfg.max_wall = Duration::from_secs(300);
            Cluster::run(
                &cfg,
                RingApp {
                    rounds,
                    payload: 64,
                },
            )
            .expect("ablation run")
            .stats
            .avg_ids_per_msg()
        };
        t.row(vec![
            rounds.to_string(),
            format!("{:.1}", per_kind(ProtocolKind::Tdi)),
            format!("{:.1}", per_kind(ProtocolKind::Tag)),
            format!("{:.1}", per_kind(ProtocolKind::Tel)),
        ]);
    }
    t
}

/// Ablation ABL2: rolling-forward cost under adversarial reordering.
/// Recovery overhead = faulty wall time − fault-free wall time, per
/// protocol. TDI delivers logged messages as they arrive; PWD
/// protocols first gather full recovery info, then replay in exact
/// order.
pub fn ablation_replay() -> Table {
    let mut t = Table::new(
        "ABL2 — Recovery overhead under reordering fabric (LU, 8 ranks, median of 7, ms)",
        &["protocol", "clean_ms", "faulty_ms", "overhead_ms", "sync_barrier_ms"],
    );
    let n = 8;
    let class = Class::Test;
    let steps = total_steps(Benchmark::Lu, class);
    const REPS: usize = 7;
    for kind in ProtocolKind::ALL {
        let run_once = |failures: &FailurePlan, seed: u64| -> f64 {
            let mut c = ClusterConfig::new(
                n,
                RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(steps / 4)),
            )
            .with_net(NetConfig::delayed(
                Duration::from_micros(30),
                Duration::from_micros(10),
                Duration::from_micros(300),
                0xAB1 ^ seed,
            ))
            .with_failures(failures.clone());
            c.max_wall = Duration::from_secs(300);
            run_benchmark(Benchmark::Lu, class, &c)
                .expect("ablation replay run")
                .wall
                .as_secs_f64()
                * 1e3
        };
        let median = |failures: FailurePlan| -> f64 {
            let mut samples: Vec<f64> = (0..REPS)
                .map(|i| run_once(&failures, i as u64))
                .collect();
            samples.sort_by(f64::total_cmp);
            samples[REPS / 2]
        };
        let clean = median(FailurePlan::none());
        let faulty = median(FailurePlan::kill_at(3, steps / 2));
        // The direct mechanism measurement: how long the incarnation
        // was barred from delivering while collecting recovery info.
        let sync_samples: Vec<f64> = (0..REPS)
            .map(|i| {
                let mut c = ClusterConfig::new(
                    n,
                    RunConfig::new(kind)
                        .with_checkpoint(CheckpointPolicy::EverySteps(steps / 4)),
                )
                .with_net(NetConfig::delayed(
                    Duration::from_micros(30),
                    Duration::from_micros(10),
                    Duration::from_micros(300),
                    0xAB1 ^ i as u64,
                ))
                .with_failures(FailurePlan::kill_at(3, steps / 2));
                c.max_wall = Duration::from_secs(300);
                run_benchmark(Benchmark::Lu, class, &c)
                    .expect("ablation replay run")
                    .stats
                    .recovery_sync_ns as f64
                    / 1e6
            })
            .collect();
        let mut sorted = sync_samples;
        sorted.sort_by(f64::total_cmp);
        let sync = sorted[REPS / 2];
        t.row(vec![
            kind.to_string(),
            format!("{clean:.1}"),
            format!("{faulty:.1}"),
            format!("{:.1}", faulty - clean),
            format!("{sync:.2}"),
        ]);
    }
    t
}

/// Ablation ABL3: checkpoint-interval sweep. Frequent checkpoints GC
/// the sender logs aggressively (small memory peak) at the price of
/// more checkpoint work; sparse checkpoints retain long logs — the
/// practical trade rollback-recovery deployments tune (the paper used
/// a fixed 180 s interval).
pub fn ablation_ckpt() -> Table {
    let mut t = Table::new(
        "ABL3 — Checkpoint interval vs log memory and recovery (LU, 4 ranks, TDI)",
        &["ckpt_every_steps", "log_peak_bytes", "clean_ms", "faulty_ms"],
    );
    let class = Class::Small;
    let steps = total_steps(Benchmark::Lu, class);
    for interval in [3u64, 6, 12, 25, steps] {
        let run = |failures: FailurePlan| {
            let mut c = ClusterConfig::new(
                4,
                RunConfig::new(ProtocolKind::Tdi)
                    .with_checkpoint(CheckpointPolicy::EverySteps(interval)),
            )
            .with_failures(failures);
            c.max_wall = Duration::from_secs(300);
            run_benchmark(Benchmark::Lu, class, &c).expect("ablation ckpt run")
        };
        let clean = run(FailurePlan::none());
        let faulty = run(FailurePlan::kill_at(2, steps / 2));
        t.row(vec![
            interval.to_string(),
            clean.stats.log_bytes_peak.to_string(),
            format!("{:.1}", clean.wall.as_secs_f64() * 1e3),
            format!("{:.1}", faulty.wall.as_secs_f64() * 1e3),
        ]);
    }
    t
}

/// Ablation ABL4: the full protocol panorama, including the two
/// extension baselines (f-bounded causal tracking and pessimistic
/// logging), on a moderate workload. Shows the design space the paper
/// positions TDI in: piggyback volume (PES 0 < TDI n < TAG-f < TEL <
/// TAG) against send-path cost (PES pays a logger round-trip per
/// delivery).
pub fn ablation_protocols(n: usize) -> Table {
    let mut t = Table::new(
        format!("ABL4 — Protocol panorama (SP, {n} ranks)"),
        &["protocol", "ids_per_msg", "bytes_per_msg", "tracking_ms", "wall_ms"],
    );
    for kind in ProtocolKind::EXTENDED {
        let mut c = ClusterConfig::new(
            n,
            RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(8)),
        );
        c.max_wall = Duration::from_secs(300);
        let report = run_benchmark(Benchmark::Sp, Class::Small, &c).expect("panorama run");
        t.row(vec![
            kind.to_string(),
            format!("{:.1}", report.stats.avg_ids_per_msg()),
            format!("{:.1}", report.stats.avg_bytes_per_msg()),
            format!("{:.2}", report.stats.tracking_ms()),
            format!("{:.1}", report.wall.as_secs_f64() * 1e3),
        ]);
    }
    t
}

/// Ablation ABL5: the failure-hypothesis knob. TAG-f's piggyback
/// plateau falls as `f` shrinks (fewer required holders per
/// determinant) and approaches unbounded TAG as `f → n − 1`. TDI's
/// flat `n` is shown for reference.
pub fn ablation_f_bound(n: usize) -> Table {
    let mut t = Table::new(
        format!("ABL5 — TAG-f piggyback vs failure bound f (SP, {n} ranks)"),
        &["protocol", "ids_per_msg", "bytes_per_msg"],
    );
    let mut kinds = vec![ProtocolKind::Tdi];
    for f in [1u32, 2, 3, 5] {
        if (f as usize) < n {
            kinds.push(ProtocolKind::TagF(f));
        }
    }
    kinds.push(ProtocolKind::Tag);
    for kind in kinds {
        let mut c = ClusterConfig::new(
            n,
            RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(8)),
        );
        c.max_wall = Duration::from_secs(300);
        let report = run_benchmark(Benchmark::Sp, Class::Small, &c).expect("f-sweep run");
        t.row(vec![
            kind.to_string(),
            format!("{:.1}", report.stats.avg_ids_per_msg()),
            format!("{:.1}", report.stats.avg_bytes_per_msg()),
        ]);
    }
    t
}

/// Ablation ABL6 (chaos fabric): end-to-end reliability under seeded
/// message loss, duplication, and corruption plus a mid-run crash.
/// For each protocol a fault-free run provides the reference digests
/// and wall time; every chaotic run must reproduce the digests
/// exactly (exactly-once delivery end to end, despite the transport
/// retransmitting below the app layer). `overhead_x` is
/// accomplishment time normalized to the fault-free run.
pub fn ablation_chaos(n: usize) -> Table {
    let mut t = Table::new(
        format!("ABL6 — Chaos fabric: loss sweep + mid-run kill (LU, {n} ranks, dup 2%, corrupt 1%)"),
        &[
            "protocol",
            "drop_%",
            "wall_ms",
            "overhead_x",
            "retransmits",
            "dropped",
            "dup",
            "corrupt",
            "kills",
            "digests_ok",
        ],
    );
    let class = Class::Test;
    let steps = total_steps(Benchmark::Lu, class);
    let ckpt = (steps / 6).max(2);
    for kind in ProtocolKind::ALL {
        let run = |chaos_drop: Option<f64>| {
            let mut c = ClusterConfig::new(
                n,
                RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(ckpt)),
            );
            if let Some(p) = chaos_drop {
                c = c
                    .with_net(NetConfig::direct().with_chaos(
                        ChaosConfig::seeded(0xC4A05 ^ n as u64)
                            .with_drop(p)
                            .with_duplicate(0.02)
                            .with_corrupt(0.01),
                    ))
                    .with_failures(FailurePlan::kill_at(1 % n, steps / 2));
            }
            c.max_wall = Duration::from_secs(600);
            run_benchmark(Benchmark::Lu, class, &c).expect("chaos run")
        };
        let clean = run(None);
        let clean_ms = clean.wall.as_secs_f64() * 1e3;
        for drop_p in [0.0, 0.02, 0.05] {
            let r = run(Some(drop_p));
            let wall_ms = r.wall.as_secs_f64() * 1e3;
            t.row(vec![
                kind.to_string(),
                format!("{:.0}", drop_p * 100.0),
                format!("{wall_ms:.1}"),
                format!("{:.2}", wall_ms / clean_ms),
                r.retransmits.to_string(),
                r.chaos_dropped.to_string(),
                r.chaos_duplicated.to_string(),
                r.chaos_corrupted.to_string(),
                r.kills.to_string(),
                (r.digests == clean.digests).to_string(),
            ]);
        }
    }
    t
}

/// DP1 (zero-copy data plane): byte accounting from the transport's
/// [`lclog_runtime::DataPlaneStats`], for each protocol on a clean
/// fabric and on a chaotic one (loss + duplication + corruption +
/// mid-run kill). `payload_copies` counts single-pass payload encodes
/// — exactly one per freshly framed send; `zc_resend` counts
/// recovery/rendezvous resends that reused already-encoded sender-log
/// bytes, and `retx` counts frames retransmitted verbatim from the
/// unacked map — both, by construction, copy zero payload bytes.
pub fn data_plane_table(n: usize) -> Table {
    let mut t = Table::new(
        format!("DP1 — Zero-copy data plane accounting (LU, {n} ranks)"),
        &[
            "protocol",
            "fabric",
            "frames",
            "kB_framed",
            "payload_copies",
            "kB_copied",
            "zc_resend",
            "retx",
            "digests_ok",
        ],
    );
    let class = Class::Test;
    let steps = total_steps(Benchmark::Lu, class);
    let ckpt = (steps / 6).max(2);
    for kind in ProtocolKind::ALL {
        let run = |chaotic: bool| {
            let mut c = ClusterConfig::new(
                n,
                RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(ckpt)),
            );
            if chaotic {
                c = c
                    .with_net(NetConfig::direct().with_chaos(
                        ChaosConfig::seeded(0xD47A ^ n as u64)
                            .with_drop(0.02)
                            .with_duplicate(0.02)
                            .with_corrupt(0.01),
                    ))
                    .with_failures(FailurePlan::kill_at(1 % n, steps / 2));
            }
            c.max_wall = Duration::from_secs(600);
            run_benchmark(Benchmark::Lu, class, &c).expect("data-plane run")
        };
        let clean = run(false);
        for (label, r) in [("clean", &clean), ("chaos", &run(true))] {
            let dp = &r.data_plane;
            t.row(vec![
                kind.to_string(),
                label.to_string(),
                dp.frames_built.to_string(),
                format!("{:.1}", dp.bytes_framed as f64 / 1e3),
                dp.payload_copies.to_string(),
                format!("{:.1}", dp.payload_bytes_copied as f64 / 1e3),
                dp.zero_copy_resends.to_string(),
                dp.retransmit_frames.to_string(),
                (r.digests == clean.digests).to_string(),
            ]);
        }
    }
    t
}

/// DET1 (failure detector ablation): sweep the φ-accrual suspicion
/// threshold against fabric delay profiles and report, per cell, how
/// fast real deaths are certified (`detect_ms`, mean crash→declaration
/// latency), how many certifications were *false* (`false_kills` — a
/// live incarnation fenced and forced to rejoin), and whether the run
/// still produced the failure-free digests. Low thresholds detect
/// faster but misfire under heavy-tailed delays; the table makes the
/// trade visible and motivates the φ = 8 default.
pub fn ablation_detector(n: usize) -> Table {
    let mut t = Table::new(
        format!("DET1 — Detector threshold × delay profile (LU/TDI, {n} ranks, 1 real kill)"),
        &[
            "phi",
            "delays",
            "wall_ms",
            "declared",
            "detect_ms",
            "false_kills",
            "gate_to",
            "digests_ok",
        ],
    );
    let class = Class::Test;
    let steps = total_steps(Benchmark::Lu, class);
    let ckpt = (steps / 6).max(2);
    let clean = {
        let mut c = ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(ckpt)),
        );
        c.max_wall = Duration::from_secs(600);
        run_benchmark(Benchmark::Lu, class, &c).expect("clean run")
    };
    // (label, P(extra delay), median, sigma, cap). The mild cap stays
    // under every threshold's detection silence; the heavy cap (40 ms)
    // deliberately crosses the low-φ ones.
    let profiles: [(&str, f64, u64, f64, u64); 3] = [
        ("none", 0.0, 0, 0.0, 0),
        ("mild", 0.02, 2, 1.0, 10),
        ("heavy", 0.05, 4, 1.2, 40),
    ];
    for phi in [2.0f64, 4.0, 8.0, 12.0] {
        for (label, p, median, sigma, cap) in profiles {
            let mut c = ClusterConfig::new(
                n,
                RunConfig::new(ProtocolKind::Tdi)
                    .with_checkpoint(CheckpointPolicy::EverySteps(ckpt))
                    .with_detector(DetectorConfig::default().with_threshold(phi)),
            )
            .with_failures(FailurePlan::kill_at(1 % n, steps / 2));
            if p > 0.0 {
                c = c.with_net(NetConfig::direct().with_chaos(
                    ChaosConfig::seeded(0xDE7 ^ n as u64).with_heavy_tail(
                        p,
                        Duration::from_millis(median),
                        sigma,
                        Duration::from_millis(cap),
                    ),
                ));
            }
            c.max_wall = Duration::from_secs(600);
            // A pathological cell (φ so low that fencing churn starves
            // progress) may trip the watchdog: report it as a failed
            // row instead of aborting the sweep.
            match run_benchmark(Benchmark::Lu, class, &c) {
                Ok(r) => {
                    let det = r.detector.clone().unwrap_or_default();
                    t.row(vec![
                        format!("{phi:.0}"),
                        label.to_string(),
                        format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                        det.declarations.to_string(),
                        det.mean_latency()
                            .map(|d| format!("{:.1}", d.as_secs_f64() * 1e3))
                            .unwrap_or_else(|| "-".into()),
                        det.false_kills.to_string(),
                        det.gate_timeouts.to_string(),
                        (r.digests == clean.digests).to_string(),
                    ]);
                }
                Err(e) => {
                    t.row(vec![
                        format!("{phi:.0}"),
                        label.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("false ({e})"),
                    ]);
                }
            }
        }
    }
    t
}

/// EXP1: schedule exploration — the TDI order-insensitivity claim
/// checked over every legal delivery interleaving of an
/// `MPI_ANY_SOURCE` gather workload, now with **fault choice points**
/// (crash, crash+wipe, forced detector verdicts) and **DPOR**
/// sleep-set reduction. Brute-force rows enumerate the raw tree; dpor
/// rows cover the same outcomes in a fraction of the executions
/// (`reduction` = brute schedules / dpor executions, only reported
/// when the brute row exhausted). The final row injects an
/// order-sensitive fold to demonstrate the explorer detects order
/// dependence when it exists — its shrunk counterexample is written to
/// `results/explore_counterexample.case` for `--replay`.
pub fn explore_table(quick: bool) -> Table {
    use lclog_explore::{
        explore_dpor, explore_exhaustive, explore_sampled, ExploreConfig, ExploreReport,
        FaultBudget, Fold, ReplayCase, Workload,
    };

    let mut t = Table::new(
        "EXP1 — Schedule exploration: digests & depend_interval across legal interleavings, faults included",
        &[
            "workload", "mode", "protocol", "faults", "schedules", "blocked", "wedged",
            "exhausted", "reduction", "agree", "counterexample",
        ],
    );
    let base = ExploreConfig {
        max_schedules: if quick { 40_000 } else { 500_000 },
        samples: if quick { 32 } else { 256 },
        ..Default::default()
    };
    let fault_label = |f: &FaultBudget| {
        if f.total() == 0 {
            "-".to_string()
        } else {
            let mut parts = Vec::new();
            if f.crashes > 0 {
                parts.push(format!("crash x{}", f.crashes));
            }
            if f.wipes > 0 {
                parts.push(format!("wipe x{}", f.wipes));
            }
            if f.suspects > 0 {
                parts.push(format!("suspect x{}", f.suspects));
            }
            if f.window > 0 {
                parts.push(format!("w<{}", f.window));
            }
            parts.join(" ")
        }
    };
    let mut row = |label: &str,
                   mode: &str,
                   cfg: &ExploreConfig,
                   report: &ExploreReport,
                   brute: Option<&ExploreReport>| {
        let executions = report.schedules + report.sleep_blocked;
        let reduction = match brute {
            Some(b) if b.exhausted && executions > 0 => {
                format!("{:.1}x", b.schedules as f64 / executions as f64)
            }
            _ => "-".into(),
        };
        t.row(vec![
            label.to_string(),
            mode.to_string(),
            cfg.protocol.name().to_string(),
            fault_label(&cfg.faults),
            report.schedules.to_string(),
            report.sleep_blocked.to_string(),
            report.wedged.to_string(),
            report.exhausted.to_string(),
            reduction,
            report.divergence.is_none().to_string(),
            match &report.divergence {
                None => "-".into(),
                Some(d) => format!("trace {} -> shrunk {}", d.trace, d.shrunk),
            },
        ]);
    };

    // Fault-free n=3: brute vs DPOR, dense and sparse codecs. The
    // acceptance bar: reduction > 1 for both protocols, identical
    // digest censuses (a census mismatch surfaces as `agree=false`
    // downstream in CI via the test suite's census pin).
    let rounds = if quick { 2 } else { 3 };
    let w3 = Workload::rotating_gather(3, rounds);
    for protocol in [ProtocolKind::Tdi, ProtocolKind::TdiSparse(4)] {
        let cfg = ExploreConfig { protocol, ..base };
        let label = format!("gather n=3 r={rounds}");
        let brute = explore_exhaustive(&w3, &cfg);
        row(&label, "brute", &cfg, &brute, None);
        let dpor = explore_dpor(&w3, &cfg);
        row(&label, "dpor", &cfg, &dpor, Some(&brute));
    }

    // Single-crash matrix at n=3: every schedule of the two-round
    // gather with a crash of any live rank injectable before any
    // enabled action. Brute enumerates fault alternatives too, so the
    // reduction factor is like-for-like.
    let crash1 = FaultBudget {
        crashes: 1,
        ..FaultBudget::none()
    };
    let wc = Workload::rotating_gather(3, 2);
    for protocol in [ProtocolKind::Tdi, ProtocolKind::TdiSparse(4)] {
        let cfg = ExploreConfig {
            protocol,
            faults: crash1,
            ..base
        };
        let brute = explore_exhaustive(&wc, &cfg);
        row("gather n=3 r=2", "brute", &cfg, &brute, None);
        let dpor = explore_dpor(&wc, &cfg);
        row("gather n=3 r=2", "dpor", &cfg, &dpor, Some(&brute));
    }

    // Crash + storage wipe with checkpointing on: the victim falls
    // back past its wiped checkpoint and replays under survivor log
    // resends (log_gc_lag keeps one generation resendable).
    {
        let cfg = ExploreConfig {
            faults: FaultBudget {
                wipes: 1,
                ..FaultBudget::none()
            },
            ..base
        };
        let ww = Workload::rotating_gather(3, 2).with_checkpoints(2);
        let dpor = explore_dpor(&ww, &cfg);
        row("gather n=3 r=2 ckpt2", "dpor", &cfg, &dpor, None);
    }

    // Crash composed with a detector verdict (true kill or false
    // suspicion of a survivor) — two faults per schedule, so the
    // one-round gather keeps the product of positions enumerable.
    {
        let cfg = ExploreConfig {
            faults: FaultBudget {
                crashes: 1,
                suspects: 1,
                ..FaultBudget::none()
            },
            ..base
        };
        let wp = Workload::rotating_gather(3, 1);
        let dpor = explore_dpor(&wp, &cfg);
        row("gather n=3 r=1", "dpor", &cfg, &dpor, None);
    }

    // Exhaustive n=4 single-crash matrix: one crash, any target, any
    // position, all downstream interleavings. Only application frames
    // are choice points (protocol traffic flushes eagerly), which is
    // what keeps this enumerable; see DESIGN.md §12.
    {
        let cfg = ExploreConfig {
            faults: FaultBudget {
                crashes: 1,
                ..FaultBudget::none()
            },
            ..base
        };
        let w4 = Workload::rotating_gather(4, 1);
        let dpor = explore_dpor(&w4, &cfg);
        row("gather n=4 r=1", "dpor", &cfg, &dpor, None);
    }

    // Sampled fault-free n=4 — the tree is too large to enumerate.
    {
        let w = Workload::rotating_gather(4, if quick { 2 } else { 4 });
        let report = explore_sampled(&w, &base);
        row("gather n=4", "sampled", &base, &report, None);
    }

    // The injected mutation: same workload, order-sensitive fold. The
    // explorer must disagree; its shrunk trace becomes a replayable
    // counterexample case file.
    {
        let mut w = Workload::rotating_gather(3, 2);
        w.fold = Fold::OrderSensitive;
        let report = explore_exhaustive(&w, &base);
        if let Some(div) = &report.divergence {
            let mut case = ReplayCase::gather(3, 2, div.shrunk.clone());
            case.fold = Fold::OrderSensitive;
            let dir = std::path::Path::new("results");
            if std::fs::create_dir_all(dir).is_ok() {
                let path = dir.join("explore_counterexample.case");
                if std::fs::write(&path, case.to_string()).is_ok() {
                    println!(
                        "(saved {} — replay with `reproduce -- explore --replay {}`)",
                        path.display(),
                        path.display()
                    );
                }
            }
        }
        row(
            "gather n=3 ORDER-SENSITIVE (expect disagree)",
            "brute",
            &base,
            &report,
            None,
        );
    }
    t
}

/// LS1 (durable log shipping): recovery latency and data integrity
/// across a backend-outage duration sweep × restore-path sweep.
///
/// Paths: `kill` keeps the local store (ordinary ROLLBACK recovery,
/// the remote is passive); `wipe` loses the node's store and restores
/// the newest certified generation from the remote; `wipe+corrupt`
/// additionally tears the newest remote upload, forcing the restore to
/// fall back one generation. Outages are windows in storage-operation
/// space ([`StorageChaos::with_outage`]); retries burn through them,
/// so `short`/`long` translate to breaker-open windows of growing
/// duration. `data_loss` must read `none` in every row: the digests of
/// every faulted run equal the fault-free run's.
pub fn log_ship_table(quick: bool) -> Table {
    let mut t = Table::new(
        "LS1 — Durable log shipping: outage duration × restore path (ring, 4 ranks)",
        &[
            "outage",
            "path",
            "wall_ms",
            "restore_ms",
            "gens_skipped",
            "shipped",
            "spill_peak_B",
            "shed",
            "degraded_ms",
            "resyncs",
            "data_loss",
        ],
    );
    let n = 4;
    let rounds = if quick { 18 } else { 30 };
    let kill_step = rounds / 2;
    let app = RingApp {
        rounds,
        payload: 64,
    };
    let base = |seed: u64, outage: Option<(u64, u64)>| {
        let mut chaos = StorageChaos::seeded(seed);
        if let Some((from, to)) = outage {
            chaos = chaos.with_outage(from, to);
        }
        let (remote, _) = RemoteConfig::faulty(chaos);
        let repl = ReplicatorConfig {
            retry_initial: Duration::from_micros(200),
            retry_cap: Duration::from_millis(2),
            breaker_cooldown: Duration::from_millis(2),
            spill_limit_bytes: 32 * 1024,
            ..ReplicatorConfig::default()
        };
        let mut c = ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(3)),
        )
        .with_remote(remote.with_replicator(repl));
        c.max_wall = Duration::from_secs(120);
        c
    };
    let clean = Cluster::run(&base(1, None), app).expect("clean run").digests;
    let outages: [(&str, Option<(u64, u64)>); 3] = [
        ("none", None),
        ("short", Some((6, 40))),
        ("long", Some((6, 160))),
    ];
    type PathPlan = fn(u64) -> FailurePlan;
    let paths: [(&str, PathPlan); 3] = [
        ("kill", |at| FailurePlan::kill_at(1, at)),
        ("wipe", |at| FailurePlan::kill_wipe_at(1, at)),
        ("wipe+corrupt", |at| {
            FailurePlan::none().and_kill_wipe_corrupt(1, at)
        }),
    ];
    for (outage_label, outage) in outages {
        for (path_label, plan) in paths {
            let seed = 0x0015_AB1E ^ (outage_label.len() as u64) << 8 ^ path_label.len() as u64;
            let cfg = base(seed, outage).with_failures(plan(kill_step));
            let r = Cluster::run(&cfg, app).expect("log-ship run recovers");
            let stats = r.replicator.clone().unwrap_or_default();
            t.row(vec![
                outage_label.to_string(),
                path_label.to_string(),
                format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                format!("{:.2}", stats.restore_latency.as_secs_f64() * 1e3),
                stats.generations_skipped.to_string(),
                stats.objects_shipped.to_string(),
                stats.spill_peak_bytes.to_string(),
                stats.spill_shed.to_string(),
                format!("{:.1}", stats.degraded.as_secs_f64() * 1e3),
                stats.resyncs.to_string(),
                if r.digests == clean { "none" } else { "LOST" }.to_string(),
            ]);
        }
    }
    t
}

/// Real-clock cost of one send + one deliver at the tracking layer —
/// the cluster runs use a virtual clock (whose tracking-time counters
/// are deterministically zero), so Fig. 7's metric is measured here as
/// a standalone protocol-level microbench: a ring neighbor exchanging
/// `iters` messages with its two peers, timed end to end.
fn tracking_us_per_msg(kind: ProtocolKind, n: usize, iters: u64) -> f64 {
    use lclog_core::make_protocol;
    let mut left = make_protocol(kind, n - 1, n);
    let mut me = make_protocol(kind, 0, n);
    let mut right = make_protocol(kind, 1, n);
    let t0 = std::time::Instant::now();
    for i in 1..=iters {
        let out = me.on_send(1, i);
        right
            .on_deliver(0, i, &out.piggyback)
            .expect("ring deliver");
        let inbound = left.on_send(0, i);
        me.on_deliver(n - 1, i, &inbound.piggyback)
            .expect("ring deliver");
    }
    // Each iteration is one send + one deliver on `me` (the peers'
    // halves are the same work, counted once).
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// SC1: piggyback-bytes × tracking-time scaling, extending Fig. 6/7
/// beyond the paper's n = 32 ceiling. Every run uses the task engine
/// (ranks as scheduler tasks on a worker pool, held fabric, virtual
/// clock) on the neighbor-exchange ring, sweeping n with dense TDI
/// against sparse delta tracking (TDI-S). Each (n, protocol) cell runs
/// fault-free and again with rank 1 killed mid-run; `digest_ok` is the
/// recovery cross-check (faulty digests == clean digests). Dense TDI's
/// per-send piggyback grows linearly in n; TDI-S stays near-constant —
/// that gap is the point of the sparse codec. `track_us` comes from a
/// real-clock protocol-level microbench (the cluster's virtual-clock
/// tracking counters read zero by design).
pub fn scaling_table(quick: bool) -> Table {
    let mut t = Table::new(
        "SC1 — Scaling: piggyback bytes × tracking time, dense TDI vs TDI-S (task engine)",
        &[
            "n",
            "protocol",
            "bytes/send",
            "ids/send",
            "track_us",
            "delta",
            "full",
            "resyncs",
            "wall_ms",
            "kills",
            "digest_ok",
        ],
    );
    let ns: &[usize] = if quick {
        &[32, 128]
    } else {
        &[32, 128, 512, 1024]
    };
    let rounds: u64 = if quick { 6 } else { 16 };
    let kill_step = rounds / 2;
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    let app = TaskRing {
        rounds,
        payload: 64,
    };
    for &n in ns {
        for kind in [ProtocolKind::Tdi, ProtocolKind::TdiSparse(32)] {
            let cfg = |failures: FailurePlan| {
                ClusterConfig::new(
                    n,
                    RunConfig::new(kind)
                        .with_checkpoint(CheckpointPolicy::EverySteps(8))
                        .with_engine(EngineMode::Tasks { workers }),
                )
                .with_failures(failures)
                .with_max_wall(Duration::from_secs(600))
            };
            let clean = run_tasks(&cfg(FailurePlan::none()), app).expect("clean scaling run");
            let faulty = run_tasks(&cfg(FailurePlan::kill_at(1, kill_step)), app)
                .expect("faulty scaling run");
            let digest_ok = faulty.kills >= 1 && faulty.digests == clean.digests;
            let track_us = tracking_us_per_msg(kind, n, if quick { 2_000 } else { 20_000 });
            t.row(vec![
                n.to_string(),
                kind.to_string(),
                format!("{:.1}", clean.stats.avg_bytes_per_msg()),
                format!("{:.1}", clean.stats.avg_ids_per_msg()),
                format!("{:.3}", track_us),
                clean.stats.delta_frames.to_string(),
                clean.stats.full_frames.to_string(),
                faulty.stats.resync_requests.to_string(),
                format!("{:.1}", clean.wall.as_secs_f64() * 1e3),
                faulty.kills.to_string(),
                digest_ok.to_string(),
            ]);
        }
    }
    t
}

/// Deliveries between receiver checkpoints in the HP1 harness
/// (sender-log GC cadence, mirrors the `kernel_hot_path` bench).
const HP_CKPT_EVERY: u64 = 1024;

/// A two-rank kernel pair on a direct fabric — the HP1 measurement
/// rig, mirroring the `kernel_hot_path` criterion bench.
struct HotPair {
    _net: lclog_simnet::SimNet,
    k0: std::sync::Arc<lclog_runtime::Kernel>,
    k1: std::sync::Arc<lclog_runtime::Kernel>,
    ep0: lclog_simnet::Endpoint,
    ep1: lclog_simnet::Endpoint,
    delivered: u64,
    ckpts: u64,
}

fn hot_pair() -> HotPair {
    use lclog_stable::{CheckpointStore, MemStore};
    use std::sync::Arc;
    let net = lclog_simnet::SimNet::new(3, NetConfig::direct());
    let store = CheckpointStore::new(Arc::new(MemStore::new()));
    let ep0 = net.attach(0);
    let ep1 = net.attach(1);
    let k0 = Arc::new(lclog_runtime::Kernel::new(
        0,
        2,
        RunConfig::new(ProtocolKind::Tdi),
        net.clone(),
        store.clone(),
    ));
    let k1 = Arc::new(lclog_runtime::Kernel::new(
        1,
        2,
        RunConfig::new(ProtocolKind::Tdi),
        net.clone(),
        store,
    ));
    HotPair {
        _net: net,
        k0,
        k1,
        ep0,
        ep1,
        delivered: 0,
        ckpts: 0,
    }
}

impl HotPair {
    /// One comm-thread round for both ranks: batch-ingest the fabric
    /// inboxes, deliver on rank 1, checkpoint every `HP_CKPT_EVERY`
    /// deliveries so rank 0's sender log stays bounded.
    fn service(&mut self) {
        use lclog_runtime::RecvSpec;
        let mut batch = Vec::new();
        while let Ok(env) = self.ep1.try_recv() {
            batch.push(env);
        }
        if !batch.is_empty() {
            self.k1.ingest_batch(batch);
        }
        while self.k1.try_deliver(RecvSpec::any()).is_some() {
            self.delivered += 1;
            if self.delivered.is_multiple_of(HP_CKPT_EVERY) {
                self.ckpts += 1;
                self.k1.do_checkpoint(Vec::new(), self.ckpts);
            }
        }
        let mut acks = Vec::new();
        while let Ok(env) = self.ep0.try_recv() {
            acks.push(env);
        }
        if !acks.is_empty() {
            self.k0.ingest_batch(acks);
        }
    }
}

/// Mean `app_send` latency in nanoseconds. Uncontended: receiver
/// servicing runs untimed between 64-send chunks. Contended: a comm
/// thread concurrently ingests acks, delivers, checkpoints, and runs
/// both kernels' ticks against the same pair.
fn send_latency_ns(contended: bool, iters: u64) -> f64 {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    let data = bytes::Bytes::from(vec![7u8; 256]);
    let mut p = hot_pair();
    let k0 = Arc::clone(&p.k0);
    if !contended {
        let mut timed = Duration::ZERO;
        let mut i = 0;
        while i < iters {
            p.service();
            let chunk = 64.min(iters - i);
            let t0 = Instant::now();
            for _ in 0..chunk {
                k0.app_send(1, 0, data.clone(), false);
            }
            timed += t0.elapsed();
            i += chunk;
        }
        timed.as_nanos() as f64 / iters as f64
    } else {
        let stop = Arc::new(AtomicBool::new(false));
        let comm = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    p.service();
                    p.k0.tick();
                    p.k1.tick();
                    std::hint::spin_loop();
                }
            })
        };
        for _ in 0..1_000 {
            k0.app_send(1, 0, data.clone(), false);
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            k0.app_send(1, 0, data.clone(), false);
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        stop.store(true, Ordering::Relaxed);
        comm.join().unwrap();
        ns
    }
}

/// Mean successful `try_deliver` latency in nanoseconds.
/// Uncontended: one thread alternates untimed feeding (send + ingest)
/// with timed delivery chunks. Contended: a feeder thread keeps
/// sending on rank 0 and ingesting into rank 1 — hammering the
/// tracking layer — while the timed thread only delivers. The 3-phase
/// deliver path (at most one layer lock held at any instant) is what
/// keeps the contended number near the uncontended one; before the
/// lock split, every ingest serialized against the whole delivery.
fn deliver_latency_ns(contended: bool, iters: u64) -> f64 {
    use lclog_runtime::RecvSpec;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    let data = bytes::Bytes::from(vec![7u8; 256]);
    let p = hot_pair();
    if !contended {
        let mut timed = Duration::ZERO;
        let mut delivered = 0u64;
        let mut ckpts = 0u64;
        while delivered < iters {
            let chunk = 64.min(iters - delivered);
            for _ in 0..chunk {
                p.k0.app_send(1, 0, data.clone(), false);
            }
            let mut batch = Vec::new();
            while let Ok(env) = p.ep1.try_recv() {
                batch.push(env);
            }
            p.k1.ingest_batch(batch);
            let t0 = Instant::now();
            for _ in 0..chunk {
                assert!(p.k1.try_deliver(RecvSpec::any()).is_some());
            }
            timed += t0.elapsed();
            delivered += chunk;
            if delivered / HP_CKPT_EVERY > ckpts {
                ckpts = delivered / HP_CKPT_EVERY;
                p.k1.do_checkpoint(Vec::new(), ckpts);
            }
            let mut acks = Vec::new();
            while let Ok(env) = p.ep0.try_recv() {
                acks.push(env);
            }
            if !acks.is_empty() {
                p.k0.ingest_batch(acks);
            }
        }
        timed.as_nanos() as f64 / iters as f64
    } else {
        let k1 = Arc::clone(&p.k1);
        let stop = Arc::new(AtomicBool::new(false));
        let delivered = Arc::new(AtomicU64::new(0));
        let feeder = {
            let stop = Arc::clone(&stop);
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Keep a bounded window in flight so memory and the
                    // sender log stay flat.
                    if sent.saturating_sub(delivered.load(Ordering::Acquire)) < 4096 {
                        for _ in 0..64 {
                            p.k0.app_send(1, 0, data.clone(), false);
                        }
                        sent += 64;
                    }
                    let mut batch = Vec::new();
                    while let Ok(env) = p.ep1.try_recv() {
                        batch.push(env);
                    }
                    if !batch.is_empty() {
                        p.k1.ingest_batch(batch);
                    }
                    let mut acks = Vec::new();
                    while let Ok(env) = p.ep0.try_recv() {
                        acks.push(env);
                    }
                    if !acks.is_empty() {
                        p.k0.ingest_batch(acks);
                    }
                    std::hint::spin_loop();
                }
            })
        };
        let mut done = 0u64;
        let mut ckpts = 0u64;
        let t0 = Instant::now();
        while done < iters {
            if k1.try_deliver(RecvSpec::any()).is_some() {
                done += 1;
                delivered.store(done, Ordering::Release);
                if done.is_multiple_of(HP_CKPT_EVERY) {
                    ckpts += 1;
                    k1.do_checkpoint(Vec::new(), ckpts);
                }
            } else {
                std::hint::spin_loop();
            }
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        stop.store(true, Ordering::Relaxed);
        feeder.join().unwrap();
        ns
    }
}

/// Send-side saturation: `producers` threads hammer `app_send` on
/// the same kernel while one service thread concurrently drains,
/// delivers, and checkpoints. Returns kframes/s over the producers'
/// wall time — the capacity of the lock-free send path under
/// contention, not receiver throughput. The receiver is drained
/// (untimed) before teardown so every frame is accounted for.
fn saturation_kfps(producers: usize, per_producer: u64) -> f64 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    let mut p = hot_pair();
    let total = producers as u64 * per_producer;
    let k0 = Arc::clone(&p.k0);
    let done = Arc::new(AtomicBool::new(false));
    let delivered = Arc::new(AtomicU64::new(0));
    let service = {
        let done = Arc::clone(&done);
        let delivered = Arc::clone(&delivered);
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                p.service();
                delivered.store(p.delivered, Ordering::Release);
                std::hint::spin_loop();
            }
        })
    };
    let data = bytes::Bytes::from(vec![7u8; 256]);
    let start = Instant::now();
    let senders: Vec<_> = (0..producers)
        .map(|_| {
            let k0 = Arc::clone(&k0);
            let data = data.clone();
            std::thread::spawn(move || {
                for _ in 0..per_producer {
                    k0.app_send(1, 0, data.clone(), false);
                }
            })
        })
        .collect();
    for s in senders {
        s.join().unwrap();
    }
    let wall = start.elapsed();
    // Untimed: let the service thread finish delivering the backlog.
    let drain_start = Instant::now();
    while delivered.load(Ordering::Acquire) < total
        && drain_start.elapsed() < Duration::from_secs(120)
    {
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);
    service.join().unwrap();
    total as f64 / wall.as_secs_f64() / 1e3
}

/// HP1 (lock-free hot path): `app_send` latency with and without a
/// concurrent comm thread, a frames/sec saturation sweep over 1–8
/// producer threads on one kernel, and the digest-parity gate that
/// guards the ring data plane — clean vs. mid-run kill, across both
/// engines (threaded ranks, ranks-as-tasks) and both tracking
/// protocols (TDI, TDI-S). A `false` in `digest_ok` means the
/// lock-free path broke exactly-once recovery.
pub fn hotpath_table(quick: bool) -> Table {
    let mut t = Table::new(
        "HP1 — Lock-free hot path: app_send latency, saturation sweep, digest parity",
        &[
            "cell",
            "threads",
            "ns_per_op",
            "kframes_s",
            "engine",
            "protocol",
            "kills",
            "digest_ok",
        ],
    );
    let iters: u64 = if quick { 20_000 } else { 200_000 };
    for contended in [false, true] {
        let ns = send_latency_ns(contended, iters);
        t.row(vec![
            if contended {
                "send_contended"
            } else {
                "send_uncontended"
            }
            .to_string(),
            "1".to_string(),
            format!("{ns:.0}"),
            "-".to_string(),
            "threads".to_string(),
            "tdi".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    // The deliver-side counterpart: the contended cell has a feeder
    // thread ingesting into the same kernel's tracking layer the whole
    // time — the number the 3-phase `try_deliver` lock split exists
    // for.
    for contended in [false, true] {
        let ns = deliver_latency_ns(contended, iters);
        t.row(vec![
            if contended {
                "deliver_contended"
            } else {
                "deliver_uncontended"
            }
            .to_string(),
            if contended { "2" } else { "1" }.to_string(),
            format!("{ns:.0}"),
            "-".to_string(),
            "threads".to_string(),
            "tdi".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    let per_producer: u64 = if quick { 20_000 } else { 100_000 };
    for producers in [1usize, 2, 4, 8] {
        let kfps = saturation_kfps(producers, per_producer);
        t.row(vec![
            "saturation".to_string(),
            producers.to_string(),
            format!("{:.0}", 1e6 / kfps),
            format!("{kfps:.0}"),
            "threads".to_string(),
            "tdi".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    // Digest parity: the ring data plane must reproduce fault-free
    // digests through a mid-run kill on every engine × protocol cell.
    let class = Class::Test;
    let steps = total_steps(Benchmark::Lu, class);
    let ckpt = (steps / 6).max(2);
    let rounds: u64 = if quick { 6 } else { 16 };
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    for kind in [ProtocolKind::Tdi, ProtocolKind::TdiSparse(32)] {
        let threaded = |kill: bool| {
            let mut c = ClusterConfig::new(
                8,
                RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(ckpt)),
            );
            if kill {
                c = c.with_failures(FailurePlan::kill_at(1, steps / 2));
            }
            c.max_wall = Duration::from_secs(600);
            run_benchmark(Benchmark::Lu, class, &c).expect("hotpath parity run")
        };
        let clean = threaded(false);
        let faulty = threaded(true);
        t.row(vec![
            "parity_kill".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "threads".to_string(),
            kind.to_string(),
            faulty.kills.to_string(),
            (faulty.kills >= 1 && faulty.digests == clean.digests).to_string(),
        ]);
        let tasks = |kill: bool| {
            let failures = if kill {
                FailurePlan::kill_at(1, rounds / 2)
            } else {
                FailurePlan::none()
            };
            let cfg = ClusterConfig::new(
                8,
                RunConfig::new(kind)
                    .with_checkpoint(CheckpointPolicy::EverySteps(8))
                    .with_engine(EngineMode::Tasks { workers }),
            )
            .with_failures(failures)
            .with_max_wall(Duration::from_secs(600));
            run_tasks(
                &cfg,
                TaskRing {
                    rounds,
                    payload: 64,
                },
            )
            .expect("hotpath tasks parity run")
        };
        let clean = tasks(false);
        let faulty = tasks(true);
        t.row(vec![
            "parity_kill".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "tasks".to_string(),
            kind.to_string(),
            faulty.kills.to_string(),
            (faulty.kills >= 1 && faulty.digests == clean.digests).to_string(),
        ]);
    }
    t
}

/// SV1 (persistent service): J concurrent tenant jobs multiplexed
/// onto one warm `lclog-serve` runtime, driven through the real TCP
/// front end. Faults escalate across rows (none → process kill → node
/// loss → node loss with a torn upload); the faulted tenant must land
/// on its fault-free digests through the service's shared
/// storage/replication plane, and every co-resident tenant must be
/// byte-identical to its own fault-free run with zero kills — the
/// zero-interference gate.
pub fn serve_table(quick: bool) -> Table {
    use lclog_serve::{Client, JobSpec, Service, ServiceConfig};
    use std::time::Instant;

    let mut t = Table::new(
        "SV1 — persistent service: concurrent tenants × mid-job fault",
        &[
            "jobs",
            "fault",
            "wall_ms",
            "jobs_per_s",
            "faulted_wall_ms",
            "kills",
            "digests_ok",
            "co_resident_ok",
        ],
    );
    let rounds: u64 = if quick { 8 } else { 16 };
    let job_counts: &[usize] = if quick { &[4] } else { &[4, 8] };
    let protos = ["tdi", "tdis", "tag"];
    let kinds = ["ring", "pairs"];
    let parse = |s: &str| JobSpec::parse(s.split_whitespace()).expect("SV1 spec parses");
    for &jobs in job_counts {
        // The tenant mix is fixed across the fault column so rows are
        // comparable; only the injected fault changes.
        let specs: Vec<String> = (0..jobs)
            .map(|i| {
                format!(
                    "kind={} n={} proto={} rounds={rounds}",
                    kinds[i % kinds.len()],
                    4 + i % 3,
                    protos[i % protos.len()],
                )
            })
            .collect();
        let expected: Vec<String> = specs
            .iter()
            .map(|s| {
                let spec = parse(s);
                run_tasks(&spec.cluster_config(0), spec.workload())
                    .expect("SV1 fault-free baseline")
                    .digests
                    .iter()
                    .map(|d| format!("{d:016x}"))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        for fault in ["none", "kill", "kill_wipe", "kill_wipe_corrupt"] {
            let victim_job = jobs / 2;
            let service = Service::start(ServiceConfig::default());
            let addr = service.listen("127.0.0.1:0").expect("SV1 bind loopback");
            let mut client = Client::connect(addr).expect("SV1 connect");
            let start = Instant::now();
            let ids: Vec<String> = specs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let fault_args = if i == victim_job {
                        match fault {
                            "kill" => format!(" kill=1@{}", rounds / 2),
                            "kill_wipe" => format!(" kill=1@{} wipe=on", rounds / 2),
                            "kill_wipe_corrupt" => {
                                format!(" kill=1@{} corrupt=on", rounds / 2)
                            }
                            _ => String::new(),
                        }
                    } else {
                        String::new()
                    };
                    client
                        .request_field(&format!("SUBMIT {s}{fault_args}"), "id")
                        .expect("SV1 submit")
                })
                .collect();
            let deadline = Instant::now() + Duration::from_secs(300);
            for id in &ids {
                loop {
                    let status = client
                        .request(&format!("STATUS {id}"))
                        .expect("SV1 status");
                    if status.contains("state=finished") {
                        break;
                    }
                    assert!(
                        !status.contains("state=failed") && Instant::now() < deadline,
                        "SV1 job wedged: {status}"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            let wall = start.elapsed();
            let mut digests_ok = true;
            let mut co_resident_ok = true;
            let mut kills = 0u64;
            let mut faulted_wall_ms = "-".to_string();
            for (i, id) in ids.iter().enumerate() {
                let digests = client
                    .request(&format!("DIGESTS {id}"))
                    .expect("SV1 digests");
                let ok = digests.ends_with(&expected[i]);
                let job_kills: u64 = client
                    .request_field(&format!("REPORT {id}"), "kills")
                    .expect("SV1 report")
                    .parse()
                    .unwrap_or(0);
                kills += job_kills;
                if i == victim_job {
                    digests_ok &= ok;
                    faulted_wall_ms = client
                        .request_field(&format!("REPORT {id}"), "wall_ms")
                        .expect("SV1 wall");
                } else {
                    // A co-resident tenant diverging or dying is the
                    // interference the service must never exhibit.
                    co_resident_ok &= ok && job_kills == 0;
                    digests_ok &= ok;
                }
            }
            let (_, synced) = service.drain(Duration::from_secs(30));
            service.shutdown();
            t.row(vec![
                jobs.to_string(),
                fault.to_string(),
                wall.as_millis().to_string(),
                format!("{:.1}", jobs as f64 / wall.as_secs_f64()),
                faulted_wall_ms,
                kills.to_string(),
                (digests_ok && synced).to_string(),
                co_resident_ok.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_produces_full_grid() {
        let cfg = ExpConfig {
            class: Class::Test,
            procs: vec![2, 4],
        };
        let cells = overhead_matrix(&cfg);
        assert_eq!(cells.len(), 3 * 2 * 3);
        let fig6 = fig6_table(&cells);
        let fig7 = fig7_table(&cells);
        assert_eq!(fig6.len(), 6);
        assert_eq!(fig7.len(), 6);
        // TDI's Fig. 6 value is exactly n for every workload.
        for c in cells.iter().filter(|c| c.kind == ProtocolKind::Tdi) {
            assert_eq!(c.avg_ids, c.n as f64, "{} n={}", c.bench, c.n);
        }
    }

    #[test]
    fn chaos_table_keeps_digests_and_counts_faults() {
        let t = ablation_chaos(2);
        assert_eq!(t.len(), 9, "3 protocols x 3 loss rates");
        for row in t.rows() {
            assert_eq!(row.last().map(String::as_str), Some("true"), "{row:?}");
            // The kill fired on every chaotic run.
            assert_eq!(row[8], "1", "{row:?}");
        }
        // The lossy cells actually exercised the retransmit path.
        let lossy: Vec<_> = t.rows().iter().filter(|r| r[1] != "0").collect();
        assert!(lossy.iter().all(|r| r[4].parse::<u64>().unwrap() > 0), "retransmits recorded");
        assert!(lossy.iter().all(|r| r[5].parse::<u64>().unwrap() > 0), "drops recorded");
    }

    #[test]
    fn data_plane_table_shows_zero_copy_resend_paths() {
        let t = data_plane_table(2);
        assert_eq!(t.len(), 6, "3 protocols x clean/chaos");
        for row in t.rows() {
            assert_eq!(row.last().map(String::as_str), Some("true"), "{row:?}");
            let frames: u64 = row[2].parse().unwrap();
            let copies: u64 = row[4].parse().unwrap();
            assert!(copies <= frames, "one payload pass per built frame: {row:?}");
            if row[1] == "clean" {
                // No faults → nothing resent from the sender log.
                // Timeout retransmits (row 7) are NOT asserted zero:
                // on a starved CPU a receiver thread can sit
                // descheduled past the retransmit deadline, so a
                // clean run may legally retransmit a few frames (the
                // receiver dedups them). Asserting 0 here made the
                // test flake under load.
                assert_eq!(row[6], "0", "{row:?}");
            } else {
                // Chaos exercised at least one of the zero-copy
                // resend paths (which one is timing-dependent: fast
                // runs recover via log resends before a retransmit
                // timer fires).
                let zc: u64 = row[6].parse().unwrap();
                let retx: u64 = row[7].parse().unwrap();
                assert!(zc + retx > 0, "{row:?}");
            }
        }
    }

    #[test]
    fn log_ship_table_loses_no_data_on_any_path() {
        let t = log_ship_table(true);
        assert_eq!(t.len(), 9, "3 outages x 3 restore paths");
        for row in t.rows() {
            assert_eq!(row.last().map(String::as_str), Some("none"), "{row:?}");
            match row[1].as_str() {
                // Node-loss paths must actually exercise the restore.
                "wipe" | "wipe+corrupt" => {
                    let restore_ms: f64 = row[3].parse().unwrap();
                    assert!(restore_ms > 0.0, "{row:?}");
                }
                _ => {}
            }
            if row[1] == "wipe+corrupt" {
                let skipped: u32 = row[4].parse().unwrap();
                assert!(skipped >= 1, "torn upload must be skipped: {row:?}");
            }
        }
        // The outage rows saw a degraded window and re-synced after.
        let outage_rows: Vec<_> = t.rows().iter().filter(|r| r[0] != "none").collect();
        assert!(
            outage_rows
                .iter()
                .any(|r| r[9].parse::<u32>().unwrap() >= 1),
            "some outage row must record a resync"
        );
    }

    #[test]
    fn total_steps_matches_phase_structure() {
        let (_, _, gnz, iters) = Class::Test.lu_dims();
        assert_eq!(total_steps(Benchmark::Lu, Class::Test), iters * (2 * gnz as u64 + 1));
        assert_eq!(total_steps(Benchmark::Bt, Class::Test), Class::Test.adi_dims().1 * 4);
        assert_eq!(total_steps(Benchmark::Sp, Class::Test), Class::Test.adi_dims().1 * 6);
    }
}
