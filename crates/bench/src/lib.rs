//! # lclog-bench
//!
//! The experiment harness that regenerates every figure of the
//! paper's evaluation (§IV) plus two ablations:
//!
//! * [`experiments::fig6_table`] — average piggyback amount per
//!   message (identifier count), 3 protocols × {LU, BT, SP} ×
//!   {4, 8, 16, 32} processes;
//! * [`experiments::fig7_table`] — dependency-tracking time overhead,
//!   same matrix;
//! * [`experiments::fig8_table`] — normalized accomplishment time with
//!   a mid-run failure, blocking (Fig. 4a) vs non-blocking (Fig. 4b)
//!   communication;
//! * [`experiments::ablation_rate`] — piggyback growth vs message
//!   count (TDI flat at `n`, TAG full-history growth, TEL
//!   stabilization plateau);
//! * [`experiments::ablation_replay`] — rolling-forward time under an
//!   adversarially reordering fabric (TDI's relaxed delivery vs PWD
//!   replay).
//!
//! Run everything with `cargo run -p lclog-bench --bin reproduce
//! --release`; Criterion variants live in `benches/`.

#![warn(missing_docs)]

pub mod apps;
pub mod experiments;
pub mod table;

pub use table::Table;
