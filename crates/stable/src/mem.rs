use crate::StableStorage;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// In-memory stable storage.
///
/// Crash survival is a property of *how the runtime uses it*: a killed
/// rank's volatile state lives in its thread and dies with it, while
/// everything written here remains readable by the incarnation. This
/// is the default backend for tests and benchmarks (the paper's disks
/// are not the phenomenon under study).
#[derive(Debug, Default)]
pub struct MemStore {
    blobs: RwLock<BTreeMap<String, Vec<u8>>>,
    logs: RwLock<BTreeMap<String, Vec<Vec<u8>>>>,
}

impl MemStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StableStorage for MemStore {
    fn put(&self, key: &str, bytes: &[u8]) {
        self.blobs.write().insert(key.to_string(), bytes.to_vec());
    }

    fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.blobs.read().get(key).cloned()
    }

    fn delete(&self, key: &str) {
        self.blobs.write().remove(key);
    }

    fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.blobs
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn append(&self, key: &str, record: &[u8]) {
        self.logs
            .write()
            .entry(key.to_string())
            .or_default()
            .push(record.to_vec());
    }

    fn read_log(&self, key: &str) -> Vec<Vec<u8>> {
        self.logs.read().get(key).cloned().unwrap_or_default()
    }

    fn log_len(&self, key: &str) -> usize {
        self.logs.read().get(key).map_or(0, Vec::len)
    }

    fn truncate_log(&self, key: &str) {
        self.logs.write().remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        let s = MemStore::new();
        conformance::blob_roundtrip(&s);
        conformance::prefix_listing(&s);
        conformance::log_append_read(&s);
        conformance::logs_and_blobs_are_separate(&s);
    }

    #[test]
    fn concurrent_appends_all_land() {
        use std::sync::Arc;
        let s = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    s.append("log", &[(t as u8), (i % 256) as u8]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.log_len("log"), 800);
    }
}
