//! Remote object storage for durable log shipping.
//!
//! The paper's recovery story assumes checkpoints and logs survive on
//! *local* stable storage, so a failure that takes the disk with the
//! process (node loss) is unrecoverable. This module provides the
//! remote side of the fix: an object-store-style [`RemoteStore`]
//! trait holding sealed checkpoint generations and log segments, a
//! CRC-checked [`Manifest`] describing what was shipped, an in-memory
//! backend, and [`FaultyRemote`] — a wrapper whose faults are seeded
//! through [`lclog_simnet::StorageChaos`] so every misbehaviour
//! (transient errors, unavailability windows, latency spikes,
//! torn/corrupt objects) replays deterministically.
//!
//! Unlike [`StableStorage`](crate::StableStorage), every operation is
//! fallible: remote backends fail, and callers (the replicator in
//! `lclog-runtime`) must retry, back off, and degrade gracefully.

use lclog_simnet::StorageChaos;
use lclog_wire::{crc32, varint, Reader};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Why a remote operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteError {
    /// A retryable hiccup: the operation may succeed if reissued.
    Transient,
    /// The backend is down; retries will keep failing until the
    /// outage ends.
    Unavailable,
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Transient => write!(f, "transient remote error"),
            RemoteError::Unavailable => write!(f, "remote backend unavailable"),
        }
    }
}

/// Result alias for remote-store operations.
pub type RemoteResult<T> = Result<T, RemoteError>;

/// An object-store-style remote backend: flat keys, whole-object
/// puts and gets, prefix listing. Implementations must be safe for
/// concurrent use.
pub trait RemoteStore: Send + Sync {
    /// Store `bytes` under `key`, replacing any previous object.
    fn put(&self, key: &str, bytes: &[u8]) -> RemoteResult<()>;

    /// Fetch the object stored under `key`.
    fn get(&self, key: &str) -> RemoteResult<Option<Vec<u8>>>;

    /// List object keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> RemoteResult<Vec<String>>;

    /// Remove the object under `key` (no-op when absent).
    fn delete(&self, key: &str) -> RemoteResult<()>;
}

/// In-memory remote backend: always healthy, always consistent. The
/// substrate under [`FaultyRemote`] and the default for tests.
#[derive(Debug, Default)]
pub struct MemRemote {
    objects: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemRemote {
    /// Create an empty remote.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RemoteStore for MemRemote {
    fn put(&self, key: &str, bytes: &[u8]) -> RemoteResult<()> {
        self.objects.write().insert(key.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> RemoteResult<Option<Vec<u8>>> {
        Ok(self.objects.read().get(key).cloned())
    }

    fn list(&self, prefix: &str) -> RemoteResult<Vec<String>> {
        Ok(self
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn delete(&self, key: &str) -> RemoteResult<()> {
        self.objects.write().remove(key);
        Ok(())
    }
}

/// A remote backend that misbehaves on a seeded schedule.
///
/// Each operation consumes one global sequence number and asks the
/// [`StorageChaos`] model for its fate: unavailability windows and
/// transient errors fail the call, latency spikes hold it, and torn
/// or bit-flipped puts *succeed* while silently storing damaged bytes
/// — the failure mode only the manifest's CRCs can catch. A manual
/// [`FaultyRemote::set_available`] switch layers wall-clock outages
/// on top for tests that need to end an outage at a chosen moment.
pub struct FaultyRemote<S> {
    inner: S,
    chaos: StorageChaos,
    ops: AtomicU64,
    forced_down: AtomicBool,
    faults: AtomicU64,
    torn_objects: AtomicU64,
}

impl<S: RemoteStore> FaultyRemote<S> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: S, chaos: StorageChaos) -> Self {
        FaultyRemote {
            inner,
            chaos,
            ops: AtomicU64::new(0),
            forced_down: AtomicBool::new(false),
            faults: AtomicU64::new(0),
            torn_objects: AtomicU64::new(0),
        }
    }

    /// Manually raise or end a wall-clock outage (orthogonal to the
    /// seeded op-sequence windows).
    pub fn set_available(&self, up: bool) {
        self.forced_down.store(!up, Ordering::SeqCst);
    }

    /// Operations failed so far (unavailable + transient).
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::SeqCst)
    }

    /// Puts that silently stored torn or bit-flipped bytes so far.
    pub fn objects_damaged(&self) -> u64 {
        self.torn_objects.load(Ordering::SeqCst)
    }

    /// Access the healthy backend underneath (test inspection).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Roll the fate of the next operation; `Err` means the call
    /// must fail without touching the backend.
    fn admit(&self) -> RemoteResult<lclog_simnet::StorageFate> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        let fate = self.chaos.fate(op);
        if fate.spike > std::time::Duration::ZERO {
            std::thread::sleep(fate.spike);
        }
        if fate.unavailable || self.forced_down.load(Ordering::SeqCst) {
            self.faults.fetch_add(1, Ordering::SeqCst);
            return Err(RemoteError::Unavailable);
        }
        if fate.transient {
            self.faults.fetch_add(1, Ordering::SeqCst);
            return Err(RemoteError::Transient);
        }
        Ok(fate)
    }
}

impl<S: RemoteStore> RemoteStore for FaultyRemote<S> {
    fn put(&self, key: &str, bytes: &[u8]) -> RemoteResult<()> {
        let fate = self.admit()?;
        if fate.torn && !bytes.is_empty() {
            self.torn_objects.fetch_add(1, Ordering::SeqCst);
            return self.inner.put(key, &bytes[..bytes.len() / 2]);
        }
        if let Some(h) = fate.flip_bit {
            if !bytes.is_empty() {
                self.torn_objects.fetch_add(1, Ordering::SeqCst);
                let mut damaged = bytes.to_vec();
                let bit = (h % (damaged.len() as u64 * 8)) as usize;
                damaged[bit / 8] ^= 1 << (bit % 8);
                return self.inner.put(key, &damaged);
            }
        }
        self.inner.put(key, bytes)
    }

    fn get(&self, key: &str) -> RemoteResult<Option<Vec<u8>>> {
        self.admit()?;
        self.inner.get(key)
    }

    fn list(&self, prefix: &str) -> RemoteResult<Vec<String>> {
        self.admit()?;
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> RemoteResult<()> {
        self.admit()?;
        self.inner.delete(key)
    }
}

/// What kind of object a manifest entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A sealed log segment (batched append-log records).
    Segment,
    /// A sealed checkpoint generation.
    Generation,
}

/// One shipped object, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Segment or generation.
    pub kind: ObjectKind,
    /// Remote object key.
    pub key: String,
    /// CRC-32 of the object bytes as shipped — the certification a
    /// restore checks before trusting the object.
    pub crc: u32,
    /// Object length in bytes.
    pub len: u64,
    /// Ship order (monotonic per replicator).
    pub seq: u64,
}

/// The CRC-checked catalogue of everything a replicator has shipped.
///
/// The manifest is itself sealed with the same CRC-32 + magic trailer
/// as checkpoint generations, so a torn manifest upload is detected
/// and the previous manifest semantics (re-list and re-ship) apply.
/// An object is *fully certified* only when an intact manifest lists
/// it and the stored bytes match the recorded CRC.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Shipped objects in ship order.
    pub entries: Vec<ManifestEntry>,
}

/// Remote key under which the manifest lives.
pub const MANIFEST_KEY: &str = "manifest";

impl Manifest {
    /// Encode and seal the manifest for upload.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        varint::write_u64(&mut body, self.entries.len() as u64);
        for e in &self.entries {
            body.push(match e.kind {
                ObjectKind::Segment => 0,
                ObjectKind::Generation => 1,
            });
            varint::write_u64(&mut body, e.key.len() as u64);
            body.extend_from_slice(e.key.as_bytes());
            body.extend_from_slice(&e.crc.to_le_bytes());
            varint::write_u64(&mut body, e.len);
            varint::write_u64(&mut body, e.seq);
        }
        crate::seal::seal(&body)
    }

    /// Unseal and decode a manifest blob; `None` when torn, corrupt,
    /// or malformed.
    pub fn decode(blob: &[u8]) -> Option<Self> {
        let body = crate::seal::unseal(blob)?;
        let mut r = Reader::new(&body);
        let count = varint::read_u64(&mut r).ok()?;
        let mut entries = Vec::with_capacity(count.min(4096) as usize);
        for _ in 0..count {
            let kind = match r.take(1).ok()?[0] {
                0 => ObjectKind::Segment,
                1 => ObjectKind::Generation,
                _ => return None,
            };
            let key_len = varint::read_u64(&mut r).ok()? as usize;
            let key = String::from_utf8(r.take(key_len).ok()?.to_vec()).ok()?;
            let crc = u32::from_le_bytes(r.take(4).ok()?.try_into().ok()?);
            let len = varint::read_u64(&mut r).ok()?;
            let seq = varint::read_u64(&mut r).ok()?;
            entries.push(ManifestEntry { kind, key, crc, len, seq });
        }
        (r.remaining() == 0).then_some(Manifest { entries })
    }

    /// Generation entries whose key starts with `prefix`, newest
    /// (lexicographically largest key, i.e. highest version) first.
    pub fn generations_with_prefix(&self, prefix: &str) -> Vec<&ManifestEntry> {
        let mut gens: Vec<&ManifestEntry> = self
            .entries
            .iter()
            .filter(|e| e.kind == ObjectKind::Generation && e.key.starts_with(prefix))
            .collect();
        gens.sort_by(|a, b| b.key.cmp(&a.key));
        gens
    }

    /// True when `blob` matches the CRC recorded for `entry`.
    pub fn certifies(entry: &ManifestEntry, blob: &[u8]) -> bool {
        blob.len() as u64 == entry.len && crc32(blob) == entry.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: ObjectKind, key: &str, blob: &[u8], seq: u64) -> ManifestEntry {
        ManifestEntry {
            kind,
            key: key.to_string(),
            crc: crc32(blob),
            len: blob.len() as u64,
            seq,
        }
    }

    #[test]
    fn mem_remote_roundtrip_and_listing() {
        let r = MemRemote::new();
        assert_eq!(r.get("a").unwrap(), None);
        r.put("seg/1", b"one").unwrap();
        r.put("seg/2", b"two").unwrap();
        r.put("gen/1", b"g").unwrap();
        assert_eq!(r.get("seg/1").unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(r.list("seg/").unwrap(), vec!["seg/1".to_string(), "seg/2".into()]);
        r.delete("seg/1").unwrap();
        assert_eq!(r.get("seg/1").unwrap(), None);
        r.delete("seg/1").unwrap(); // idempotent
    }

    #[test]
    fn manifest_roundtrips_and_rejects_damage() {
        let m = Manifest {
            entries: vec![
                entry(ObjectKind::Generation, "ckpt/0/v1", b"img", 0),
                entry(ObjectKind::Segment, "seg/evt/5", b"recs", 1),
            ],
        };
        let blob = m.encode();
        assert_eq!(Manifest::decode(&blob), Some(m.clone()));
        assert!(Manifest::decode(&blob[..blob.len() - 2]).is_none(), "torn");
        let mut flipped = blob.clone();
        flipped[3] ^= 0x08;
        assert!(Manifest::decode(&flipped).is_none(), "bit flip");
        assert!(Manifest::decode(b"").is_none());
    }

    #[test]
    fn manifest_orders_generations_newest_first() {
        let m = Manifest {
            entries: vec![
                entry(ObjectKind::Generation, "ckpt/0/v00000000000000000001", b"a", 0),
                entry(ObjectKind::Generation, "ckpt/0/v00000000000000000010", b"b", 1),
                entry(ObjectKind::Generation, "ckpt/1/v00000000000000000002", b"c", 2),
                entry(ObjectKind::Segment, "ckpt/0/v-fake-segment", b"d", 3),
            ],
        };
        let gens = m.generations_with_prefix("ckpt/0/v");
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[0].key, "ckpt/0/v00000000000000000010");
        assert!(Manifest::certifies(gens[0], b"b"));
        assert!(!Manifest::certifies(gens[0], b"x"));
        assert!(!Manifest::certifies(gens[0], b"bb"), "length mismatch");
    }

    #[test]
    fn faulty_remote_injects_transients_and_outages() {
        let chaos = StorageChaos::seeded(7).with_outage(0, 3).with_transient(0.5);
        let r = FaultyRemote::new(MemRemote::new(), chaos);
        // Ops 0..3 are in the outage window.
        for _ in 0..3 {
            assert_eq!(r.put("k", b"v"), Err(RemoteError::Unavailable));
        }
        // Past the window only transient errors remain; retrying must
        // eventually succeed.
        let mut ok = false;
        for _ in 0..64 {
            if r.put("k", b"v").is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok, "transient errors must be retryable");
        assert!(r.faults_injected() >= 3);
        assert_eq!(r.inner().get("k").unwrap().as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn forced_outage_overrides_until_lifted() {
        let r = FaultyRemote::new(MemRemote::new(), StorageChaos::seeded(1));
        r.put("a", b"1").unwrap();
        r.set_available(false);
        assert_eq!(r.get("a"), Err(RemoteError::Unavailable));
        assert_eq!(r.list(""), Err(RemoteError::Unavailable));
        r.set_available(true);
        assert_eq!(r.get("a").unwrap().as_deref(), Some(&b"1"[..]));
    }

    #[test]
    fn torn_and_flipped_puts_report_success_but_fail_certification() {
        let torn = FaultyRemote::new(MemRemote::new(), StorageChaos::seeded(3).with_torn_put(1.0));
        let blob = b"a sealed object body".to_vec();
        let e = entry(ObjectKind::Generation, "g", &blob, 0);
        torn.put("g", &blob).unwrap();
        let stored = torn.inner().get("g").unwrap().unwrap();
        assert!(stored.len() < blob.len());
        assert!(!Manifest::certifies(&e, &stored), "torn object not certified");
        assert_eq!(torn.objects_damaged(), 1);

        let flip =
            FaultyRemote::new(MemRemote::new(), StorageChaos::seeded(3).with_corrupt_put(1.0));
        flip.put("g", &blob).unwrap();
        let stored = flip.inner().get("g").unwrap().unwrap();
        assert_eq!(stored.len(), blob.len());
        assert_ne!(stored, blob);
        assert!(!Manifest::certifies(&e, &stored), "flipped object not certified");
    }
}
