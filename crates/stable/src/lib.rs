//! # lclog-stable
//!
//! Stable storage for rollback recovery: the only state that survives
//! a process crash.
//!
//! The paper's testbed wrote checkpoints to each PC's local disk and —
//! for the TEL baseline — determinants to a dedicated event-logger
//! node's stable store. This crate provides that substrate:
//!
//! * [`StableStorage`] — a key/value + append-log trait,
//! * [`MemStore`] — in-process implementation (crash survival is
//!   modelled: runtime code *chooses* never to read volatile state
//!   back after a kill, while `MemStore` contents persist),
//! * [`DiskStore`] — real files with atomic replace, for examples that
//!   want durability across OS processes,
//! * [`CheckpointStore`] — a typed helper mapping ranks to their
//!   latest checkpoint image.
//!
//! For durability beyond the local disk — the node-loss case where
//! the process dies *with* its storage — the [`remote`] module adds
//! an object-store-style [`RemoteStore`] with CRC-checked manifests
//! and a deterministically fault-injected backend; `lclog-runtime`'s
//! replicator streams checkpoint generations and log segments into it
//! and restores wiped ranks from it.
//!
//! ## Example
//!
//! ```
//! use lclog_stable::{CheckpointStore, MemStore, StableStorage};
//! use std::sync::Arc;
//!
//! let store: Arc<dyn StableStorage> = Arc::new(MemStore::new());
//! let ckpts = CheckpointStore::new(store);
//! ckpts.save(3, 1, b"image-bytes");
//! let (version, image) = ckpts.load_latest(3).unwrap();
//! assert_eq!(version, 1);
//! assert_eq!(image, b"image-bytes");
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod disk;
mod mem;
pub mod remote;
mod seal;

pub use checkpoint::CheckpointStore;
pub use disk::DiskStore;
pub use mem::MemStore;
pub use remote::{
    FaultyRemote, Manifest, ManifestEntry, MemRemote, ObjectKind, RemoteError, RemoteResult,
    RemoteStore, MANIFEST_KEY,
};

/// Abstract stable storage: a blob namespace plus append-only record
/// logs. Implementations must be safe for concurrent use from many
/// rank threads.
pub trait StableStorage: Send + Sync {
    /// Store `bytes` under `key`, replacing any previous blob
    /// atomically.
    fn put(&self, key: &str, bytes: &[u8]);

    /// Fetch the blob stored under `key`.
    fn get(&self, key: &str) -> Option<Vec<u8>>;

    /// Remove the blob stored under `key` (no-op when absent).
    fn delete(&self, key: &str);

    /// List blob keys with the given prefix, sorted.
    fn keys_with_prefix(&self, prefix: &str) -> Vec<String>;

    /// Append one record to the log named `key`.
    fn append(&self, key: &str, record: &[u8]);

    /// Read every record appended to the log named `key`, in order.
    fn read_log(&self, key: &str) -> Vec<Vec<u8>>;

    /// Number of records in the log named `key`.
    fn log_len(&self, key: &str) -> usize {
        self.read_log(key).len()
    }

    /// Remove the log named `key` entirely.
    fn truncate_log(&self, key: &str);
}

#[cfg(test)]
mod conformance {
    //! Shared conformance suite run against every backend.
    use super::*;

    pub(crate) fn blob_roundtrip(s: &dyn StableStorage) {
        assert_eq!(s.get("a"), None);
        s.put("a", b"1");
        assert_eq!(s.get("a").as_deref(), Some(&b"1"[..]));
        s.put("a", b"2");
        assert_eq!(s.get("a").as_deref(), Some(&b"2"[..]));
        s.delete("a");
        assert_eq!(s.get("a"), None);
        s.delete("a"); // idempotent
    }

    pub(crate) fn prefix_listing(s: &dyn StableStorage) {
        s.put("ckpt/2", b"x");
        s.put("ckpt/0", b"x");
        s.put("ckpt/10", b"x");
        s.put("other", b"x");
        assert_eq!(
            s.keys_with_prefix("ckpt/"),
            vec!["ckpt/0".to_string(), "ckpt/10".into(), "ckpt/2".into()]
        );
        assert_eq!(s.keys_with_prefix("zzz"), Vec::<String>::new());
    }

    pub(crate) fn log_append_read(s: &dyn StableStorage) {
        assert_eq!(s.read_log("l"), Vec::<Vec<u8>>::new());
        assert_eq!(s.log_len("l"), 0);
        s.append("l", b"one");
        s.append("l", b"");
        s.append("l", b"three");
        assert_eq!(s.read_log("l"), vec![b"one".to_vec(), vec![], b"three".to_vec()]);
        assert_eq!(s.log_len("l"), 3);
        s.truncate_log("l");
        assert_eq!(s.log_len("l"), 0);
    }

    pub(crate) fn logs_and_blobs_are_separate(s: &dyn StableStorage) {
        s.put("k", b"blob");
        s.append("k", b"rec");
        assert_eq!(s.get("k").as_deref(), Some(&b"blob"[..]));
        assert_eq!(s.read_log("k"), vec![b"rec".to_vec()]);
    }
}
