use crate::StableStorage;
use std::sync::Arc;

/// Typed helper mapping each rank to its latest checkpoint image.
///
/// The paper's protocol only ever restores the *last* checkpoint
/// (causal logging never rolls a process past it), so older images
/// are deleted once a newer one is durably in place.
#[derive(Clone)]
pub struct CheckpointStore {
    storage: Arc<dyn StableStorage>,
}

impl CheckpointStore {
    /// Wrap a storage backend.
    pub fn new(storage: Arc<dyn StableStorage>) -> Self {
        CheckpointStore { storage }
    }

    fn key(rank: usize, version: u64) -> String {
        // Zero-padded so lexicographic order == numeric order.
        format!("ckpt/{rank}/v{version:020}")
    }

    fn prefix(rank: usize) -> String {
        format!("ckpt/{rank}/v")
    }

    /// Durably save checkpoint `version` for `rank`, then prune older
    /// versions. Versions must increase per rank.
    pub fn save(&self, rank: usize, version: u64, image: &[u8]) {
        self.storage.put(&Self::key(rank, version), image);
        for key in self.storage.keys_with_prefix(&Self::prefix(rank)) {
            if key < Self::key(rank, version) {
                self.storage.delete(&key);
            }
        }
    }

    /// Load the latest checkpoint for `rank`, if any, returning its
    /// version and image.
    pub fn load_latest(&self, rank: usize) -> Option<(u64, Vec<u8>)> {
        let key = self.storage.keys_with_prefix(&Self::prefix(rank)).pop()?;
        let version: u64 = key.rsplit('v').next()?.parse().ok()?;
        let image = self.storage.get(&key)?;
        Some((version, image))
    }

    /// Latest checkpoint version for `rank`, if any.
    pub fn latest_version(&self, rank: usize) -> Option<u64> {
        self.load_latest(rank).map(|(v, _)| v)
    }

    /// Access the underlying storage (for co-locating other durable
    /// state such as TEL determinants).
    pub fn storage(&self) -> &Arc<dyn StableStorage> {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    fn store() -> CheckpointStore {
        CheckpointStore::new(Arc::new(MemStore::new()))
    }

    #[test]
    fn empty_store_has_no_checkpoint() {
        let s = store();
        assert!(s.load_latest(0).is_none());
        assert!(s.latest_version(0).is_none());
    }

    #[test]
    fn save_load_roundtrip() {
        let s = store();
        s.save(2, 1, b"first");
        assert_eq!(s.load_latest(2), Some((1, b"first".to_vec())));
    }

    #[test]
    fn newer_version_wins_and_prunes() {
        let s = store();
        s.save(0, 1, b"v1");
        s.save(0, 2, b"v2");
        s.save(0, 10, b"v10");
        assert_eq!(s.load_latest(0), Some((10, b"v10".to_vec())));
        // Only one image remains.
        assert_eq!(s.storage().keys_with_prefix("ckpt/0/").len(), 1);
    }

    #[test]
    fn ranks_are_independent() {
        let s = store();
        s.save(0, 5, b"zero");
        s.save(1, 3, b"one");
        assert_eq!(s.load_latest(0), Some((5, b"zero".to_vec())));
        assert_eq!(s.load_latest(1), Some((3, b"one".to_vec())));
        assert!(s.load_latest(2).is_none());
    }

    #[test]
    fn version_ordering_is_numeric_not_lexicographic() {
        let s = store();
        s.save(0, 9, b"nine");
        s.save(0, 10, b"ten");
        assert_eq!(s.load_latest(0), Some((10, b"ten".to_vec())));
    }
}
