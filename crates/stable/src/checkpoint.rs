use crate::seal::{seal, unseal};
use crate::StableStorage;
use std::sync::Arc;

/// Typed helper mapping each rank to its recent checkpoint images.
///
/// The paper's protocol only ever restores the *last* checkpoint
/// (causal logging never rolls a process past it) — but a checkpoint
/// write can itself be interrupted by the failure it is supposed to
/// protect against. So every image is sealed with a CRC-32 trailer,
/// the last `retention` generations are kept (default 2), and
/// [`CheckpointStore::load_latest`] falls back to the newest *intact*
/// generation, skipping torn or corrupted ones.
///
/// # Rank namespaces
///
/// A store may carry a `rank_base` offset: instance methods address
/// rank `r` under the key space of *global* rank `rank_base + r`.
/// This is how concurrent tenant jobs share one storage backend (and
/// one replication pipeline) without colliding — each job's runtime
/// sees local ranks `0..n`, while its keys, remote manifest entries,
/// and node-loss restores all live under the job's own global range.
/// The associated-function key helpers ([`CheckpointStore::key`],
/// [`CheckpointStore::prefix`]) always speak global rank.
#[derive(Clone)]
pub struct CheckpointStore {
    storage: Arc<dyn StableStorage>,
    retention: usize,
    rank_base: usize,
}

impl CheckpointStore {
    /// Wrap a storage backend (keeping the last 2 generations).
    pub fn new(storage: Arc<dyn StableStorage>) -> Self {
        CheckpointStore {
            storage,
            retention: 2,
            rank_base: 0,
        }
    }

    /// Override how many checkpoint generations are retained per rank
    /// (must be at least 1; 1 restores the old prune-all behaviour,
    /// at the cost of losing torn-write fallback).
    pub fn with_retention(mut self, generations: usize) -> Self {
        assert!(generations >= 1, "must retain at least one generation");
        self.retention = generations;
        self
    }

    /// Offset every rank this store addresses by `base` (see the
    /// type-level docs on rank namespaces).
    pub fn with_rank_base(mut self, base: usize) -> Self {
        self.rank_base = base;
        self
    }

    /// The configured rank-namespace offset.
    pub fn rank_base(&self) -> usize {
        self.rank_base
    }

    /// Storage key of checkpoint `version` for **global** rank `rank`.
    /// Zero-padded so lexicographic order == numeric order.
    pub fn key(rank: usize, version: u64) -> String {
        format!("ckpt/{rank}/v{version:020}")
    }

    /// Key prefix under which every generation of **global** rank
    /// `rank` lives.
    pub fn prefix(rank: usize) -> String {
        format!("ckpt/{rank}/v")
    }

    /// Parse the version number back out of a generation key.
    pub fn parse_version(key: &str) -> Option<u64> {
        key.rsplit('v').next()?.parse().ok()
    }

    /// Durably save checkpoint `version` for `rank` (sealed with a
    /// CRC-32 trailer), then prune generations beyond the retention
    /// window. Versions must increase per rank.
    pub fn save(&self, rank: usize, version: u64, image: &[u8]) {
        let rank = self.rank_base + rank;
        self.storage.put(&Self::key(rank, version), &seal(image));
        let keys = self.storage.keys_with_prefix(&Self::prefix(rank));
        let keep_from = keys.len().saturating_sub(self.retention);
        for key in &keys[..keep_from] {
            self.storage.delete(key);
        }
    }

    /// Load the newest *intact* checkpoint for `rank`, if any,
    /// returning its version and image. Generations whose CRC trailer
    /// does not verify — torn writes, truncation, media corruption —
    /// are skipped in favour of the next older one.
    pub fn load_latest(&self, rank: usize) -> Option<(u64, Vec<u8>)> {
        let keys = self
            .storage
            .keys_with_prefix(&Self::prefix(self.rank_base + rank));
        for key in keys.iter().rev() {
            let Some(blob) = self.storage.get(key) else {
                continue;
            };
            if let Some(image) = unseal(&blob) {
                return Some((Self::parse_version(key)?, image));
            }
        }
        None
    }

    /// Newest intact checkpoint version for `rank`, if any.
    pub fn latest_version(&self, rank: usize) -> Option<u64> {
        self.load_latest(rank).map(|(v, _)| v)
    }

    /// Delete every retained generation of `rank` from the backend,
    /// returning how many were removed. This is the generation GC run
    /// at job-retirement boundaries: once a tenant job's report has
    /// been fetched, its ranks will never restore again, and a
    /// long-running service would otherwise accumulate dead tenants'
    /// generations forever.
    pub fn clear_rank(&self, rank: usize) -> usize {
        let keys = self
            .storage
            .keys_with_prefix(&Self::prefix(self.rank_base + rank));
        for key in &keys {
            self.storage.delete(key);
        }
        keys.len()
    }

    /// Access the underlying storage (for co-locating other durable
    /// state such as TEL determinants).
    pub fn storage(&self) -> &Arc<dyn StableStorage> {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    fn store() -> CheckpointStore {
        CheckpointStore::new(Arc::new(MemStore::new()))
    }

    #[test]
    fn empty_store_has_no_checkpoint() {
        let s = store();
        assert!(s.load_latest(0).is_none());
        assert!(s.latest_version(0).is_none());
    }

    #[test]
    fn save_load_roundtrip() {
        let s = store();
        s.save(2, 1, b"first");
        assert_eq!(s.load_latest(2), Some((1, b"first".to_vec())));
    }

    #[test]
    fn newer_version_wins_and_prunes_beyond_retention() {
        let s = store();
        s.save(0, 1, b"v1");
        s.save(0, 2, b"v2");
        s.save(0, 10, b"v10");
        assert_eq!(s.load_latest(0), Some((10, b"v10".to_vec())));
        // Default retention: the last two generations remain.
        assert_eq!(s.storage().keys_with_prefix("ckpt/0/").len(), 2);
    }

    #[test]
    fn retention_one_restores_prune_all() {
        let s = store().with_retention(1);
        s.save(0, 1, b"v1");
        s.save(0, 2, b"v2");
        assert_eq!(s.storage().keys_with_prefix("ckpt/0/").len(), 1);
        assert_eq!(s.load_latest(0), Some((2, b"v2".to_vec())));
    }

    #[test]
    fn ranks_are_independent() {
        let s = store();
        s.save(0, 5, b"zero");
        s.save(1, 3, b"one");
        assert_eq!(s.load_latest(0), Some((5, b"zero".to_vec())));
        assert_eq!(s.load_latest(1), Some((3, b"one".to_vec())));
        assert!(s.load_latest(2).is_none());
    }

    #[test]
    fn version_ordering_is_numeric_not_lexicographic() {
        let s = store();
        s.save(0, 9, b"nine");
        s.save(0, 10, b"ten");
        assert_eq!(s.load_latest(0), Some((10, b"ten".to_vec())));
    }

    #[test]
    fn truncated_newest_falls_back_to_previous_generation() {
        let s = store();
        s.save(0, 1, b"good");
        s.save(0, 2, b"newer");
        // Tear the newest image: chop off half the blob (trailer gone).
        let key = "ckpt/0/v00000000000000000002";
        let blob = s.storage().get(key).unwrap();
        s.storage().put(key, &blob[..blob.len() / 2]);
        assert_eq!(s.load_latest(0), Some((1, b"good".to_vec())));
        assert_eq!(s.latest_version(0), Some(1));
    }

    #[test]
    fn bit_flipped_newest_falls_back_to_previous_generation() {
        let s = store();
        s.save(3, 7, b"intact image");
        s.save(3, 8, b"flipped image");
        let key = "ckpt/3/v00000000000000000008";
        let mut blob = s.storage().get(key).unwrap();
        blob[2] ^= 0x10;
        s.storage().put(key, &blob);
        assert_eq!(s.load_latest(3), Some((7, b"intact image".to_vec())));
    }

    #[test]
    fn rank_base_namespaces_keys_without_changing_local_view() {
        let backend: Arc<MemStore> = Arc::new(MemStore::new());
        let job_a = CheckpointStore::new(backend.clone());
        let job_b = CheckpointStore::new(backend.clone()).with_rank_base(8);
        job_a.save(0, 1, b"tenant a");
        job_b.save(0, 1, b"tenant b");
        // Same local rank, disjoint global key spaces.
        assert_eq!(job_a.load_latest(0), Some((1, b"tenant a".to_vec())));
        assert_eq!(job_b.load_latest(0), Some((1, b"tenant b".to_vec())));
        assert!(backend.get("ckpt/0/v00000000000000000001").is_some());
        assert!(backend.get("ckpt/8/v00000000000000000001").is_some());
    }

    #[test]
    fn clear_rank_garbage_collects_only_that_tenants_generations() {
        let backend: Arc<MemStore> = Arc::new(MemStore::new());
        let job_a = CheckpointStore::new(backend.clone());
        let job_b = CheckpointStore::new(backend.clone()).with_rank_base(4);
        job_a.save(0, 1, b"keep");
        job_b.save(0, 1, b"gc v1");
        job_b.save(0, 2, b"gc v2");
        assert_eq!(job_b.clear_rank(0), 2);
        assert!(job_b.load_latest(0).is_none());
        assert_eq!(job_a.load_latest(0), Some((1, b"keep".to_vec())));
        // Idempotent on an already-cleared rank.
        assert_eq!(job_b.clear_rank(0), 0);
    }

    #[test]
    fn all_generations_corrupt_means_no_checkpoint() {
        let s = store().with_retention(1);
        s.save(0, 1, b"only");
        let key = "ckpt/0/v00000000000000000001";
        s.storage().put(key, b"garbage");
        assert!(s.load_latest(0).is_none());
    }
}
