//! CRC sealing shared by checkpoint generations and remote-store
//! manifests: a 4-byte CRC-32 of the body followed by a 4-byte magic.
//! A truncated blob loses the magic, a bit-flip breaks the CRC —
//! either way the blob is rejected at load time.

use lclog_wire::crc32;

const TRAILER_MAGIC: &[u8; 4] = b"LCKP";
pub(crate) const TRAILER_LEN: usize = 8;

/// Append the CRC-32 + magic trailer to `body`.
pub(crate) fn seal(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + TRAILER_LEN);
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
    out
}

/// Verify the trailer and return the body, or `None` if the blob is
/// torn or corrupt.
pub(crate) fn unseal(blob: &[u8]) -> Option<Vec<u8>> {
    if blob.len() < TRAILER_LEN {
        return None;
    }
    let (body, trailer) = blob.split_at(blob.len() - TRAILER_LEN);
    if &trailer[4..] != TRAILER_MAGIC {
        return None;
    }
    let want = u32::from_le_bytes(trailer[..4].try_into().expect("4 bytes"));
    (crc32(body) == want).then(|| body.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_detects_tearing_and_flips() {
        let sealed = seal(b"payload");
        assert_eq!(unseal(&sealed).as_deref(), Some(&b"payload"[..]));
        assert!(unseal(&sealed[..sealed.len() - 3]).is_none(), "torn");
        let mut flipped = sealed.clone();
        flipped[1] ^= 0x04;
        assert!(unseal(&flipped).is_none(), "bit flip");
        assert!(unseal(b"x").is_none(), "too short");
    }
}
