use crate::StableStorage;
use lclog_wire::varint;
use parking_lot::Mutex;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Stable storage backed by real files.
///
/// Blobs are written with a temp-file + rename so readers never see a
/// torn checkpoint image. Logs are single files of varint
/// length-prefixed records, appended under a per-store lock.
///
/// Keys may contain `/`, which maps to subdirectories.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Serializes log appends (blob writes are atomic via rename).
    log_lock: Mutex<()>,
}

impl DiskStore {
    /// Open (creating if necessary) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("blobs"))?;
        fs::create_dir_all(root.join("logs"))?;
        Ok(DiskStore {
            root,
            log_lock: Mutex::new(()),
        })
    }

    fn blob_path(&self, key: &str) -> PathBuf {
        self.root.join("blobs").join(sanitize(key))
    }

    fn log_path(&self, key: &str) -> PathBuf {
        self.root.join("logs").join(sanitize(key))
    }
}

/// Map a key to a safe relative path component (keys are internal
/// protocol strings like `ckpt/3/v12`, never user input, but keep the
/// mapping total anyway).
fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else if c == '/' {
                '#'
            } else {
                '_'
            }
        })
        .collect()
}

fn atomic_write(path: &Path, bytes: &[u8]) {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp).expect("create temp blob");
        f.write_all(bytes).expect("write temp blob");
        f.sync_all().ok();
    }
    fs::rename(&tmp, path).expect("atomic blob replace");
}

impl StableStorage for DiskStore {
    fn put(&self, key: &str, bytes: &[u8]) {
        atomic_write(&self.blob_path(key), bytes);
    }

    fn get(&self, key: &str) -> Option<Vec<u8>> {
        fs::read(self.blob_path(key)).ok()
    }

    fn delete(&self, key: &str) {
        let _ = fs::remove_file(self.blob_path(key));
    }

    fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let sanitized_prefix = sanitize(prefix);
        let mut keys: Vec<String> = fs::read_dir(self.root.join("blobs"))
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .filter(|name| !name.ends_with(".tmp"))
                    .filter(|name| name.starts_with(&sanitized_prefix))
                    .map(|name| name.replace('#', "/"))
                    .collect()
            })
            .unwrap_or_default();
        keys.sort();
        keys
    }

    fn append(&self, key: &str, record: &[u8]) {
        let _guard = self.log_lock.lock();
        let mut header = Vec::with_capacity(varint::MAX_VARINT_LEN);
        varint::write_u64(&mut header, record.len() as u64);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.log_path(key))
            .expect("open log for append");
        f.write_all(&header).expect("append log header");
        f.write_all(record).expect("append log record");
    }

    fn read_log(&self, key: &str) -> Vec<Vec<u8>> {
        let mut bytes = Vec::new();
        match fs::File::open(self.log_path(key)) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes).expect("read log file");
            }
            Err(_) => return Vec::new(),
        }
        let mut reader = lclog_wire::Reader::new(&bytes);
        let mut records = Vec::new();
        while reader.remaining() > 0 {
            let len = varint::read_u64(&mut reader).expect("log record header") as usize;
            let rec = reader.take(len).expect("log record body");
            records.push(rec.to_vec());
        }
        records
    }

    fn truncate_log(&self, key: &str) {
        let _guard = self.log_lock.lock();
        let _ = fs::remove_file(self.log_path(key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    fn temp_store(tag: &str) -> DiskStore {
        let dir = std::env::temp_dir().join(format!(
            "lclog-stable-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        DiskStore::open(dir).unwrap()
    }

    #[test]
    fn conformance_suite() {
        let s = temp_store("conf");
        conformance::blob_roundtrip(&s);
        conformance::prefix_listing(&s);
        conformance::log_append_read(&s);
        conformance::logs_and_blobs_are_separate(&s);
    }

    #[test]
    fn survives_reopen() {
        let dir = std::env::temp_dir().join(format!("lclog-stable-reopen-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put("ckpt/1", b"image");
            s.append("events", b"d1");
            s.append("events", b"d2");
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get("ckpt/1").as_deref(), Some(&b"image"[..]));
        assert_eq!(s.read_log("events"), vec![b"d1".to_vec(), b"d2".to_vec()]);
    }

    #[test]
    fn sanitize_is_stable() {
        assert_eq!(sanitize("ckpt/3/v1"), "ckpt#3#v1");
        assert_eq!(sanitize("weird key!"), "weird_key_");
    }

    /// Set up two checkpoint generations on a real disk store and
    /// return `(store, path of the newest generation's file)`.
    fn two_generations(tag: &str) -> (crate::CheckpointStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "lclog-stable-torn-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let disk = DiskStore::open(&dir).unwrap();
        let newest = disk.blob_path("ckpt/0/v00000000000000000002");
        let ckpts = crate::CheckpointStore::new(std::sync::Arc::new(disk));
        ckpts.save(0, 1, b"generation one");
        ckpts.save(0, 2, b"generation two");
        assert!(newest.exists(), "newest generation file on disk");
        (ckpts, newest)
    }

    #[test]
    fn torn_checkpoint_file_falls_back_to_previous_generation() {
        let (ckpts, newest) = two_generations("truncate");
        // Simulate a crash mid-write that the tmp+rename dance did not
        // cover (e.g. media truncation after the rename): chop the
        // file so the CRC trailer is gone.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(ckpts.load_latest(0), Some((1, b"generation one".to_vec())));
    }

    #[test]
    fn bit_flipped_checkpoint_file_falls_back_to_previous_generation() {
        let (ckpts, newest) = two_generations("bitflip");
        let mut bytes = fs::read(&newest).unwrap();
        bytes[3] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(ckpts.load_latest(0), Some((1, b"generation one".to_vec())));
    }

    #[test]
    fn intact_checkpoint_files_load_newest() {
        let (ckpts, _) = two_generations("intact");
        assert_eq!(ckpts.load_latest(0), Some((2, b"generation two".to_vec())));
    }
}
