use crate::StableStorage;
use lclog_wire::varint;
use parking_lot::Mutex;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Stable storage backed by real files.
///
/// Blobs are written with a temp-file + rename so readers never see a
/// torn checkpoint image. Logs are single files of varint
/// length-prefixed records, appended under a per-store lock.
///
/// Keys may contain `/`, which maps to subdirectories.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Serializes log appends (blob writes are atomic via rename).
    log_lock: Mutex<()>,
}

impl DiskStore {
    /// Open (creating if necessary) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("blobs"))?;
        fs::create_dir_all(root.join("logs"))?;
        Ok(DiskStore {
            root,
            log_lock: Mutex::new(()),
        })
    }

    fn blob_path(&self, key: &str) -> PathBuf {
        self.root.join("blobs").join(sanitize(key))
    }

    fn log_path(&self, key: &str) -> PathBuf {
        self.root.join("logs").join(sanitize(key))
    }
}

/// Map a key to a safe relative path component (keys are internal
/// protocol strings like `ckpt/3/v12`, never user input, but keep the
/// mapping total anyway).
fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else if c == '/' {
                '#'
            } else {
                '_'
            }
        })
        .collect()
}

/// Temp-file sibling of `path`. Appends `.tmp` to the full file name
/// instead of using `Path::with_extension`, which would *replace*
/// anything after the last dot and could collide two distinct keys on
/// the same temp file.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().expect("blob file name").to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The steps of a crash-consistent blob replace, in execution order.
/// Durability argument: until the rename, readers only ever see the
/// previous blob (temp files are invisible to `keys_with_prefix`);
/// the temp fsync orders the new bytes before the rename so the
/// rename can never expose a torn file; the directory fsync makes the
/// rename itself durable against power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteStep {
    /// Temp file created and written, not yet fsynced.
    TempWritten,
    /// Temp file fsynced, rename not yet issued.
    TempSynced,
    /// Renamed over the target, directory entry not yet fsynced.
    Renamed,
}

fn atomic_write(path: &Path, bytes: &[u8]) {
    atomic_write_inner(path, bytes, |_| false);
}

/// The write sequence with a failpoint: `crashed_after(step)` returns
/// true to simulate the writer dying right after that step, leaving
/// whatever the file system holds at that instant.
fn atomic_write_inner(path: &Path, bytes: &[u8], crashed_after: impl Fn(WriteStep) -> bool) {
    let tmp = tmp_path(path);
    let mut f = fs::File::create(&tmp).expect("create temp blob");
    f.write_all(bytes).expect("write temp blob");
    if crashed_after(WriteStep::TempWritten) {
        return;
    }
    f.sync_all().ok();
    drop(f);
    if crashed_after(WriteStep::TempSynced) {
        return;
    }
    fs::rename(&tmp, path).expect("atomic blob replace");
    if crashed_after(WriteStep::Renamed) {
        return;
    }
    // Make the rename durable: fsync the containing directory (a
    // no-op error on platforms where directories cannot be opened).
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
}

impl StableStorage for DiskStore {
    fn put(&self, key: &str, bytes: &[u8]) {
        atomic_write(&self.blob_path(key), bytes);
    }

    fn get(&self, key: &str) -> Option<Vec<u8>> {
        fs::read(self.blob_path(key)).ok()
    }

    fn delete(&self, key: &str) {
        let _ = fs::remove_file(self.blob_path(key));
    }

    fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let sanitized_prefix = sanitize(prefix);
        let mut keys: Vec<String> = fs::read_dir(self.root.join("blobs"))
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .filter(|name| !name.ends_with(".tmp"))
                    .filter(|name| name.starts_with(&sanitized_prefix))
                    .map(|name| name.replace('#', "/"))
                    .collect()
            })
            .unwrap_or_default();
        keys.sort();
        keys
    }

    fn append(&self, key: &str, record: &[u8]) {
        let _guard = self.log_lock.lock();
        let mut header = Vec::with_capacity(varint::MAX_VARINT_LEN);
        varint::write_u64(&mut header, record.len() as u64);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.log_path(key))
            .expect("open log for append");
        f.write_all(&header).expect("append log header");
        f.write_all(record).expect("append log record");
    }

    fn read_log(&self, key: &str) -> Vec<Vec<u8>> {
        let mut bytes = Vec::new();
        match fs::File::open(self.log_path(key)) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes).expect("read log file");
            }
            Err(_) => return Vec::new(),
        }
        let mut reader = lclog_wire::Reader::new(&bytes);
        let mut records = Vec::new();
        while reader.remaining() > 0 {
            let len = varint::read_u64(&mut reader).expect("log record header") as usize;
            let rec = reader.take(len).expect("log record body");
            records.push(rec.to_vec());
        }
        records
    }

    fn truncate_log(&self, key: &str) {
        let _guard = self.log_lock.lock();
        let _ = fs::remove_file(self.log_path(key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    fn temp_store(tag: &str) -> DiskStore {
        let dir = std::env::temp_dir().join(format!(
            "lclog-stable-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        DiskStore::open(dir).unwrap()
    }

    #[test]
    fn conformance_suite() {
        let s = temp_store("conf");
        conformance::blob_roundtrip(&s);
        conformance::prefix_listing(&s);
        conformance::log_append_read(&s);
        conformance::logs_and_blobs_are_separate(&s);
    }

    #[test]
    fn survives_reopen() {
        let dir = std::env::temp_dir().join(format!("lclog-stable-reopen-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put("ckpt/1", b"image");
            s.append("events", b"d1");
            s.append("events", b"d2");
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get("ckpt/1").as_deref(), Some(&b"image"[..]));
        assert_eq!(s.read_log("events"), vec![b"d1".to_vec(), b"d2".to_vec()]);
    }

    #[test]
    fn sanitize_is_stable() {
        assert_eq!(sanitize("ckpt/3/v1"), "ckpt#3#v1");
        assert_eq!(sanitize("weird key!"), "weird_key_");
    }

    /// Set up two checkpoint generations on a real disk store and
    /// return `(store, path of the newest generation's file)`.
    fn two_generations(tag: &str) -> (crate::CheckpointStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "lclog-stable-torn-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let disk = DiskStore::open(&dir).unwrap();
        let newest = disk.blob_path("ckpt/0/v00000000000000000002");
        let ckpts = crate::CheckpointStore::new(std::sync::Arc::new(disk));
        ckpts.save(0, 1, b"generation one");
        ckpts.save(0, 2, b"generation two");
        assert!(newest.exists(), "newest generation file on disk");
        (ckpts, newest)
    }

    #[test]
    fn torn_checkpoint_file_falls_back_to_previous_generation() {
        let (ckpts, newest) = two_generations("truncate");
        // Simulate a crash mid-write that the tmp+rename dance did not
        // cover (e.g. media truncation after the rename): chop the
        // file so the CRC trailer is gone.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(ckpts.load_latest(0), Some((1, b"generation one".to_vec())));
    }

    #[test]
    fn bit_flipped_checkpoint_file_falls_back_to_previous_generation() {
        let (ckpts, newest) = two_generations("bitflip");
        let mut bytes = fs::read(&newest).unwrap();
        bytes[3] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(ckpts.load_latest(0), Some((1, b"generation one".to_vec())));
    }

    #[test]
    fn intact_checkpoint_files_load_newest() {
        let (ckpts, _) = two_generations("intact");
        assert_eq!(ckpts.load_latest(0), Some((2, b"generation two".to_vec())));
    }

    #[test]
    fn tmp_path_appends_instead_of_replacing_extension() {
        // `with_extension` would map both `a.1` and `a.2` to `a.tmp`;
        // the manifest writer must never alias two keys like that.
        assert_eq!(tmp_path(Path::new("/x/a.1")), Path::new("/x/a.1.tmp"));
        assert_eq!(tmp_path(Path::new("/x/plain")), Path::new("/x/plain.tmp"));
    }

    /// Kill the writer after `step` while it replaces generation 1
    /// with generation 2, then "reboot" (fresh `DiskStore` handle)
    /// and report what a recovery would load.
    fn crash_replacing_generation(tag: &str, step: WriteStep) -> (Option<(u64, Vec<u8>)>, Vec<u8>) {
        let dir = std::env::temp_dir().join(format!(
            "lclog-stable-failpoint-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let disk = DiskStore::open(&dir).unwrap();
        let gen1 = crate::seal::seal(b"generation one");
        let gen2 = crate::seal::seal(b"generation two");
        let key1 = "ckpt/0/v00000000000000000001";
        let key2 = "ckpt/0/v00000000000000000002";
        disk.put(key1, &gen1);
        // The failpoint: die right after `step` of the second write.
        atomic_write_inner(&disk.blob_path(key2), &gen2, |s| s == step);
        drop(disk);
        let rebooted = DiskStore::open(&dir).unwrap();
        let prior_file = fs::read(rebooted.blob_path(key1)).unwrap();
        let loaded =
            crate::CheckpointStore::new(std::sync::Arc::new(rebooted)).load_latest(0);
        (loaded, prior_file)
    }

    #[test]
    fn crash_after_temp_write_keeps_prior_generation() {
        let (loaded, prior) = crash_replacing_generation("w", WriteStep::TempWritten);
        assert_eq!(loaded, Some((1, b"generation one".to_vec())));
        assert_eq!(prior, crate::seal::seal(b"generation one"), "prior file untouched");
    }

    #[test]
    fn crash_after_temp_sync_keeps_prior_generation() {
        let (loaded, prior) = crash_replacing_generation("s", WriteStep::TempSynced);
        assert_eq!(loaded, Some((1, b"generation one".to_vec())));
        assert_eq!(prior, crate::seal::seal(b"generation one"));
    }

    #[test]
    fn crash_after_rename_exposes_complete_new_generation() {
        // Once the rename has landed, the new generation is visible in
        // full (the temp fsync ordered its bytes first) and the prior
        // one still exists for fallback.
        let (loaded, prior) = crash_replacing_generation("r", WriteStep::Renamed);
        assert_eq!(loaded, Some((2, b"generation two".to_vec())));
        assert_eq!(prior, crate::seal::seal(b"generation one"));
    }

    #[test]
    fn leftover_temp_files_stay_invisible_to_listing() {
        let dir = std::env::temp_dir().join(format!(
            "lclog-stable-failpoint-list-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let disk = DiskStore::open(&dir).unwrap();
        disk.put("ckpt/0/v00000000000000000001", b"ok");
        atomic_write_inner(
            &disk.blob_path("ckpt/0/v00000000000000000002"),
            b"half",
            |s| s == WriteStep::TempWritten,
        );
        assert_eq!(
            disk.keys_with_prefix("ckpt/0/"),
            vec!["ckpt/0/v00000000000000000001".to_string()]
        );
    }
}
