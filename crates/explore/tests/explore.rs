//! End-to-end properties of the schedule explorer — including the
//! MPI_ANY_SOURCE order-insensitivity regression test, the injected
//! order-dependence mutation the explorer must catch and shrink, and
//! the DPOR-vs-brute-force equivalence pins.

use lclog_core::ProtocolKind;
use lclog_explore::{
    explore_dpor, explore_exhaustive, explore_sampled, run_schedule, run_schedule_with,
    ExploreConfig, Fold, Op, Payload, Trace, TraceDecider, Verdict, Workload,
};

/// The headline property: exhaustively enumerating every legal
/// schedule of an any-source gather workload — all arrival-order and
/// extraction-order interleavings the runtime's gate admits — yields
/// identical per-rank digests and identical TDI `depend_interval`
/// vectors. This is the paper's §III.E order-insensitivity claim as a
/// checked invariant rather than an observation.
#[test]
fn exhaustive_gather_n3_agrees_everywhere() {
    let w = Workload::rotating_gather(3, 3);
    let cfg = ExploreConfig {
        max_schedules: 50_000,
        ..Default::default()
    };
    let report = explore_exhaustive(&w, &cfg);
    assert!(
        report.divergence.is_none(),
        "divergence found: {:?}",
        report.divergence
    );
    assert!(report.exhausted, "tree larger than the cap");
    // Pinned: the fault-free n=3, 3-round gather tree has exactly this
    // many leaves. A drift here means the choice-point model changed —
    // deliberate changes must update the pin *and* re-justify the DPOR
    // census comparison below.
    assert_eq!(report.schedules, 3420, "schedule tree size drifted");
    assert!(report.max_arity >= 2, "no real choice points explored");
    assert_eq!(report.wedged, 0);
}

/// DPOR visits a fraction of the brute-force tree but must see every
/// distinct outcome: same digest census, no divergence, exhausted.
#[test]
fn dpor_matches_brute_force_census_at_n3() {
    let w = Workload::rotating_gather(3, 3);
    let cfg = ExploreConfig {
        max_schedules: 50_000,
        ..Default::default()
    };
    let brute = explore_exhaustive(&w, &cfg);
    let dpor = explore_dpor(&w, &cfg);
    assert!(dpor.divergence.is_none(), "{:?}", dpor.divergence);
    assert!(dpor.exhausted, "DPOR hit the execution cap");
    assert!(
        dpor.schedules < brute.schedules,
        "no reduction: DPOR ran {} schedules vs brute {}",
        dpor.schedules,
        brute.schedules
    );
    assert_eq!(
        dpor.digests_seen, brute.digests_seen,
        "sleep sets lost coverage: digest censuses differ"
    );
    assert_eq!(dpor.baseline_digests, brute.baseline_digests);
}

/// Partitioning the root frontier across workers is an accounting
/// detail, not a semantic one: serial and 3-way-parallel DPOR visit
/// the same schedules.
#[test]
fn parallel_dpor_matches_serial() {
    let w = Workload::rotating_gather(3, 2);
    let mk = |workers| ExploreConfig {
        max_schedules: 50_000,
        workers,
        ..Default::default()
    };
    let serial = explore_dpor(&w, &mk(1));
    let parallel = explore_dpor(&w, &mk(3));
    assert!(serial.exhausted && parallel.exhausted);
    assert_eq!(serial.schedules, parallel.schedules);
    assert_eq!(serial.sleep_blocked, parallel.sleep_blocked);
    assert_eq!(serial.digests_seen, parallel.digests_seen);
    assert!(parallel.divergence.is_none());
}

/// Injected order dependence: an order-sensitive fold must make
/// different schedules produce different digests, the explorer must
/// catch it, and the shrunk trace must (a) be no longer than the
/// original and (b) still replay to a failing schedule.
#[test]
fn order_sensitive_mutation_is_caught_and_shrunk() {
    let mut w = Workload::rotating_gather(3, 2);
    w.fold = Fold::OrderSensitive;
    let cfg = ExploreConfig::default();
    let report = explore_exhaustive(&w, &cfg);
    let div = report
        .divergence
        .expect("order-sensitive fold must diverge across schedules");
    assert!(div.shrunk.len() <= div.trace.len());

    // The shrunk trace is a real repro: replaying it disagrees with
    // the baseline (all-defaults) run.
    let mut base_d = TraceDecider::new(Trace::new());
    let baseline = run_schedule(&w, &mut base_d);
    let mut rep_d = TraceDecider::new(div.shrunk.clone());
    let replay = run_schedule(&w, &mut rep_d);
    assert!(
        !replay.agrees_with(&baseline),
        "shrunk trace {} no longer reproduces the divergence",
        div.shrunk
    );

    // DPOR must catch the same defect (possibly via a different
    // witness schedule — sleep sets only skip *equivalent* runs, and
    // an order-sensitive fold makes the reordered runs inequivalent).
    let dpor = explore_dpor(&w, &cfg);
    assert!(
        dpor.divergence.is_some(),
        "DPOR missed an order-dependence divergence brute force found"
    );
}

/// Satellite regression test: the same MPI_ANY_SOURCE workload under
/// two explicitly different legal schedules — the runtime's default
/// (always branch 0) and an adversarial one (always the second
/// alternative) — delivers in a different order but converges to the
/// same digests and the same `depend_interval` vectors.
#[test]
fn any_source_two_explicit_schedules_same_digest() {
    let w = Workload::rotating_gather(4, 3);

    let mut first = TraceDecider::new(Trace::new());
    let a = run_schedule(&w, &mut first);

    // All-ones trace, long enough to cover every choice point A hit
    // (clamped to the arity actually available at each point).
    let ones: Trace = vec![1; a.trace().len().max(16) * 2].into();
    let mut second = TraceDecider::new(ones);
    let b = run_schedule(&w, &mut second);

    assert_eq!(a.verdict, Verdict::Completed);
    assert_eq!(b.verdict, Verdict::Completed);
    assert_ne!(
        a.trace(),
        b.trace(),
        "the two schedules must actually differ"
    );
    assert_eq!(a.digests, b.digests, "digests diverged across schedules");
    assert_eq!(
        a.interval_vectors, b.interval_vectors,
        "depend_interval vectors diverged across schedules"
    );
    assert_eq!(a.delivered, b.delivered);
}

/// Sparse/dense cross-check at n = 3: the same workload explored
/// exhaustively under dense TDI and under the TDI-S delta codec must
/// agree schedule-for-schedule — same digests and the same
/// canonicalized dense `depend_interval` vectors. A codec bug that
/// over- or under-approximates the lattice shows up here as either a
/// digest divergence (wrong delivery order admitted) or an interval
/// divergence (wrong dependency recorded).
#[test]
fn sparse_and_dense_explorations_cross_check_at_n3() {
    let w = Workload::rotating_gather(3, 2);
    let cfg = |protocol| ExploreConfig {
        max_schedules: 50_000,
        protocol,
        ..Default::default()
    };
    let dense = explore_exhaustive(&w, &cfg(ProtocolKind::Tdi));
    let sparse = explore_exhaustive(&w, &cfg(ProtocolKind::TdiSparse(4)));
    assert!(dense.divergence.is_none(), "{:?}", dense.divergence);
    assert!(sparse.divergence.is_none(), "{:?}", sparse.divergence);
    assert!(dense.exhausted && sparse.exhausted);
    assert_eq!(
        dense.baseline_digests, sparse.baseline_digests,
        "codec changed application-visible behavior"
    );

    // And directly, run for run on the default schedule: the dense
    // interval vectors must be identical across codecs.
    let mut d1 = TraceDecider::new(Trace::new());
    let a = run_schedule_with(&w, &mut d1, ProtocolKind::Tdi);
    let mut d2 = TraceDecider::new(Trace::new());
    let b = run_schedule_with(&w, &mut d2, ProtocolKind::TdiSparse(4));
    assert_eq!(a.digests, b.digests);
    assert_eq!(
        a.interval_vectors, b.interval_vectors,
        "canonicalized depend_interval vectors must match across codecs"
    );
}

/// A receive that can never be satisfied must surface as a first-class
/// wedge verdict naming the stuck rank — not hang the runner or trip a
/// wall-clock watchdog (and a wedged run never agrees with a completed
/// baseline).
#[test]
fn unsatisfiable_receive_reports_wedged() {
    let mut w = Workload::new(2, Fold::Commutative);
    // Rank 0 waits for rank 1, which never sends.
    w.push(0, Op::Recv { src: Some(1), tag: 7 });
    let mut d = TraceDecider::new(Trace::new());
    let out = run_schedule(&w, &mut d);
    assert_eq!(out.verdict, Verdict::Wedged { unfinished: vec![0] });
    assert_eq!(out.delivered, 0);
}

/// Replay determinism: running the same trace twice yields an
/// identical outcome — digests, intervals, steps, everything.
#[test]
fn same_trace_replays_identically() {
    let w = Workload::rotating_gather(3, 2).with_payload(Payload::StateDependent);
    let trace: Trace = vec![2, 0, 1, 1, 0, 2, 1].into();
    let mut d1 = TraceDecider::new(trace.clone());
    let mut d2 = TraceDecider::new(trace);
    let a = run_schedule(&w, &mut d1);
    let b = run_schedule(&w, &mut d2);
    assert_eq!(a, b);
}

/// Seeded sampling on a tree too large to enumerate (n = 4): every
/// sampled schedule agrees with the baseline.
#[test]
fn sampled_gather_n4_agrees_everywhere() {
    let w = Workload::rotating_gather(4, 4);
    let cfg = ExploreConfig {
        samples: 64,
        ..Default::default()
    };
    let report = explore_sampled(&w, &cfg);
    assert!(
        report.divergence.is_none(),
        "divergence found: {:?}",
        report.divergence
    );
    assert_eq!(report.schedules, 65); // baseline + 64 samples
    assert!(report.max_arity >= 2);
}
