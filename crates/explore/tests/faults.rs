//! Fault choice points under exploration: crashes, crash+wipe, and
//! forced detector verdicts injected at every quiescent point of
//! every schedule must all converge back to the fault-free baseline's
//! digests and `depend_interval` vectors — the message-logging
//! recovery guarantee checked as an exhaustive invariant instead of a
//! handful of scripted failure scenarios.

use lclog_core::ProtocolKind;
use lclog_explore::{
    explore_dpor, run_schedule_cfg, Alt, ExploreConfig, FaultBudget, RunnerConfig, Trace,
    TraceDecider, Verdict, Workload,
};

fn cfg(faults: FaultBudget) -> ExploreConfig {
    ExploreConfig {
        max_schedules: 200_000,
        faults,
        ..Default::default()
    }
}

/// Exhaustive n=3 single-crash matrix: one crash (no wipe) injectable
/// before any enabled delivery of any schedule. Every schedule must
/// recover and agree with the fault-free baseline.
#[test]
fn crash_matrix_n3_agrees_everywhere() {
    let w = Workload::rotating_gather(3, 2);
    let report = explore_dpor(
        &w,
        &cfg(FaultBudget {
            crashes: 1,
            ..FaultBudget::none()
        }),
    );
    assert!(report.divergence.is_none(), "{:?}", report.divergence);
    assert!(report.exhausted, "crash matrix hit the execution cap");
    assert_eq!(report.wedged, 0, "a crash schedule wedged");
    // The fault-free DPOR tree is a strict subset of this one.
    let fault_free = explore_dpor(&w, &cfg(FaultBudget::none()));
    assert!(report.schedules > fault_free.schedules);
    assert_eq!(
        report.digests_seen, fault_free.digests_seen,
        "a crash schedule reached digests no fault-free schedule can"
    );
}

/// Same matrix under the TDI-S sparse codec: recovery resyncs delta
/// chains too.
#[test]
fn crash_matrix_n3_sparse_codec_agrees() {
    let w = Workload::rotating_gather(3, 1);
    let report = explore_dpor(
        &w,
        &ExploreConfig {
            protocol: ProtocolKind::TdiSparse(4),
            ..cfg(FaultBudget {
                crashes: 1,
                ..FaultBudget::none()
            })
        },
    );
    assert!(report.divergence.is_none(), "{:?}", report.divergence);
    assert!(report.exhausted);
    assert_eq!(report.wedged, 0);
}

/// Crash + storage wipe with checkpointing enabled: the victim comes
/// back from its most recent checkpoint (or from scratch when the
/// wipe beat the first checkpoint) and must still converge.
#[test]
fn crash_wipe_with_checkpoints_agrees() {
    let w = Workload::rotating_gather(3, 2).with_checkpoints(2);
    let report = explore_dpor(
        &w,
        &cfg(FaultBudget {
            wipes: 1,
            ..FaultBudget::none()
        }),
    );
    assert!(report.divergence.is_none(), "{:?}", report.divergence);
    assert!(report.exhausted);
    assert_eq!(report.wedged, 0, "a wipe schedule wedged");
}

/// Forced detector verdicts: at every quiescent point the explorer
/// may declare any live rank failed. A `true` verdict kills and
/// recovers it; a `false` verdict fences a perfectly healthy rank
/// (zombie), which must be excised and recovered without digest
/// damage — the "detector is allowed to be wrong" half of the fault
/// model.
#[test]
fn suspect_matrix_n3_agrees_everywhere() {
    let w = Workload::rotating_gather(3, 1);
    let report = explore_dpor(
        &w,
        &cfg(FaultBudget {
            suspects: 1,
            ..FaultBudget::none()
        }),
    );
    assert!(report.divergence.is_none(), "{:?}", report.divergence);
    assert!(report.exhausted);
    assert_eq!(report.wedged, 0, "a forced-verdict schedule wedged");
}

/// ISSUE target: n=3 with crash + false-suspicion *pairs* — up to two
/// faults per schedule, exploring a real crash composed with a wrong
/// verdict about a survivor.
#[test]
fn crash_plus_suspicion_pairs_n3_agree() {
    let w = Workload::rotating_gather(3, 1);
    let report = explore_dpor(
        &w,
        &cfg(FaultBudget {
            crashes: 1,
            suspects: 1,
            ..FaultBudget::none()
        }),
    );
    assert!(report.divergence.is_none(), "{:?}", report.divergence);
    assert!(report.exhausted);
    assert_eq!(report.wedged, 0);
}

/// ISSUE target: exhaustive n=4 with one crash choice point completes
/// and agrees everywhere — single crash, any target, any position,
/// composed with *all* downstream interleavings. A second run with
/// `FaultBudget::window` set must explore a strict subset of the same
/// tree (the window is the declared bound that keeps *larger*
/// matrices finite; here it only trims late injection points).
#[test]
fn crash_matrix_n4_agrees_everywhere() {
    let w = Workload::rotating_gather(4, 1);
    let report = explore_dpor(
        &w,
        &cfg(FaultBudget {
            crashes: 1,
            ..FaultBudget::none()
        }),
    );
    assert!(report.divergence.is_none(), "{:?}", report.divergence);
    assert!(report.exhausted, "n=4 crash matrix hit the execution cap");
    assert_eq!(report.wedged, 0);
    assert!(report.max_arity >= 4, "fault alts missing from the frontier");

    let windowed = explore_dpor(
        &w,
        &cfg(FaultBudget {
            crashes: 1,
            window: 2,
            ..FaultBudget::none()
        }),
    );
    assert!(windowed.divergence.is_none(), "{:?}", windowed.divergence);
    assert!(windowed.exhausted);
    assert!(
        windowed.schedules < report.schedules,
        "window did not prune late injection points"
    );
    assert!(windowed.digests_seen.is_subset(&report.digests_seen));
}

/// A single hand-picked false-suspicion schedule, end to end: force
/// the highest-indexed alternative at the root — the canonical alt
/// order puts `Suspect{real: false}` of the highest live rank last —
/// and check the zombie is fenced, recovered, and the digests match.
#[test]
fn false_suspicion_single_run_converges() {
    let w = Workload::rotating_gather(3, 2);
    let rcfg = RunnerConfig {
        faults: FaultBudget {
            suspects: 1,
            ..FaultBudget::none()
        },
        ..RunnerConfig::default()
    };
    let mut base = TraceDecider::new(Trace::new());
    let baseline = run_schedule_cfg(&w, &mut base, &RunnerConfig::default());

    let mut d = TraceDecider::new(vec![usize::MAX].into());
    let out = run_schedule_cfg(&w, &mut d, &rcfg);
    assert_eq!(out.verdict, Verdict::Completed);
    assert_eq!(out.faults_injected, 1);
    assert!(
        out.steps.iter().any(|s| matches!(
            s.action(),
            Alt::Suspect { real: false, .. }
        )),
        "clamped trace did not select the false-suspicion alternative"
    );
    assert_eq!(out.digests, baseline.digests);
    assert_eq!(out.interval_vectors, baseline.interval_vectors);
}
