//! Counterexample files and trace replay.
//!
//! When an exploration diverges, the bench harness writes the
//! offending schedule to a small line-oriented case file; `reproduce
//! -- explore --replay <file>` parses it back into a [`ReplayCase`],
//! re-executes the trace through the deterministic runner, and prints
//! a per-step timeline. Because a run is a pure function of
//! `(workload, trace)`, the file is a complete, portable repro — no
//! logs or snapshots needed.
//!
//! The format is deliberately trivial (one `key = value` per line,
//! `#` comments, unknown keys rejected):
//!
//! ```text
//! # lclog-explore counterexample
//! workload = gather 3 3
//! fold = order-sensitive
//! payload = deterministic
//! checkpoints = every 2
//! protocol = tdi-s 64
//! faults = crashes=1 wipes=0 suspects=0
//! trace = 1.0.2
//! ```

use std::fmt;
use std::str::FromStr;

use crate::decider::TraceDecider;
use crate::runner::{run_schedule_cfg, Alt, FaultBudget, RunOutcome, RunnerConfig};
use crate::trace::Trace;
use crate::workload::{Fold, Payload, Workload};
use lclog_core::ProtocolKind;

/// A self-contained replayable schedule: workload shape, runner
/// configuration, and the trace to drive through it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayCase {
    /// Ranks in the rotating-gather workload.
    pub n: usize,
    /// Rounds in the rotating-gather workload.
    pub rounds: usize,
    /// Receiver-side fold.
    pub fold: Fold,
    /// Sender-side payload rule.
    pub payload: Payload,
    /// Checkpoint cadence (`None` = restore from scratch).
    pub checkpoint_every: Option<u64>,
    /// Tracking protocol.
    pub protocol: ProtocolKind,
    /// Fault choice points the schedule may spend.
    pub faults: FaultBudget,
    /// The decision sequence to replay.
    pub trace: Trace,
}

impl ReplayCase {
    /// A fault-free TDI case over `rotating_gather(n, rounds)`.
    pub fn gather(n: usize, rounds: usize, trace: Trace) -> Self {
        ReplayCase {
            n,
            rounds,
            fold: Fold::Commutative,
            payload: Payload::Deterministic,
            checkpoint_every: None,
            protocol: ProtocolKind::Tdi,
            faults: FaultBudget::none(),
            trace,
        }
    }

    /// Materialize the workload this case runs.
    pub fn workload(&self) -> Workload {
        let mut w = Workload::rotating_gather(self.n, self.rounds).with_payload(self.payload);
        w.fold = self.fold;
        if let Some(every) = self.checkpoint_every {
            w = w.with_checkpoints(every);
        }
        w
    }

    /// The runner configuration this case runs under.
    pub fn runner(&self) -> RunnerConfig {
        RunnerConfig {
            protocol: self.protocol,
            faults: self.faults,
        }
    }
}

impl fmt::Display for ReplayCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# lclog-explore counterexample")?;
        writeln!(f, "workload = gather {} {}", self.n, self.rounds)?;
        let fold = match self.fold {
            Fold::Commutative => "commutative",
            Fold::OrderSensitive => "order-sensitive",
        };
        writeln!(f, "fold = {fold}")?;
        let payload = match self.payload {
            Payload::Deterministic => "deterministic",
            Payload::StateDependent => "state-dependent",
        };
        writeln!(f, "payload = {payload}")?;
        match self.checkpoint_every {
            None => writeln!(f, "checkpoints = none")?,
            Some(every) => writeln!(f, "checkpoints = every {every}")?,
        }
        match self.protocol {
            ProtocolKind::TdiSparse(k) => writeln!(f, "protocol = tdi-s {k}")?,
            ProtocolKind::Tdi => writeln!(f, "protocol = tdi")?,
            other => writeln!(f, "protocol = {}", other.name().to_lowercase())?,
        }
        writeln!(
            f,
            "faults = crashes={} wipes={} suspects={} window={}",
            self.faults.crashes, self.faults.wipes, self.faults.suspects, self.faults.window
        )?;
        writeln!(f, "trace = {}", self.trace)
    }
}

impl FromStr for ReplayCase {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut case = ReplayCase::gather(2, 1, Trace::new());
        let mut saw_workload = false;
        for (lineno, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: bad {what}: {value:?}", lineno + 1);
            match key {
                "workload" => {
                    let mut it = value.split_whitespace();
                    if it.next() != Some("gather") {
                        return Err(bad("workload (expected `gather <n> <rounds>`)"));
                    }
                    case.n = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("workload rank count"))?;
                    case.rounds = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("workload round count"))?;
                    saw_workload = true;
                }
                "fold" => {
                    case.fold = match value {
                        "commutative" => Fold::Commutative,
                        "order-sensitive" => Fold::OrderSensitive,
                        _ => return Err(bad("fold")),
                    }
                }
                "payload" => {
                    case.payload = match value {
                        "deterministic" => Payload::Deterministic,
                        "state-dependent" => Payload::StateDependent,
                        _ => return Err(bad("payload")),
                    }
                }
                "checkpoints" => {
                    case.checkpoint_every = match value {
                        "none" => None,
                        other => Some(
                            other
                                .strip_prefix("every")
                                .and_then(|t| t.trim().parse().ok())
                                .ok_or_else(|| bad("checkpoint cadence"))?,
                        ),
                    }
                }
                "protocol" => {
                    let mut it = value.split_whitespace();
                    case.protocol = match (it.next(), it.next()) {
                        (Some("tdi"), None) => ProtocolKind::Tdi,
                        (Some("tdi-s"), Some(k)) => {
                            ProtocolKind::TdiSparse(k.parse().map_err(|_| bad("resync window"))?)
                        }
                        _ => return Err(bad("protocol (expected `tdi` or `tdi-s <k>`)")),
                    };
                }
                "faults" => {
                    let mut faults = FaultBudget::none();
                    for part in value.split_whitespace() {
                        let (k, v) = part.split_once('=').ok_or_else(|| bad("fault budget"))?;
                        let v: usize = v.parse().map_err(|_| bad("fault budget"))?;
                        match k {
                            "crashes" => faults.crashes = v,
                            "wipes" => faults.wipes = v,
                            "suspects" => faults.suspects = v,
                            "window" => faults.window = v,
                            _ => return Err(bad("fault budget key")),
                        }
                    }
                    case.faults = faults;
                }
                "trace" => {
                    case.trace = Trace::parse(value).ok_or_else(|| bad("trace"))?;
                }
                _ => return Err(format!("line {}: unknown key {key:?}", lineno + 1)),
            }
        }
        if !saw_workload {
            return Err("missing `workload = gather <n> <rounds>` line".to_string());
        }
        Ok(case)
    }
}

/// One executed step of a replay, for timeline rendering.
#[derive(Debug, Clone)]
pub struct ReplayStep {
    /// The action executed.
    pub action: Alt,
    /// How many alternatives were legal at this step.
    pub arity: usize,
    /// Which alternative the schedule took.
    pub picked: usize,
}

impl ReplayStep {
    /// Whether this step was a real decision (two or more
    /// alternatives) rather than forced.
    pub fn chosen(&self) -> bool {
        self.arity >= 2
    }
}

/// Re-execute `case` and return the outcome plus the per-step
/// timeline.
pub fn replay_trace(case: &ReplayCase) -> (RunOutcome, Vec<ReplayStep>) {
    let workload = case.workload();
    let mut decider = TraceDecider::new(case.trace.clone());
    let out = run_schedule_cfg(&workload, &mut decider, &case.runner());
    let timeline = out
        .steps
        .iter()
        .map(|s| ReplayStep {
            action: s.action(),
            arity: s.alts.len(),
            picked: s.picked,
        })
        .collect();
    (out, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_file_round_trips() {
        let case = ReplayCase {
            n: 3,
            rounds: 2,
            fold: Fold::OrderSensitive,
            payload: Payload::StateDependent,
            checkpoint_every: Some(2),
            protocol: ProtocolKind::TdiSparse(64),
            faults: FaultBudget {
                crashes: 1,
                wipes: 0,
                suspects: 1,
                window: 9,
            },
            trace: vec![1, 0, 2].into(),
        };
        let text = case.to_string();
        let back: ReplayCase = text.parse().expect("round trip parse");
        assert_eq!(back, case);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("workload = gather 3".parse::<ReplayCase>().is_err());
        assert!("".parse::<ReplayCase>().is_err());
        assert!("workload = gather 3 2\nmystery = 1"
            .parse::<ReplayCase>()
            .is_err());
    }

    #[test]
    fn replay_produces_a_timeline() {
        let case = ReplayCase::gather(3, 2, Trace::new());
        let (out, timeline) = replay_trace(&case);
        assert_eq!(out.verdict, crate::runner::Verdict::Completed);
        assert_eq!(out.steps.len(), timeline.len());
        assert!(timeline.iter().any(|s| s.chosen()));
    }
}
