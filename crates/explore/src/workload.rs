//! Tiny deterministic workload DSL.
//!
//! A [`Workload`] is a per-rank straight-line program of sends and
//! receives, plus a fold that each delivered payload is combined into
//! the receiver's state with. The fold doubles as the explorer's
//! mutation hook: [`Fold::Commutative`] is what a correct
//! order-insensitive protocol must preserve across schedules, while
//! [`Fold::OrderSensitive`] deliberately breaks commutativity so tests
//! can confirm the explorer *detects* order dependence when it exists.

use lclog_core::Rank;

/// One program step for a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Send a deterministic payload to `dst` under `tag`.
    Send {
        /// Destination rank.
        dst: Rank,
        /// Application tag.
        tag: u32,
    },
    /// Receive one message matching `tag`; `src: None` is the
    /// `MPI_ANY_SOURCE` form and becomes an explorer choice point.
    Recv {
        /// Required sender, or `None` for any source.
        src: Option<Rank>,
        /// Application tag.
        tag: u32,
    },
}

/// How a delivered payload folds into the receiver's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fold {
    /// `state + value` (wrapping) — insensitive to delivery order, as
    /// the TDI order-insensitivity property requires of applications
    /// that accept any legal schedule.
    #[default]
    Commutative,
    /// `rotate_left(state, 9) ^ value` — the result depends on the
    /// order values arrive in. Used as an injected defect: a correct
    /// explorer must flag workloads whose digests depend on schedule.
    OrderSensitive,
}

impl Fold {
    /// Fold `value` into `state`.
    pub fn apply(self, state: u64, value: u64) -> u64 {
        match self {
            Fold::Commutative => state.wrapping_add(value),
            Fold::OrderSensitive => state.rotate_left(9) ^ value,
        }
    }
}

/// What a [`Op::Send`] step puts on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Payload {
    /// A pure function of `(rank, op_index)` — the same bytes in every
    /// schedule, so digests isolate *delivery order* effects.
    #[default]
    Deterministic,
    /// The sender's current fold state — couples payloads to the
    /// sender's own delivery history, amplifying order sensitivity.
    StateDependent,
}

impl Payload {
    /// The 64-bit value rank `rank` sends at program position
    /// `op_index` with fold state `state`.
    pub fn value(self, rank: Rank, op_index: usize, state: u64) -> u64 {
        match self {
            Payload::Deterministic => splitmix64(((rank as u64) << 32) | op_index as u64),
            Payload::StateDependent => {
                splitmix64(((rank as u64) << 32) | op_index as u64) ^ state
            }
        }
    }
}

/// A deterministic multi-rank program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of application ranks.
    pub n: usize,
    /// `programs[r]` is rank `r`'s straight-line op list.
    pub programs: Vec<Vec<Op>>,
    /// Receiver-side fold.
    pub fold: Fold,
    /// Sender-side payload rule.
    pub payload: Payload,
    /// Take a kernel checkpoint every this many completed program
    /// steps per rank (`None` disables checkpointing, so a crashed
    /// rank restores from scratch and replays its whole program).
    /// Checkpoints are forced actions — they happen at fixed program
    /// positions, never at schedule-dependent times — so a run stays a
    /// pure function of `(workload, trace)`.
    pub checkpoint_every: Option<u64>,
}

impl Workload {
    /// An empty workload for `n` ranks with the given fold.
    pub fn new(n: usize, fold: Fold) -> Self {
        Workload {
            n,
            programs: vec![Vec::new(); n],
            fold,
            payload: Payload::Deterministic,
            checkpoint_every: None,
        }
    }

    /// Replace the payload rule.
    pub fn with_payload(mut self, payload: Payload) -> Self {
        self.payload = payload;
        self
    }

    /// Checkpoint every `every` completed program steps per rank.
    pub fn with_checkpoints(mut self, every: u64) -> Self {
        self.checkpoint_every = Some(every.max(1));
        self
    }

    /// Append `op` to rank `rank`'s program.
    pub fn push(&mut self, rank: Rank, op: Op) {
        self.programs[rank].push(op);
    }

    /// The canonical `ANY_SOURCE` stress workload: `rounds` rounds
    /// where root `r % n` posts `n - 1` any-source receives on tag `r`
    /// while every other rank sends it one message. Because each rank
    /// advances to the next round as soon as its own part is done, the
    /// schedule tree interleaves sends and receives across rounds, and
    /// every receive's extraction order is a genuine choice point.
    pub fn rotating_gather(n: usize, rounds: usize) -> Self {
        assert!(n >= 2, "rotating gather needs at least two ranks");
        let mut w = Workload::new(n, Fold::Commutative);
        for round in 0..rounds {
            let root = round % n;
            let tag = round as u32;
            for r in 0..n {
                if r == root {
                    for _ in 0..n - 1 {
                        w.push(r, Op::Recv { src: None, tag });
                    }
                } else {
                    w.push(r, Op::Send { dst: root, tag });
                }
            }
        }
        w
    }
}

/// SplitMix64 — the usual seed-scrambling finalizer; good enough to
/// make every (rank, op) payload distinct and uncorrelated.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
