//! Deterministic single-threaded execution of a [`Workload`] over real
//! [`Kernel`]s.
//!
//! The runner owns everything that is normally concurrent: the fabric
//! runs in [held mode](lclog_simnet::DeliveryModel::Held) so sends park
//! in per-`(src, dst)` FIFOs instead of racing couriers, every
//! kernel-path timestamp reads a shared [`SimClock`], and there are no
//! engine threads — the runner drives `ingest`/`try_deliver` itself.
//! With wall time frozen the transport never retransmits, so each
//! application message crosses the fabric exactly once and the *only*
//! degrees of freedom left are the ones the explorer wants to permute:
//!
//! 1. **arrival order** — which held data frame is released next
//!    (subject to per-channel FIFO, the same guarantee real MPI gives);
//! 2. **extraction order** — which eligible sender an `ANY_SOURCE`
//!    receive takes (the `RecvQueue` choice the paper's
//!    order-insensitivity argument is about).
//!
//! Everything else is *forced* and executed eagerly to a fixpoint
//! between choice points: endpoint drains, control-frame flushes
//! (acks cannot change application-visible behavior while the clock is
//! frozen — branching on them would only pad the tree with
//! semantically identical schedules), sends, and source-specific
//! receives (their delivery order is already fixed by channel FIFO).

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use lclog_core::{ProtocolKind, Rank};
use lclog_runtime::{
    payload_is_data_frame, AppMsg, CheckpointPolicy, Clock, Kernel, RecvSpec, RunConfig,
};
use lclog_simnet::{Endpoint, NetConfig, SimClock, SimNet};
use lclog_stable::{CheckpointStore, MemStore};

use crate::decider::Decider;
use crate::trace::Trace;
use crate::workload::{Op, Workload};

/// One recorded choice point (only points with two or more legal
/// alternatives are recorded; forced steps do not consume decisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// Branch taken, in `0..arity`.
    pub picked: usize,
    /// Number of legal alternatives that existed.
    pub arity: usize,
}

/// Everything observable about one schedule's execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Final fold state per rank — the application-visible result.
    pub digests: Vec<u64>,
    /// Final `depend_interval` vector per rank (`None` for protocols
    /// that do not maintain one). Always the *canonicalized dense*
    /// form — sparse tracking (TDI-S) reports its materialized dense
    /// vector — so outcomes from different codecs of the same protocol
    /// cross-check directly.
    pub interval_vectors: Vec<Option<Vec<u64>>>,
    /// The choice points this run hit, with the branch taken at each.
    pub choices: Vec<Choice>,
    /// Messages delivered to application receives across all ranks.
    pub delivered: usize,
    /// The run stalled: some rank had program steps left but no legal
    /// action existed anywhere.
    pub deadlock: bool,
    /// Some kernel flagged a tracking desync (always a defect).
    pub desynced: bool,
}

impl RunOutcome {
    /// The trace that replays this exact schedule.
    pub fn trace(&self) -> Trace {
        self.choices.iter().map(|c| c.picked).collect()
    }

    /// Whether this outcome matches `baseline` in every property the
    /// order-insensitivity claim covers: it completed, and both the
    /// per-rank digests and the per-rank `depend_interval` vectors are
    /// identical.
    pub fn agrees_with(&self, baseline: &RunOutcome) -> bool {
        !self.deadlock
            && !self.desynced
            && self.digests == baseline.digests
            && self.interval_vectors == baseline.interval_vectors
    }
}

/// A legal next action at a choice point.
#[derive(Debug, Clone, Copy)]
enum Alt {
    /// Extract the queued deliverable message from `src` for the
    /// `ANY_SOURCE` receive `rank` is blocked on.
    Deliver { rank: Rank, src: Rank, tag: u32 },
    /// Release the held data frame at the head of channel `src → dst`.
    Release { src: Rank, dst: Rank },
}

/// Execute `workload` under the schedule `decider` dictates and return
/// the outcome, using dense TDI tracking. A run is a pure function of
/// `(workload, decisions)`: replaying the returned
/// [`RunOutcome::trace`] through a [`crate::TraceDecider`] reproduces
/// it exactly.
pub fn run_schedule(workload: &Workload, decider: &mut dyn Decider) -> RunOutcome {
    run_schedule_with(workload, decider, ProtocolKind::Tdi)
}

/// [`run_schedule`] with an explicit tracking protocol. Running the
/// same `(workload, trace)` under [`ProtocolKind::Tdi`] and
/// [`ProtocolKind::TdiSparse`] must produce outcomes that agree — the
/// sparse codec is a wire encoding of the same lattice, and
/// [`RunOutcome::interval_vectors`] is canonicalized dense on both
/// sides.
pub fn run_schedule_with(
    workload: &Workload,
    decider: &mut dyn Decider,
    kind: ProtocolKind,
) -> RunOutcome {
    let n = workload.n;
    let clock = SimClock::new();
    // Slot n is reserved for the TEL event logger by convention; TDI
    // never talks to it, but sizing the fabric identically to the real
    // cluster keeps rank arithmetic the same.
    let net = SimNet::new(n + 1, NetConfig::held());
    let store = CheckpointStore::new(Arc::new(MemStore::new()));
    let kernels: Vec<Kernel> = (0..n)
        .map(|r| {
            let cfg = RunConfig::new(kind)
                .with_checkpoint(CheckpointPolicy::Never)
                .with_clock(Clock::Sim(clock.clone()));
            Kernel::new(r, n, cfg, net.clone(), store.clone())
        })
        .collect();
    let endpoints: Vec<Endpoint> = (0..n).map(|r| net.attach(r)).collect();

    let mut state = vec![0u64; n];
    let mut pc = vec![0usize; n];
    let mut choices = Vec::new();
    let mut delivered = 0usize;
    let mut deadlock = false;

    loop {
        // Phase 1: run every forced action to a fixpoint.
        loop {
            let mut progress = false;

            // Surface released envelopes into the kernels.
            for r in 0..n {
                while let Ok(env) = endpoints[r].try_recv() {
                    kernels[r].ingest(env);
                    progress = true;
                }
            }

            // Flush control frames (acks) at channel heads. Data
            // frames stay parked — releasing them is a choice.
            for (src, dst, _) in net.held_channels() {
                if src >= n || dst >= n {
                    continue;
                }
                while let Some(head) = net.held_head(src, dst) {
                    if payload_is_data_frame(&head) {
                        break;
                    }
                    net.held_deliver(src, dst);
                    progress = true;
                }
            }

            // Run forced program steps: sends always, source-specific
            // receives when deliverable. ANY_SOURCE receives stop the
            // rank — they are the extraction choice point.
            for r in 0..n {
                while pc[r] < workload.programs[r].len() {
                    match workload.programs[r][pc[r]] {
                        Op::Send { dst, tag } => {
                            let value = workload.payload.value(r, pc[r], state[r]);
                            kernels[r].app_send(
                                dst,
                                tag,
                                Bytes::copy_from_slice(&value.to_le_bytes()),
                                false,
                            );
                            pc[r] += 1;
                            progress = true;
                        }
                        Op::Recv { src: Some(s), tag } => {
                            match kernels[r].try_deliver(RecvSpec::from(s, tag)) {
                                Some(msg) => {
                                    state[r] = workload.fold.apply(state[r], decode(&msg));
                                    delivered += 1;
                                    pc[r] += 1;
                                    progress = true;
                                }
                                None => break,
                            }
                        }
                        Op::Recv { src: None, .. } => break,
                    }
                }
            }

            if !progress {
                break;
            }
        }

        if pc
            .iter()
            .zip(&workload.programs)
            .all(|(p, prog)| *p >= prog.len())
        {
            break;
        }

        // Phase 2: enumerate the legal alternatives, deterministically
        // ordered (extractions by (rank, src), then releases in the
        // fabric's sorted channel order) so branch indices are stable
        // across runs.
        let mut alts: Vec<Alt> = Vec::new();
        for r in 0..n {
            if let Some(Op::Recv { src: None, tag }) = workload.programs[r].get(pc[r]).copied() {
                for s in kernels[r].deliverable_sources(RecvSpec::any_source(tag)) {
                    alts.push(Alt::Deliver { rank: r, src: s, tag });
                }
            }
        }
        for (src, dst, len) in net.held_channels() {
            if src >= n || dst >= n || len == 0 {
                continue;
            }
            if let Some(head) = net.held_head(src, dst) {
                if payload_is_data_frame(&head) {
                    alts.push(Alt::Release { src, dst });
                }
            }
        }

        if alts.is_empty() {
            deadlock = true;
            break;
        }

        let idx = if alts.len() == 1 {
            0
        } else {
            let picked = decider.choose(alts.len()).min(alts.len() - 1);
            choices.push(Choice {
                picked,
                arity: alts.len(),
            });
            picked
        };

        match alts[idx] {
            Alt::Deliver { rank, src, tag } => {
                if let Some(msg) = kernels[rank].try_deliver(RecvSpec::from(src, tag)) {
                    state[rank] = workload.fold.apply(state[rank], decode(&msg));
                    delivered += 1;
                    pc[rank] += 1;
                }
            }
            Alt::Release { src, dst } => {
                net.held_deliver(src, dst);
            }
        }

        // Nudge virtual time so successive events carry distinct
        // timestamps; far below any transport timeout, and the runner
        // never calls tick(), so no retransmission can fire.
        clock.advance(Duration::from_micros(1));
    }

    RunOutcome {
        digests: state,
        interval_vectors: kernels.iter().map(|k| k.interval_vector()).collect(),
        choices,
        delivered,
        deadlock,
        desynced: kernels.iter().any(|k| k.is_desynced()),
    }
}

fn decode(msg: &AppMsg) -> u64 {
    let mut b = [0u8; 8];
    let len = msg.data.len().min(8);
    b[..len].copy_from_slice(&msg.data[..len]);
    u64::from_le_bytes(b)
}
