//! Deterministic single-threaded execution of a [`Workload`] over real
//! [`Kernel`]s — including crash, wipe, and detector-verdict injection
//! as schedule choice points.
//!
//! The runner owns everything that is normally concurrent: the fabric
//! runs in [held mode](lclog_simnet::DeliveryModel::Held) so sends park
//! in per-`(src, dst)` FIFOs instead of racing couriers, every
//! kernel-path timestamp reads a shared [`SimClock`], and there are no
//! engine threads — the runner drives `ingest`/`try_deliver` itself.
//! With wall time frozen the transport never retransmits, so each
//! application message crosses the fabric exactly once and the degrees
//! of freedom left are exactly the ones the explorer wants to permute:
//!
//! 1. **arrival order** — which held data frame is released next
//!    (subject to per-channel FIFO, the same guarantee real MPI gives);
//! 2. **extraction order** — which eligible sender an `ANY_SOURCE`
//!    receive takes (the `RecvQueue` choice the paper's
//!    order-insensitivity argument is about);
//! 3. **fault placement** — when a rank crashes ([`Alt::Crash`]), when
//!    it crashes *and* loses its local store ([`Alt::CrashWipe`]), and
//!    what the failure detector concludes ([`Alt::Suspect`] — a true
//!    verdict kills the rank and fences its incarnation, a false one
//!    fences a rank that is still running).
//!
//! Everything else is *forced* and executed eagerly to a fixpoint
//! between choice points: endpoint drains, control-frame flushes
//! (acks, `ROLLBACK`/`RESPONSE`, membership views — they cannot change
//! application-visible behavior while the clock is frozen and their
//! processing is order-insensitive at the reliability layer), sends,
//! source-specific receives (delivery order already fixed by channel
//! FIFO), checkpoints at fixed program positions, and zombie
//! retirement. Recovery after an injected fault rides the *real*
//! protocol machinery — `begin_recovery`, `ROLLBACK` broadcast,
//! survivor `RESPONSE`s and sender-log resends — with the resent data
//! frames parking in held channels like any other send, so the
//! interleaving of recovery traffic with ordinary traffic is itself
//! explored.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use lclog_core::{MembershipView, ProtocolKind, Rank};
use lclog_runtime::{
    payload_is_app_frame, AppMsg, CheckpointPolicy, Clock, Kernel, RecvSpec, RunConfig,
};
use lclog_simnet::{Endpoint, NetConfig, SimClock, SimNet};
use lclog_stable::{CheckpointStore, MemStore};

use crate::decider::Decider;
use crate::trace::Trace;
use crate::workload::{Op, Workload};

/// A legal next action at a choice point. The runner enumerates these
/// in a deterministic order (extractions by rank in arrival order,
/// then releases in sorted channel order, then fault alternatives), so
/// branch indices are stable across replays of the same prefix — and
/// index 0 is never a fault while a regular action exists, which keeps
/// the all-defaults baseline schedule fault-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Alt {
    /// Extract the queued deliverable message from `src` for the
    /// `ANY_SOURCE` receive `rank` is blocked on.
    Deliver {
        /// The receiving rank.
        rank: Rank,
        /// The sender whose queued message is extracted.
        src: Rank,
        /// The receive's application tag.
        tag: u32,
    },
    /// Release the held data frame at the head of channel `src → dst`.
    Release {
        /// Channel source.
        src: Rank,
        /// Channel destination.
        dst: Rank,
    },
    /// Kill `rank` unannounced and respawn it through checkpoint
    /// restore + rollback recovery. In-flight frames *toward* the rank
    /// die with it; frames it already sent stay in flight (a real
    /// crash cannot recall datagrams).
    Crash {
        /// The victim.
        rank: Rank,
    },
    /// [`Alt::Crash`] plus node loss: the victim's local checkpoint
    /// store is wiped, so the respawn restores from scratch and
    /// replays its whole program under survivor log resends.
    CrashWipe {
        /// The victim.
        rank: Rank,
    },
    /// Force a detector verdict on `rank`: the explorer synthesizes
    /// the certified membership view a real arbiter would publish and
    /// applies it to every survivor. `real: true` additionally kills
    /// the rank first (correct detection); `real: false` leaves it
    /// running as a fenced zombie (false suspicion) — it keeps
    /// executing until a survivor rejects one of its frames or it
    /// finishes, then is forcibly retired through the rollback path.
    Suspect {
        /// The suspected rank.
        rank: Rank,
        /// Whether the rank really is dead (`true`) or falsely
        /// suspected (`false`).
        real: bool,
    },
}

impl std::fmt::Display for Alt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Alt::Deliver { rank, src, tag } => write!(f, "deliver {rank}<-{src} tag {tag}"),
            Alt::Release { src, dst } => write!(f, "release {src}->{dst}"),
            Alt::Crash { rank } => write!(f, "crash {rank}"),
            Alt::CrashWipe { rank } => write!(f, "crash+wipe {rank}"),
            Alt::Suspect { rank, real: true } => write!(f, "suspect {rank} (true)"),
            Alt::Suspect { rank, real: false } => write!(f, "suspect {rank} (false)"),
        }
    }
}

/// How many fault choice points a single schedule may take. Faults are
/// offered as alternatives at every choice point that still has a
/// regular action, each category drawing down its own budget; all-zero
/// (the default) reproduces fault-free exploration exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultBudget {
    /// Unannounced crash+respawn injections ([`Alt::Crash`]).
    pub crashes: usize,
    /// Crash+store-wipe injections ([`Alt::CrashWipe`]).
    pub wipes: usize,
    /// Forced detector verdicts ([`Alt::Suspect`], true and false).
    pub suspects: usize,
    /// Fault alternatives are only offered during the first `window`
    /// executed steps of a schedule (`0` = anywhere). Faults are
    /// dependent with everything, so the fault-position axis is not
    /// DPOR-reducible — the window is the explicit bound that keeps
    /// larger matrices (e.g. the exhaustive n=4 single-crash table)
    /// finite, trading late-schedule injection points (whose recovery
    /// has the least left to replay) for tractability.
    pub window: usize,
}

impl FaultBudget {
    /// No faults — pure schedule exploration.
    pub fn none() -> Self {
        FaultBudget::default()
    }

    /// Total injections this budget still allows.
    pub fn total(&self) -> usize {
        self.crashes + self.wipes + self.suspects
    }
}

/// Everything the runner needs besides the workload and the decider.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Tracking protocol under test.
    pub protocol: ProtocolKind,
    /// Fault choice points a schedule may spend.
    pub faults: FaultBudget,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            protocol: ProtocolKind::Tdi,
            faults: FaultBudget::none(),
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every rank finished its program and no recovery is pending.
    Completed,
    /// The schedule stalled: unfinished ranks exist but no legal
    /// action does. Surfaced as a first-class outcome (with the trace
    /// that reached it) instead of tripping a wall-clock watchdog.
    Wedged {
        /// Ranks with program steps left (or stuck mid-recovery).
        unfinished: Vec<Rank>,
    },
    /// Some kernel flagged a tracking desync (always a defect).
    Desynced,
    /// The decider abandoned the run (`choose` returned `None`) — the
    /// DPOR engine prunes sleep-blocked continuations this way. Not a
    /// defect and not a distinct schedule.
    Aborted,
}

/// One executed step: the full alternative set that was legal at that
/// point (in canonical order) and the branch taken. Forced steps
/// (arity 1) are recorded too — the DPOR engine needs every executed
/// action to maintain its sleep sets, even where no branching was
/// possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The legal alternatives, canonically ordered.
    pub alts: Vec<Alt>,
    /// Index of the alternative executed.
    pub picked: usize,
}

impl Step {
    /// The action this step executed.
    pub fn action(&self) -> Alt {
        self.alts[self.picked]
    }
}

/// Everything observable about one schedule's execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Final fold state per rank — the application-visible result.
    pub digests: Vec<u64>,
    /// Final `depend_interval` vector per rank (`None` for protocols
    /// that do not maintain one). Always the *canonicalized dense*
    /// form — sparse tracking (TDI-S) reports its materialized dense
    /// vector — so outcomes from different codecs of the same protocol
    /// cross-check directly.
    pub interval_vectors: Vec<Option<Vec<u64>>>,
    /// Every executed step with its full alternative set.
    pub steps: Vec<Step>,
    /// Messages delivered to application receives across all ranks
    /// (re-deliveries after a rollback count — a crashed schedule
    /// legitimately delivers more than a fault-free one).
    pub delivered: usize,
    /// Fault alternatives this schedule actually took.
    pub faults_injected: usize,
    /// How the run ended.
    pub verdict: Verdict,
}

impl RunOutcome {
    /// The trace that replays this exact schedule: the branch taken at
    /// each choice point with two or more alternatives (forced steps
    /// replay for free).
    pub fn trace(&self) -> Trace {
        self.steps
            .iter()
            .filter(|s| s.alts.len() >= 2)
            .map(|s| s.picked)
            .collect()
    }

    /// Largest branching factor seen at any step.
    pub fn max_arity(&self) -> usize {
        self.steps.iter().map(|s| s.alts.len()).max().unwrap_or(1)
    }

    /// Whether this outcome matches `baseline` in every property the
    /// order-insensitivity claim covers: it completed, and both the
    /// per-rank digests and the per-rank `depend_interval` vectors are
    /// identical. Faulty schedules are held to the *same* bar — crash,
    /// wipe, and false-suspicion recovery must converge to the
    /// fault-free result.
    pub fn agrees_with(&self, baseline: &RunOutcome) -> bool {
        self.verdict == Verdict::Completed
            && self.digests == baseline.digests
            && self.interval_vectors == baseline.interval_vectors
    }
}

/// Execute `workload` under the schedule `decider` dictates and return
/// the outcome, using dense TDI tracking and no faults. A run is a
/// pure function of `(workload, decisions)`: replaying the returned
/// [`RunOutcome::trace`] through a [`crate::TraceDecider`] reproduces
/// it exactly.
pub fn run_schedule(workload: &Workload, decider: &mut dyn Decider) -> RunOutcome {
    run_schedule_cfg(workload, decider, &RunnerConfig::default())
}

/// [`run_schedule`] with an explicit tracking protocol. Running the
/// same `(workload, trace)` under [`ProtocolKind::Tdi`] and
/// [`ProtocolKind::TdiSparse`] must produce outcomes that agree — the
/// sparse codec is a wire encoding of the same lattice, and
/// [`RunOutcome::interval_vectors`] is canonicalized dense on both
/// sides.
pub fn run_schedule_with(
    workload: &Workload,
    decider: &mut dyn Decider,
    kind: ProtocolKind,
) -> RunOutcome {
    run_schedule_cfg(
        workload,
        decider,
        &RunnerConfig {
            protocol: kind,
            faults: FaultBudget::none(),
        },
    )
}

/// Escape-hatch bound: how many times a stalled run may advance the
/// virtual clock past the retry interval and tick every kernel to let
/// time-driven recovery machinery (rollback rebroadcast to a peer that
/// was dead at first broadcast) fire. Past this, the run is wedged.
const MAX_TICK_ESCAPES: usize = 16;

/// The runner's per-run mutable world: real kernels over a held
/// fabric, plus the bookkeeping fault injection needs.
struct World<'w> {
    workload: &'w Workload,
    kind: ProtocolKind,
    n: usize,
    clock: SimClock,
    net: SimNet,
    store: CheckpointStore,
    kernels: Vec<Kernel>,
    endpoints: Vec<Endpoint>,
    state: Vec<u64>,
    pc: Vec<usize>,
    incarnation: Vec<u64>,
    /// Falsely suspected ranks still running (fenced by survivors).
    zombie: Vec<bool>,
    /// Monotone synthesized membership state: every forced verdict
    /// bumps the epoch and raises the victim's floor, exactly like a
    /// real arbiter's certified view sequence.
    view_epoch: u64,
    floors: Vec<u64>,
    delivered: usize,
    faults_injected: usize,
}

impl<'w> World<'w> {
    fn new(workload: &'w Workload, kind: ProtocolKind) -> Self {
        let n = workload.n;
        let clock = SimClock::new();
        // Slot n is reserved for the TEL event logger by convention;
        // TDI never talks to it, but sizing the fabric identically to
        // the real cluster keeps rank arithmetic the same.
        let net = SimNet::new(n + 1, NetConfig::held());
        let store = CheckpointStore::new(Arc::new(MemStore::new()));
        let kernels: Vec<Kernel> = (0..n)
            .map(|r| Self::make_kernel(r, n, kind, &clock, &net, &store))
            .collect();
        let endpoints: Vec<Endpoint> = (0..n).map(|r| net.attach(r)).collect();
        World {
            workload,
            kind,
            n,
            clock,
            net,
            store,
            kernels,
            endpoints,
            state: vec![0u64; n],
            pc: vec![0usize; n],
            incarnation: vec![1u64; n],
            zombie: vec![false; n],
            view_epoch: 0,
            floors: vec![1u64; n],
            delivered: 0,
            faults_injected: 0,
        }
    }

    fn make_kernel(
        r: Rank,
        n: usize,
        kind: ProtocolKind,
        clock: &SimClock,
        net: &SimNet,
        store: &CheckpointStore,
    ) -> Kernel {
        // `log_gc_lag` keeps one checkpoint generation of sender logs
        // resendable past the GC horizon — the runtime's contract for
        // node-loss restores, and what makes `Alt::CrashWipe` (restore
        // falls back past the wiped checkpoint) recoverable.
        let cfg = RunConfig::new(kind)
            .with_checkpoint(CheckpointPolicy::Never)
            .with_log_gc_lag(true)
            .with_clock(Clock::Sim(clock.clone()));
        Kernel::new(r, n, cfg, net.clone(), store.clone())
    }

    fn done(&self, r: Rank) -> bool {
        self.pc[r] >= self.workload.programs[r].len()
    }

    /// A rank's program may run: alive, not mid-recovery, not fenced.
    /// Zombies *do* run — a falsely suspected rank does not know it
    /// was suspected until a survivor rejects one of its frames.
    fn runnable(&self, r: Rank) -> bool {
        !self.kernels[r].is_recovering() && !self.kernels[r].is_fenced()
    }

    fn checkpoint_if_due(&self, r: Rank) {
        let Some(every) = self.workload.checkpoint_every else {
            return;
        };
        let pc = self.pc[r] as u64;
        if pc > 0 && pc.is_multiple_of(every) {
            let mut bytes = Vec::with_capacity(16);
            bytes.extend_from_slice(&pc.to_le_bytes());
            bytes.extend_from_slice(&self.state[r].to_le_bytes());
            self.kernels[r].do_checkpoint(bytes, pc);
        }
    }

    /// Phase 1: run every forced action to a fixpoint. Returns whether
    /// anything at all happened (the escape hatch uses this).
    fn forced_fixpoint(&mut self) -> bool {
        let mut any = false;
        loop {
            let mut progress = false;

            // Surface released envelopes into the kernels.
            for r in 0..self.n {
                while let Ok(env) = self.endpoints[r].try_recv() {
                    self.kernels[r].ingest(env);
                    progress = true;
                }
            }

            // Flush protocol frames (acks, checkpoint advances,
            // rollback/response traffic, membership, fence notices)
            // at channel heads. Application frames stay parked —
            // releasing them is a choice.
            for (src, dst, _) in self.net.held_channels() {
                if src >= self.n || dst >= self.n {
                    continue;
                }
                while let Some(head) = self.net.held_head(src, dst) {
                    if payload_is_app_frame(&head) {
                        break;
                    }
                    self.net.held_deliver(src, dst);
                    progress = true;
                }
            }

            // Run forced program steps: sends always, source-specific
            // receives when deliverable. ANY_SOURCE receives stop the
            // rank — they are the extraction choice point.
            for r in 0..self.n {
                if !self.runnable(r) {
                    continue;
                }
                while self.pc[r] < self.workload.programs[r].len() {
                    match self.workload.programs[r][self.pc[r]] {
                        Op::Send { dst, tag } => {
                            let value = self.workload.payload.value(r, self.pc[r], self.state[r]);
                            self.kernels[r].app_send(
                                dst,
                                tag,
                                Bytes::copy_from_slice(&value.to_le_bytes()),
                                false,
                            );
                            self.pc[r] += 1;
                            self.checkpoint_if_due(r);
                            progress = true;
                        }
                        Op::Recv { src: Some(s), tag } => {
                            match self.kernels[r].try_deliver(RecvSpec::from(s, tag)) {
                                Some(msg) => {
                                    self.state[r] =
                                        self.workload.fold.apply(self.state[r], decode(&msg));
                                    self.delivered += 1;
                                    self.pc[r] += 1;
                                    self.checkpoint_if_due(r);
                                    progress = true;
                                }
                                None => break,
                            }
                        }
                        Op::Recv { src: None, .. } => break,
                    }
                }
            }

            if !progress {
                return any;
            }
            any = true;
        }
    }

    /// Forced retirement of fenced zombies and of falsely suspected
    /// ranks that finished their (now void) program: the rank finally
    /// "notices" it was declared dead and goes through the normal
    /// crash path — kill, respawn above the fence floor, restore,
    /// rollback recovery. Returns whether any rank was retired.
    fn retire_zombies(&mut self) -> bool {
        let mut retired = false;
        for r in 0..self.n {
            if self.zombie[r] && (self.kernels[r].is_fenced() || self.done(r)) {
                self.zombie[r] = false;
                self.crash_respawn(r, false);
                retired = true;
            }
        }
        retired
    }

    /// Kill + respawn `rank` through the real recovery machinery.
    /// In-flight frames toward the victim die with it (the fabric's
    /// crash semantics); frames it already sent stay parked — a crash
    /// cannot recall datagrams, and the survivors' dedup machinery
    /// must absorb whichever copies the schedule later releases.
    fn crash_respawn(&mut self, rank: Rank, wipe: bool) {
        self.net.kill(rank);
        for src in 0..self.n {
            while self.net.held_deliver(src, rank) {}
        }
        if wipe {
            let prefix = CheckpointStore::prefix(rank);
            for key in self.store.storage().keys_with_prefix(&prefix) {
                self.store.storage().delete(&key);
            }
        }
        self.endpoints[rank] = self.net.respawn(rank);
        self.incarnation[rank] += 1;
        let mut k = Self::make_kernel(
            rank,
            self.n,
            self.kind,
            &self.clock,
            &self.net,
            &self.store,
        );
        k.set_incarnation(self.incarnation[rank]);
        let (pc, state) = match k.load_checkpoint() {
            Some(image) => {
                let (step, app) = k.restore(image).expect("explorer images restore");
                let mut s = [0u8; 8];
                s.copy_from_slice(&app[8..16]);
                (step as usize, u64::from_le_bytes(s))
            }
            None => (0, 0),
        };
        self.pc[rank] = pc;
        self.state[rank] = state;
        k.begin_recovery();
        self.kernels[rank] = k;
    }

    /// Synthesize the certified membership view a real arbiter would
    /// publish for a verdict on `rank` and apply it to every survivor
    /// (and, on a true verdict, to the replacement incarnation).
    fn force_verdict(&mut self, rank: Rank, real: bool) {
        self.view_epoch += 1;
        self.floors[rank] = self.incarnation[rank] + 1;
        let view = MembershipView {
            epoch: self.view_epoch,
            floor: self.floors.clone(),
        };
        if real {
            for s in 0..self.n {
                if s != rank {
                    self.kernels[s].apply_membership(view.clone());
                }
            }
            self.crash_respawn(rank, false);
            self.kernels[rank].apply_membership(view);
        } else {
            for s in 0..self.n {
                if s != rank {
                    self.kernels[s].apply_membership(view.clone());
                }
            }
            self.zombie[rank] = true;
        }
    }

    fn execute(&mut self, alt: Alt) {
        match alt {
            Alt::Deliver { rank, src, tag } => {
                if let Some(msg) = self.kernels[rank].try_deliver(RecvSpec::from(src, tag)) {
                    self.state[rank] = self.workload.fold.apply(self.state[rank], decode(&msg));
                    self.delivered += 1;
                    self.pc[rank] += 1;
                    self.checkpoint_if_due(rank);
                }
            }
            Alt::Release { src, dst } => {
                self.net.held_deliver(src, dst);
            }
            Alt::Crash { rank } => {
                self.faults_injected += 1;
                self.crash_respawn(rank, false);
            }
            Alt::CrashWipe { rank } => {
                self.faults_injected += 1;
                self.crash_respawn(rank, true);
            }
            Alt::Suspect { rank, real } => {
                self.faults_injected += 1;
                self.force_verdict(rank, real);
            }
        }
    }

    /// Phase 2: enumerate the legal alternatives in canonical order —
    /// extractions by rank (sources in the queue's arrival order, as
    /// the runtime itself would prefer them), then releases in the
    /// fabric's sorted channel order, then fault alternatives (crashes
    /// by rank, wipes by rank, true then false verdicts by rank). The
    /// canonical order keeps branch indices stable across replays and
    /// guarantees index 0 is never a fault while a regular action
    /// exists.
    fn enumerate_alts(&self, budget: &FaultBudget, step_idx: usize) -> Vec<Alt> {
        let mut alts: Vec<Alt> = Vec::new();
        for r in 0..self.n {
            if !self.runnable(r) {
                continue;
            }
            if let Some(Op::Recv { src: None, tag }) =
                self.workload.programs[r].get(self.pc[r]).copied()
            {
                for s in self.kernels[r].deliverable_sources(RecvSpec::any_source(tag)) {
                    alts.push(Alt::Deliver { rank: r, src: s, tag });
                }
            }
        }
        for (src, dst, len) in self.net.held_channels() {
            if src >= self.n || dst >= self.n || len == 0 {
                continue;
            }
            if let Some(head) = self.net.held_head(src, dst) {
                if payload_is_app_frame(&head) {
                    alts.push(Alt::Release { src, dst });
                }
            }
        }
        // Faults are offered only where a regular action exists
        // ("injectable before any enabled delivery") and only while
        // the system is quiescent fault-wise: no recovery in flight
        // and no zombie walking. Targets must be alive, unfenced, and
        // still have program left — crashing a finished rank only
        // re-runs an already-counted result.
        let in_window = budget.window == 0 || step_idx < budget.window;
        if !alts.is_empty() && budget.total() > 0 && in_window {
            let quiescent = (0..self.n)
                .all(|r| !self.kernels[r].is_recovering() && !self.zombie[r]);
            if quiescent {
                let eligible: Vec<Rank> = (0..self.n)
                    .filter(|&r| {
                        self.net.is_alive(r) && !self.kernels[r].is_fenced() && !self.done(r)
                    })
                    .collect();
                if budget.crashes > 0 {
                    alts.extend(eligible.iter().map(|&rank| Alt::Crash { rank }));
                }
                if budget.wipes > 0 {
                    alts.extend(eligible.iter().map(|&rank| Alt::CrashWipe { rank }));
                }
                if budget.suspects > 0 {
                    alts.extend(eligible.iter().map(|&rank| Alt::Suspect { rank, real: true }));
                    alts.extend(
                        eligible.iter().map(|&rank| Alt::Suspect { rank, real: false }),
                    );
                }
            }
        }
        alts
    }

    fn finished(&self) -> bool {
        (0..self.n).all(|r| {
            self.done(r)
                && !self.kernels[r].is_recovering()
                && !self.kernels[r].is_fenced()
                && !self.zombie[r]
        })
    }

    fn unfinished(&self) -> Vec<Rank> {
        (0..self.n)
            .filter(|&r| {
                !self.done(r)
                    || self.kernels[r].is_recovering()
                    || self.kernels[r].is_fenced()
                    || self.zombie[r]
            })
            .collect()
    }

    fn outcome(&self, steps: Vec<Step>, verdict: Verdict) -> RunOutcome {
        RunOutcome {
            digests: self.state.clone(),
            interval_vectors: self.kernels.iter().map(|k| k.interval_vector()).collect(),
            steps,
            delivered: self.delivered,
            faults_injected: self.faults_injected,
            verdict,
        }
    }
}

/// The full-control entry point: explicit protocol *and* fault budget.
/// Fault alternatives appear at choice points while their budget
/// lasts; with an all-zero budget this is exactly fault-free
/// exploration.
pub fn run_schedule_cfg(
    workload: &Workload,
    decider: &mut dyn Decider,
    cfg: &RunnerConfig,
) -> RunOutcome {
    let mut world = World::new(workload, cfg.protocol);
    let mut budget = cfg.faults;
    let mut steps: Vec<Step> = Vec::new();
    let mut escapes = 0usize;

    loop {
        world.forced_fixpoint();
        if world.retire_zombies() {
            continue;
        }
        if world.kernels.iter().any(|k| k.is_desynced()) {
            return world.outcome(steps, Verdict::Desynced);
        }
        if world.finished() {
            return world.outcome(steps, Verdict::Completed);
        }

        let alts = world.enumerate_alts(&budget, steps.len());
        if alts.is_empty() {
            // A recovery can be waiting on a retry-clock rebroadcast
            // (its first ROLLBACK went to a peer that was dead at the
            // time). Let bounded virtual time pass and tick every
            // kernel; if that changes nothing, the schedule is wedged.
            if escapes < MAX_TICK_ESCAPES
                && world.kernels.iter().any(|k| k.is_recovering())
            {
                escapes += 1;
                let interval = world.kernels[0].cfg().retry_interval;
                world.clock.advance(interval + Duration::from_millis(1));
                for r in 0..world.n {
                    if world.net.is_alive(r) {
                        world.kernels[r].tick();
                    }
                }
                continue;
            }
            let unfinished = world.unfinished();
            return world.outcome(steps, Verdict::Wedged { unfinished });
        }

        let Some(idx) = decider.choose(&alts) else {
            return world.outcome(steps, Verdict::Aborted);
        };
        let idx = idx.min(alts.len() - 1);
        let alt = alts[idx];
        match alt {
            Alt::Crash { .. } => budget.crashes -= 1,
            Alt::CrashWipe { .. } => budget.wipes -= 1,
            Alt::Suspect { .. } => budget.suspects -= 1,
            _ => {}
        }
        steps.push(Step {
            alts,
            picked: idx,
        });
        world.execute(alt);

        // Nudge virtual time so successive events carry distinct
        // timestamps; far below any transport timeout, and the runner
        // only ticks inside the bounded escape hatch above, so no
        // retransmission can fire spontaneously.
        world.clock.advance(Duration::from_micros(1));
    }
}

fn decode(msg: &AppMsg) -> u64 {
    let mut b = [0u8; 8];
    let len = msg.data.len().min(8);
    b[..len].copy_from_slice(&msg.data[..len]);
    u64::from_le_bytes(b)
}
