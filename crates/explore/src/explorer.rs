//! Schedule enumeration — brute-force, sampled, and DPOR-reduced —
//! plus counterexample shrinking.
//!
//! Brute-force exhaustive mode is the classic stateless-model-checking
//! loop: run under a trace prefix (suffix defaults to branch 0),
//! record the choice points actually hit, then backtrack — find the
//! deepest choice with an untaken sibling, increment it, truncate,
//! re-run. Every leaf of the decision tree is visited exactly once, in
//! depth-first order, without ever snapshotting kernel state.
//!
//! [`explore_dpor`] prunes that tree with **sleep sets** over an
//! independence relation on explorer actions (see `DESIGN.md` §12):
//! two actions commute unless they touch the same rank's delivery
//! state, race on the same destination's arrival order, or involve a
//! fault (faults are dependent with everything). After a branch `b` is
//! fully explored at a node, `b` is put to sleep in the subtrees of
//! its siblings — filtered forward across independent steps — and a
//! run whose every enabled action is asleep is abandoned
//! ([`Verdict::Aborted`]): its continuations are all equivalent to
//! schedules already explored. Sleep sets never prune the *last*
//! execution of a Mazurkiewicz trace, so every reachable terminal
//! state (digest vector, wedge, desync) is still visited at least
//! once; the reduction only removes commuting duplicates.
//!
//! Parallel exploration partitions the **root frontier**: worker `w`
//! of `W` owns root branches `w, w+W, …`, each explored as an
//! independent sleep-set DFS in which all lower-numbered root branches
//! are pre-slept (they are owned — and fully explored — by definition
//! of the partition, so the reduction matches the serial schedule
//! order exactly). Workers share only an execution budget and a stop
//! flag; statistics and digest censuses merge after joining.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::decider::{Decider, SeededDecider, TraceDecider};
use crate::runner::{run_schedule_cfg, Alt, RunOutcome, RunnerConfig, Verdict};
use crate::trace::Trace;
use crate::workload::{splitmix64, Workload};
use lclog_core::ProtocolKind;

pub use crate::runner::FaultBudget;

/// Exploration limits and seeds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Stop after this many schedule executions even if the tree is
    /// larger (DPOR counts sleep-blocked abandonments against this
    /// budget too — they cost a replay each).
    pub max_schedules: usize,
    /// Number of random schedules for [`explore_sampled`].
    pub samples: usize,
    /// Base seed for sampling (each sample derives its own stream).
    pub seed: u64,
    /// Tracking protocol under exploration. Outcomes compare by
    /// canonicalized dense `depend_interval` vectors, so dense TDI and
    /// sparse TDI-S explorations of the same workload cross-check.
    pub protocol: ProtocolKind,
    /// Fault choice points each schedule may spend (all-zero =
    /// fault-free exploration).
    pub faults: FaultBudget,
    /// Worker threads for [`explore_dpor`]'s partitioned root
    /// frontier (clamped to the root arity; 0 and 1 both mean
    /// serial).
    pub workers: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 10_000,
            samples: 256,
            seed: 0x5EED,
            protocol: ProtocolKind::Tdi,
            faults: FaultBudget::none(),
            workers: 1,
        }
    }
}

impl ExploreConfig {
    fn runner(&self) -> RunnerConfig {
        RunnerConfig {
            protocol: self.protocol,
            faults: self.faults,
        }
    }
}

/// A schedule whose outcome disagreed with the baseline.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The full trace that first exposed the disagreement.
    pub trace: Trace,
    /// A greedily minimized trace that still reproduces it.
    pub shrunk: Trace,
    /// The divergent run's per-rank digests.
    pub digests: Vec<u64>,
    /// The divergent run wedged or desynced instead of completing.
    pub wedged: bool,
}

/// What an exploration saw.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct schedules executed to a verdict (including the
    /// baseline; excluding sleep-blocked abandonments).
    pub schedules: usize,
    /// Runs abandoned by the DPOR sleep discipline (always 0 for the
    /// brute-force and sampled modes).
    pub sleep_blocked: usize,
    /// Schedules that ended [`Verdict::Wedged`].
    pub wedged: usize,
    /// The whole decision tree was enumerated (exhaustive modes only —
    /// sampling never claims exhaustion).
    pub exhausted: bool,
    /// First disagreement found, if any. `None` means every explored
    /// schedule agreed with the baseline on digests and
    /// `depend_interval` vectors.
    pub divergence: Option<Divergence>,
    /// The baseline (all-defaults, fault-free) per-rank digests.
    pub baseline_digests: Vec<u64>,
    /// Every distinct digest vector observed across completed
    /// schedules — the coverage census. A pruning bug that silently
    /// loses coverage shows up as this set shrinking relative to
    /// brute force.
    pub digests_seen: BTreeSet<Vec<u64>>,
    /// Largest branching factor seen at any choice point.
    pub max_arity: usize,
}

impl ExploreReport {
    fn new(baseline: &RunOutcome) -> Self {
        ExploreReport {
            schedules: 1,
            sleep_blocked: 0,
            wedged: usize::from(matches!(baseline.verdict, Verdict::Wedged { .. })),
            exhausted: false,
            divergence: None,
            baseline_digests: baseline.digests.clone(),
            digests_seen: BTreeSet::from([baseline.digests.clone()]),
            max_arity: baseline.max_arity(),
        }
    }

    fn absorb(&mut self, run: &RunOutcome) {
        self.schedules += 1;
        self.max_arity = self.max_arity.max(run.max_arity());
        if matches!(run.verdict, Verdict::Wedged { .. }) {
            self.wedged += 1;
        }
        self.digests_seen.insert(run.digests.clone());
    }
}

fn run_with(workload: &Workload, trace: Trace, cfg: &RunnerConfig) -> RunOutcome {
    let mut d = TraceDecider::new(trace);
    run_schedule_cfg(workload, &mut d, cfg)
}

/// The lexicographically next DFS prefix after `run`, or `None` when
/// every choice point in `run` already took its last branch.
fn next_prefix(run: &RunOutcome) -> Option<Trace> {
    let choices: Vec<(usize, usize)> = run
        .steps
        .iter()
        .filter(|s| s.alts.len() >= 2)
        .map(|s| (s.picked, s.alts.len()))
        .collect();
    for i in (0..choices.len()).rev() {
        if choices[i].0 + 1 < choices[i].1 {
            let mut t: Vec<usize> = choices[..i].iter().map(|c| c.0).collect();
            t.push(choices[i].0 + 1);
            return Some(t.into());
        }
    }
    None
}

fn make_divergence(
    workload: &Workload,
    cfg: &RunnerConfig,
    run: &RunOutcome,
    baseline: &RunOutcome,
) -> Divergence {
    let trace = run.trace();
    let shrunk = shrink(workload, cfg, &trace, baseline);
    Divergence {
        trace,
        shrunk,
        digests: run.digests.clone(),
        wedged: run.verdict != Verdict::Completed,
    }
}

/// Enumerate the full decision tree of `workload` (up to
/// `cfg.max_schedules` leaves) without partial-order reduction,
/// comparing every schedule's digests and `depend_interval` vectors
/// against the all-defaults baseline. Stops at the first divergence,
/// which is shrunk before reporting.
pub fn explore_exhaustive(workload: &Workload, cfg: &ExploreConfig) -> ExploreReport {
    let rcfg = cfg.runner();
    let baseline = run_with(workload, Trace::new(), &rcfg);
    let mut report = ExploreReport::new(&baseline);
    if baseline.verdict != Verdict::Completed {
        report.divergence = Some(make_divergence(workload, &rcfg, &baseline, &baseline));
        return report;
    }
    let mut last = baseline.clone();
    loop {
        let Some(prefix) = next_prefix(&last) else {
            report.exhausted = true;
            return report;
        };
        if report.schedules >= cfg.max_schedules {
            return report;
        }
        let run = run_with(workload, prefix, &rcfg);
        report.absorb(&run);
        if !run.agrees_with(&baseline) {
            report.divergence = Some(make_divergence(workload, &rcfg, &run, &baseline));
            return report;
        }
        last = run;
    }
}

/// Walk `cfg.samples` seeded random schedules of `workload`, comparing
/// each against the all-defaults baseline. For decision trees too
/// large to enumerate; never sets `exhausted`.
pub fn explore_sampled(workload: &Workload, cfg: &ExploreConfig) -> ExploreReport {
    let rcfg = cfg.runner();
    let baseline = run_with(workload, Trace::new(), &rcfg);
    let mut report = ExploreReport::new(&baseline);
    if baseline.verdict != Verdict::Completed {
        report.divergence = Some(make_divergence(workload, &rcfg, &baseline, &baseline));
        return report;
    }
    for i in 0..cfg.samples {
        if report.schedules >= cfg.max_schedules {
            return report;
        }
        let mut d = SeededDecider::new(splitmix64(cfg.seed ^ (i as u64)));
        let run = run_schedule_cfg(workload, &mut d, &rcfg);
        report.absorb(&run);
        if !run.agrees_with(&baseline) {
            report.divergence = Some(make_divergence(workload, &rcfg, &run, &baseline));
            return report;
        }
    }
    report
}

// -------------------------------------------------------------------
// DPOR: sleep-set depth-first search over the schedule tree
// -------------------------------------------------------------------

/// Two actions are dependent when executing them in either order can
/// yield different states or different enabled sets. Conservative
/// over-approximation; see `DESIGN.md` §12 for the commutation
/// argument behind each arm.
fn dependent(a: &Alt, b: &Alt) -> bool {
    match (a, b) {
        // Extractions at different ranks touch disjoint kernels; new
        // sends they trigger only park frames on disjoint channels.
        (Alt::Deliver { rank: r1, .. }, Alt::Deliver { rank: r2, .. }) => r1 == r2,
        // Releases into different destinations touch disjoint arrival
        // queues (their ack traffic lands on per-peer shards, which
        // commute); into the same destination they race on arrival
        // order, which ANY_SOURCE extraction can observe.
        (Alt::Release { dst: d1, .. }, Alt::Release { dst: d2, .. }) => d1 == d2,
        // A release into rank r races with r's own extraction (it can
        // change which sources are eligible); into any other rank it
        // commutes with the extraction.
        (Alt::Deliver { rank, .. }, Alt::Release { dst, .. })
        | (Alt::Release { dst, .. }, Alt::Deliver { rank, .. }) => rank == dst,
        // Faults are dependent with everything: a crash changes every
        // rank's world (channels drained, membership, recovery
        // traffic), so no commutation is claimed.
        _ => true,
    }
}

/// One node on the DFS stack: the alternatives that were legal there,
/// which one the current path takes, the sleep set the node was first
/// entered with, and the branches already fully explored.
struct Frame {
    alts: Vec<Alt>,
    picked: usize,
    sleep_entry: BTreeSet<Alt>,
    done: BTreeSet<Alt>,
}

impl Frame {
    fn action(&self) -> Alt {
        self.alts[self.picked]
    }

    /// The sleep set for the subtree under the currently picked
    /// branch: everything asleep on entry plus every sibling already
    /// explored, filtered down to what commutes with the pick.
    fn child_sleep(&self) -> BTreeSet<Alt> {
        let b = self.action();
        self.sleep_entry
            .iter()
            .chain(self.done.iter())
            .filter(|x| !dependent(x, &b))
            .cloned()
            .collect()
    }
}

/// Replays a planned pick at every prefix step, then switches to
/// "first non-slept alternative" with the sleep set evolving by the
/// independence rule — abandoning the run if every alternative at
/// some step is asleep.
struct DporDecider {
    plan: Vec<usize>,
    pos: usize,
    sleep: BTreeSet<Alt>,
}

impl Decider for DporDecider {
    fn choose(&mut self, alts: &[Alt]) -> Option<usize> {
        let pick = if self.pos < self.plan.len() {
            self.plan[self.pos]
        } else {
            alts.iter().position(|a| !self.sleep.contains(a))?
        };
        if self.pos >= self.plan.len() {
            let b = alts[pick];
            self.sleep.retain(|x| !dependent(x, &b));
        }
        self.pos += 1;
        Some(pick)
    }
}

/// Per-worker accumulation, merged after joining.
struct SubResult {
    schedules: usize,
    sleep_blocked: usize,
    wedged: usize,
    max_arity: usize,
    digests_seen: BTreeSet<Vec<u64>>,
    /// `(root_branch, diverging run)` — shrunk later on the main
    /// thread, and only for the winning (lowest-root-branch) worker.
    divergence: Option<(usize, RunOutcome)>,
    exhausted: bool,
}

/// Sleep-set DFS over the subtree rooted at `root_alts[branch]`, with
/// all lower-numbered root branches pre-slept (they are fully explored
/// by the workers that own them).
#[allow(clippy::too_many_arguments)]
fn explore_subtree(
    workload: &Workload,
    rcfg: &RunnerConfig,
    baseline: &RunOutcome,
    root_alts: &[Alt],
    branch: usize,
    executions: &AtomicUsize,
    max_executions: usize,
    stop: &AtomicBool,
    out: &mut SubResult,
) {
    let mut frames = vec![Frame {
        alts: root_alts.to_vec(),
        picked: branch,
        sleep_entry: BTreeSet::new(),
        done: root_alts[..branch].iter().cloned().collect(),
    }];

    loop {
        if stop.load(Ordering::Relaxed) {
            out.exhausted = false;
            return;
        }
        if executions.fetch_add(1, Ordering::Relaxed) >= max_executions {
            out.exhausted = false;
            return;
        }

        let plan: Vec<usize> = frames.iter().map(|f| f.picked).collect();
        let frontier = frames.last().expect("nonempty stack").child_sleep();
        let mut decider = DporDecider {
            plan,
            pos: 0,
            sleep: frontier.clone(),
        };
        let run = run_schedule_cfg(workload, &mut decider, rcfg);
        out.max_arity = out.max_arity.max(run.max_arity());

        if run.verdict == Verdict::Aborted {
            out.sleep_blocked += 1;
        } else {
            out.schedules += 1;
            if matches!(run.verdict, Verdict::Wedged { .. }) {
                out.wedged += 1;
            }
            out.digests_seen.insert(run.digests.clone());
            if out.divergence.is_none() && !run.agrees_with(baseline) {
                out.divergence = Some((branch, run.clone()));
                stop.store(true, Ordering::Relaxed);
                out.exhausted = false;
                return;
            }
        }

        // Extend the stack with the steps the run executed beyond the
        // planned prefix, threading the sleep set forward.
        let prefix = frames.len();
        let mut sleep = frontier;
        for step in &run.steps[prefix.min(run.steps.len())..] {
            let next = {
                let b = step.alts[step.picked];
                sleep
                    .iter()
                    .filter(|x| !dependent(x, &b))
                    .cloned()
                    .collect()
            };
            frames.push(Frame {
                alts: step.alts.clone(),
                picked: step.picked,
                sleep_entry: sleep,
                done: BTreeSet::new(),
            });
            sleep = next;
        }

        // Backtrack: mark the current branch done at the deepest
        // frame, advance to its next unexplored non-slept sibling, or
        // pop. The root frame never advances — its siblings belong to
        // other partitions.
        loop {
            let depth = frames.len();
            let Some(top) = frames.last_mut() else {
                out.exhausted = true;
                return;
            };
            let cur = top.action();
            top.done.insert(cur);
            if depth == 1 {
                out.exhausted = true;
                return;
            }
            let next = top
                .alts
                .iter()
                .position(|a| !top.done.contains(a) && !top.sleep_entry.contains(a));
            match next {
                Some(i) => {
                    top.picked = i;
                    break;
                }
                None => {
                    frames.pop();
                }
            }
        }
    }
}

/// DPOR exploration: the full schedule tree of `workload` — fault
/// choice points included, per `cfg.faults` — reduced by sleep sets
/// and optionally partitioned across `cfg.workers` threads. Every
/// completed schedule is compared against the all-defaults fault-free
/// baseline; exploration stops at the first divergence (shrunk before
/// reporting). With reduction, `schedules` is typically a small
/// fraction of what [`explore_exhaustive`] visits for the same
/// configuration, while `digests_seen` covers the same set.
pub fn explore_dpor(workload: &Workload, cfg: &ExploreConfig) -> ExploreReport {
    let rcfg = cfg.runner();
    let baseline = run_with(workload, Trace::new(), &rcfg);
    let mut report = ExploreReport::new(&baseline);
    if baseline.verdict != Verdict::Completed {
        report.divergence = Some(make_divergence(workload, &rcfg, &baseline, &baseline));
        return report;
    }
    let Some(first) = baseline.steps.first() else {
        // No steps at all — the baseline is the only schedule.
        report.exhausted = true;
        return report;
    };
    let root_alts = first.alts.clone();

    // The baseline above is re-executed as worker 0's first run (root
    // branch 0, empty sleep), so it is not counted here; worker
    // results alone sum to the schedule count.
    report.schedules = 0;
    report.wedged = 0;

    let workers = cfg.workers.clamp(1, root_alts.len());
    let executions = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let fresh = || SubResult {
        schedules: 0,
        sleep_blocked: 0,
        wedged: 0,
        max_arity: report.max_arity,
        digests_seen: BTreeSet::new(),
        divergence: None,
        exhausted: true,
    };

    let results: Vec<SubResult> = if workers == 1 {
        let mut sub = fresh();
        for branch in 0..root_alts.len() {
            if sub.divergence.is_some() || !sub.exhausted {
                break;
            }
            explore_subtree(
                workload,
                &rcfg,
                &baseline,
                &root_alts,
                branch,
                &executions,
                cfg.max_schedules,
                &stop,
                &mut sub,
            );
        }
        vec![sub]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (root_alts, baseline, rcfg) = (&root_alts, &baseline, &rcfg);
                    let (executions, stop) = (&executions, &stop);
                    let mut sub = fresh();
                    scope.spawn(move || {
                        let mut branch = w;
                        while branch < root_alts.len() {
                            if sub.divergence.is_some() || !sub.exhausted {
                                break;
                            }
                            explore_subtree(
                                workload,
                                rcfg,
                                baseline,
                                root_alts,
                                branch,
                                executions,
                                cfg.max_schedules,
                                stop,
                                &mut sub,
                            );
                            branch += workers;
                        }
                        sub
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("explore worker panicked"))
                .collect()
        })
    };

    let mut winning: Option<(usize, RunOutcome)> = None;
    let mut all_exhausted = true;
    for sub in results {
        report.schedules += sub.schedules;
        report.sleep_blocked += sub.sleep_blocked;
        report.wedged += sub.wedged;
        report.max_arity = report.max_arity.max(sub.max_arity);
        report.digests_seen.extend(sub.digests_seen);
        all_exhausted &= sub.exhausted;
        if let Some((branch, run)) = sub.divergence {
            if winning.as_ref().map(|(b, _)| branch < *b).unwrap_or(true) {
                winning = Some((branch, run));
            }
        }
    }
    report.digests_seen.insert(baseline.digests.clone());
    // Exhaustion requires *every* partition to finish its subtrees.
    report.exhausted = all_exhausted && winning.is_none();
    if let Some((_, run)) = winning {
        report.divergence = Some(make_divergence(workload, &rcfg, &run, &baseline));
    }
    report
}

/// Greedily minimize `trace` while it still disagrees with `baseline`:
/// chop decisions off the tail (positions past the end of a trace
/// replay as branch 0), then zero each remaining nonzero decision,
/// then drop trailing zeros (replay-identical). The result replays to
/// the same class of failure with, typically, a fraction of the
/// decisions.
pub fn shrink(
    workload: &Workload,
    cfg: &RunnerConfig,
    trace: &Trace,
    baseline: &RunOutcome,
) -> Trace {
    let fails = |t: Trace| !run_with(workload, t, cfg).agrees_with(baseline);
    let mut cur: Vec<usize> = trace.as_slice().to_vec();

    while !cur.is_empty() {
        let cand: Trace = cur[..cur.len() - 1].to_vec().into();
        if fails(cand) {
            cur.pop();
        } else {
            break;
        }
    }

    for i in 0..cur.len() {
        if cur[i] != 0 {
            let mut cand = cur.clone();
            cand[i] = 0;
            if fails(cand.clone().into()) {
                cur = cand;
            }
        }
    }

    while cur.last() == Some(&0) {
        cur.pop();
    }
    cur.into()
}
