//! Schedule enumeration, sampling, and counterexample shrinking.
//!
//! Exhaustive mode is the classic stateless-model-checking loop: run
//! under a trace prefix (suffix defaults to branch 0), record the
//! choice points actually hit, then backtrack — find the deepest
//! choice with an untaken sibling, increment it, truncate, re-run.
//! Every leaf of the decision tree is visited exactly once, in
//! depth-first order, without ever snapshotting kernel state.

use crate::decider::{SeededDecider, TraceDecider};
use crate::runner::{run_schedule_with, RunOutcome};
use crate::trace::Trace;
use crate::workload::{splitmix64, Workload};
use lclog_core::ProtocolKind;

/// Exploration limits and seeds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Stop after this many schedules even if the tree is larger.
    pub max_schedules: usize,
    /// Number of random schedules for [`explore_sampled`].
    pub samples: usize,
    /// Base seed for sampling (each sample derives its own stream).
    pub seed: u64,
    /// Tracking protocol under exploration. Outcomes compare by
    /// canonicalized dense `depend_interval` vectors, so dense TDI and
    /// sparse TDI-S explorations of the same workload cross-check.
    pub protocol: ProtocolKind,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 10_000,
            samples: 256,
            seed: 0x5EED,
            protocol: ProtocolKind::Tdi,
        }
    }
}

/// A schedule whose outcome disagreed with the baseline.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The full trace that first exposed the disagreement.
    pub trace: Trace,
    /// A greedily minimized trace that still reproduces it.
    pub shrunk: Trace,
    /// The divergent run's per-rank digests.
    pub digests: Vec<u64>,
    /// The divergent run deadlocked or desynced instead of completing.
    pub deadlock: bool,
}

/// What an exploration saw.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct schedules executed (including the baseline).
    pub schedules: usize,
    /// The whole decision tree was enumerated (exhaustive mode only —
    /// sampling never claims exhaustion).
    pub exhausted: bool,
    /// First disagreement found, if any. `None` means every explored
    /// schedule agreed with the baseline on digests and
    /// `depend_interval` vectors.
    pub divergence: Option<Divergence>,
    /// The baseline (all-defaults schedule) per-rank digests.
    pub baseline_digests: Vec<u64>,
    /// Largest branching factor seen at any choice point.
    pub max_arity: usize,
}

fn run_with(workload: &Workload, trace: Trace, kind: ProtocolKind) -> RunOutcome {
    let mut d = TraceDecider::new(trace);
    run_schedule_with(workload, &mut d, kind)
}

fn max_arity(run: &RunOutcome) -> usize {
    run.choices.iter().map(|c| c.arity).max().unwrap_or(1)
}

/// The lexicographically next DFS prefix after `run`, or `None` when
/// every choice point in `run` already took its last branch.
fn next_prefix(run: &RunOutcome) -> Option<Trace> {
    let choices = &run.choices;
    for i in (0..choices.len()).rev() {
        if choices[i].picked + 1 < choices[i].arity {
            let mut t: Vec<usize> = choices[..i].iter().map(|c| c.picked).collect();
            t.push(choices[i].picked + 1);
            return Some(t.into());
        }
    }
    None
}

fn make_divergence(
    workload: &Workload,
    kind: ProtocolKind,
    run: &RunOutcome,
    baseline: &RunOutcome,
) -> Divergence {
    let trace = run.trace();
    let shrunk = shrink(workload, kind, &trace, baseline);
    Divergence {
        trace,
        shrunk,
        digests: run.digests.clone(),
        deadlock: run.deadlock || run.desynced,
    }
}

/// Enumerate the full decision tree of `workload` (up to
/// `cfg.max_schedules` leaves), comparing every schedule's digests and
/// `depend_interval` vectors against the all-defaults baseline. Stops
/// at the first divergence, which is shrunk before reporting.
pub fn explore_exhaustive(workload: &Workload, cfg: &ExploreConfig) -> ExploreReport {
    let baseline = run_with(workload, Trace::new(), cfg.protocol);
    let mut report = ExploreReport {
        schedules: 1,
        exhausted: false,
        divergence: None,
        baseline_digests: baseline.digests.clone(),
        max_arity: max_arity(&baseline),
    };
    if baseline.deadlock || baseline.desynced {
        report.divergence = Some(make_divergence(workload, cfg.protocol, &baseline, &baseline));
        return report;
    }
    let mut last = baseline.clone();
    loop {
        let Some(prefix) = next_prefix(&last) else {
            report.exhausted = true;
            return report;
        };
        if report.schedules >= cfg.max_schedules {
            return report;
        }
        let run = run_with(workload, prefix, cfg.protocol);
        report.schedules += 1;
        report.max_arity = report.max_arity.max(max_arity(&run));
        if !run.agrees_with(&baseline) {
            report.divergence = Some(make_divergence(workload, cfg.protocol, &run, &baseline));
            return report;
        }
        last = run;
    }
}

/// Walk `cfg.samples` seeded random schedules of `workload`, comparing
/// each against the all-defaults baseline. For decision trees too
/// large to enumerate; never sets `exhausted`.
pub fn explore_sampled(workload: &Workload, cfg: &ExploreConfig) -> ExploreReport {
    let baseline = run_with(workload, Trace::new(), cfg.protocol);
    let mut report = ExploreReport {
        schedules: 1,
        exhausted: false,
        divergence: None,
        baseline_digests: baseline.digests.clone(),
        max_arity: max_arity(&baseline),
    };
    if baseline.deadlock || baseline.desynced {
        report.divergence = Some(make_divergence(workload, cfg.protocol, &baseline, &baseline));
        return report;
    }
    for i in 0..cfg.samples {
        if report.schedules >= cfg.max_schedules {
            return report;
        }
        let mut d = SeededDecider::new(splitmix64(cfg.seed ^ (i as u64)));
        let run = run_schedule_with(workload, &mut d, cfg.protocol);
        report.schedules += 1;
        report.max_arity = report.max_arity.max(max_arity(&run));
        if !run.agrees_with(&baseline) {
            report.divergence = Some(make_divergence(workload, cfg.protocol, &run, &baseline));
            return report;
        }
    }
    report
}

/// Greedily minimize `trace` while it still disagrees with `baseline`:
/// chop decisions off the tail (positions past the end of a trace
/// replay as branch 0), then zero each remaining nonzero decision, then
/// drop trailing zeros (replay-identical). The result replays to the
/// same class of failure with, typically, a fraction of the decisions.
pub fn shrink(
    workload: &Workload,
    kind: ProtocolKind,
    trace: &Trace,
    baseline: &RunOutcome,
) -> Trace {
    let fails = |t: Trace| !run_with(workload, t, kind).agrees_with(baseline);
    let mut cur: Vec<usize> = trace.as_slice().to_vec();

    while !cur.is_empty() {
        let cand: Trace = cur[..cur.len() - 1].to_vec().into();
        if fails(cand) {
            cur.pop();
        } else {
            break;
        }
    }

    for i in 0..cur.len() {
        if cur[i] != 0 {
            let mut cand = cur.clone();
            cand[i] = 0;
            if fails(cand.clone().into()) {
                cur = cand;
            }
        }
    }

    while cur.last() == Some(&0) {
        cur.pop();
    }
    cur.into()
}
