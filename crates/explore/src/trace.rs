//! Decision traces: the serialized identity of a schedule.

use std::fmt;

/// The sequence of branch indices taken at each choice point of a run.
///
/// A trace plus a [`crate::Workload`] fully determines an execution:
/// replaying with [`crate::TraceDecider`] reproduces the schedule
/// bit-for-bit. Positions past the end of the trace default to branch
/// `0`, so a prefix is itself a valid (partially constrained) trace —
/// this is what makes DFS-by-prefix and greedy shrinking work.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Trace(Vec<usize>);

impl Trace {
    /// The empty trace (every choice defaults to branch 0).
    pub fn new() -> Self {
        Trace(Vec::new())
    }

    /// The recorded branch indices.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Number of recorded choices.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no choices are recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Append a branch index.
    pub fn push(&mut self, picked: usize) {
        self.0.push(picked);
    }

    /// Parse the [`fmt::Display`] form back into a trace
    /// (dot-separated branch indices, e.g. `"3.1.0.2"`).
    pub fn parse(s: &str) -> Option<Self> {
        if s.is_empty() {
            return Some(Trace::new());
        }
        s.split('.')
            .map(|part| part.parse::<usize>().ok())
            .collect::<Option<Vec<_>>>()
            .map(Trace)
    }
}

impl From<Vec<usize>> for Trace {
    fn from(v: Vec<usize>) -> Self {
        Trace(v)
    }
}

impl FromIterator<usize> for Trace {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Trace(iter.into_iter().collect())
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parse() {
        let t: Trace = vec![3, 1, 0, 2].into();
        assert_eq!(t.to_string(), "3.1.0.2");
        assert_eq!(Trace::parse("3.1.0.2"), Some(t));
        assert_eq!(Trace::parse(""), Some(Trace::new()));
        assert_eq!(Trace::parse("1.x.2"), None);
    }
}
