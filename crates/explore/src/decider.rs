//! Choice-point strategies.
//!
//! The runner consults a [`Decider`] whenever more than one legal next
//! action exists. Everything else about a run is deterministic, so the
//! decider *is* the schedule.

use crate::trace::Trace;

/// Supplies the branch taken at each choice point.
///
/// `choose(arity)` is called once per choice point with `arity >= 2`
/// alternatives and must return an index in `0..arity`; the runner
/// clamps out-of-range answers rather than panicking so that traces
/// recorded under one alternative set stay replayable after the set
/// shrinks.
pub trait Decider {
    /// Pick one of `arity` alternatives.
    fn choose(&mut self, arity: usize) -> usize;
}

/// Always picks branch 0 — the runtime's own default behavior
/// (earliest arrival, first eligible sender).
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstDecider;

impl Decider for FirstDecider {
    fn choose(&mut self, _arity: usize) -> usize {
        0
    }
}

/// Replays a recorded [`Trace`]; choice points past the end of the
/// trace take branch 0. This is both the replay mechanism and the DFS
/// prefix-execution mechanism.
#[derive(Debug, Clone)]
pub struct TraceDecider {
    trace: Trace,
    pos: usize,
}

impl TraceDecider {
    /// Replay `trace` from the beginning.
    pub fn new(trace: Trace) -> Self {
        TraceDecider { trace, pos: 0 }
    }
}

impl Decider for TraceDecider {
    fn choose(&mut self, arity: usize) -> usize {
        let picked = self.trace.as_slice().get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        picked.min(arity.saturating_sub(1))
    }
}

/// Seeded pseudo-random schedule sampling (xorshift64*) for trees too
/// large to enumerate. The same seed always walks the same schedule.
#[derive(Debug, Clone)]
pub struct SeededDecider {
    state: u64,
}

impl SeededDecider {
    /// A decider with the given seed (zero is remapped — xorshift has
    /// an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        SeededDecider {
            state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed },
        }
    }
}

impl Decider for SeededDecider {
    fn choose(&mut self, arity: usize) -> usize {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % arity.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_decider_clamps_and_defaults() {
        let mut d = TraceDecider::new(vec![5, 1].into());
        assert_eq!(d.choose(3), 2); // clamped from 5
        assert_eq!(d.choose(4), 1);
        assert_eq!(d.choose(2), 0); // past the end
    }

    #[test]
    fn seeded_decider_is_reproducible() {
        let mut a = SeededDecider::new(42);
        let mut b = SeededDecider::new(42);
        for arity in [2usize, 3, 5, 7, 2, 9] {
            assert_eq!(a.choose(arity), b.choose(arity));
        }
    }
}
