//! Choice-point strategies.
//!
//! The runner consults a [`Decider`] at every step — including forced
//! steps with a single legal action, which DPOR needs to see for its
//! sleep-set bookkeeping. Everything else about a run is
//! deterministic, so the decider *is* the schedule.

use crate::runner::Alt;
use crate::trace::Trace;

/// Supplies the branch taken at each step.
///
/// `choose(alts)` is called once per executed step with the canonical
/// alternative list (never empty) and returns the index to execute;
/// out-of-range answers are clamped rather than panicking so that
/// traces recorded under one alternative set stay replayable after
/// the set shrinks. Returning `None` abandons the run — the runner
/// reports [`crate::Verdict::Aborted`] — which the DPOR engine uses
/// to prune sleep-blocked continuations.
pub trait Decider {
    /// Pick one of `alts.len()` alternatives, or `None` to abandon
    /// the run.
    fn choose(&mut self, alts: &[Alt]) -> Option<usize>;
}

/// Always picks branch 0 — the runtime's own default behavior
/// (earliest arrival, first eligible sender, never a fault).
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstDecider;

impl Decider for FirstDecider {
    fn choose(&mut self, _alts: &[Alt]) -> Option<usize> {
        Some(0)
    }
}

/// Replays a recorded [`Trace`]; trace positions are consumed only at
/// real choice points (two or more alternatives — forced steps replay
/// for free), and positions past the end of the trace take branch 0.
/// This is both the replay mechanism and the DFS prefix-execution
/// mechanism.
#[derive(Debug, Clone)]
pub struct TraceDecider {
    trace: Trace,
    pos: usize,
}

impl TraceDecider {
    /// Replay `trace` from the beginning.
    pub fn new(trace: Trace) -> Self {
        TraceDecider { trace, pos: 0 }
    }
}

impl Decider for TraceDecider {
    fn choose(&mut self, alts: &[Alt]) -> Option<usize> {
        if alts.len() < 2 {
            return Some(0);
        }
        let picked = self.trace.as_slice().get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        Some(picked.min(alts.len() - 1))
    }
}

/// Seeded pseudo-random schedule sampling (xorshift64*) for trees too
/// large to enumerate. The same seed always walks the same schedule;
/// entropy is consumed only at real choice points so forced steps do
/// not shift the stream.
#[derive(Debug, Clone)]
pub struct SeededDecider {
    state: u64,
}

impl SeededDecider {
    /// A decider with the given seed (zero is remapped — xorshift has
    /// an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        SeededDecider {
            state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed },
        }
    }
}

impl Decider for SeededDecider {
    fn choose(&mut self, alts: &[Alt]) -> Option<usize> {
        if alts.len() < 2 {
            return Some(0);
        }
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        Some((x.wrapping_mul(0x2545_f491_4f6c_dd1d) % alts.len() as u64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_core::Rank;

    fn alts(n: usize) -> Vec<Alt> {
        (0..n)
            .map(|i| Alt::Release {
                src: i as Rank,
                dst: 0,
            })
            .collect()
    }

    #[test]
    fn trace_decider_clamps_and_defaults() {
        let mut d = TraceDecider::new(vec![5, 1].into());
        assert_eq!(d.choose(&alts(3)), Some(2)); // clamped from 5
        assert_eq!(d.choose(&alts(1)), Some(0)); // forced: no position consumed
        assert_eq!(d.choose(&alts(4)), Some(1));
        assert_eq!(d.choose(&alts(2)), Some(0)); // past the end
    }

    #[test]
    fn seeded_decider_is_reproducible() {
        let mut a = SeededDecider::new(42);
        let mut b = SeededDecider::new(42);
        for arity in [2usize, 3, 5, 1, 7, 2, 9] {
            assert_eq!(a.choose(&alts(arity)), b.choose(&alts(arity)));
        }
    }
}
