//! # lclog-explore
//!
//! Deterministic simulation and schedule exploration for the paper's
//! central §III.E claim: **TDI delivery is order-insensitive** — any
//! delivery order the runtime's gate admits (per-sender FIFO plus the
//! protocol's dependency constraint) converges to the same application
//! results and the same `depend_interval` vectors.
//!
//! The crate turns that claim from "observed under a few seeds" into a
//! checked property:
//!
//! * [`run_schedule`] executes a [`Workload`] over *real* kernels
//!   ([`lclog_runtime::Kernel`]) on a single thread, with the fabric in
//!   [`DeliveryModel::Held`] mode (no courier — envelopes park until
//!   the scheduler releases them) and every kernel-path timestamp
//!   pinned to a [`SimClock`]. The only remaining non-determinism is
//!   the explicit choice sequence, so a run is a pure function of
//!   `(workload, trace)`.
//! * A [`Decider`] supplies those choices: which held **data** envelope
//!   to release next (arrival-order permutation) and which eligible
//!   sender an `ANY_SOURCE` receive extracts (the `RecvQueue` choice
//!   point). Control frames (acks, heartbeats) are flushed eagerly —
//!   they cannot change application-visible behavior while virtual
//!   time is frozen, so branching on them would only pad the tree.
//! * **Faults are choice points too.** With a nonzero [`FaultBudget`]
//!   the scheduler may, at any quiescent step, crash a rank
//!   ([`Alt::Crash`]), crash it *and* wipe its stable storage
//!   ([`Alt::CrashWipe`]), or force the failure detector's hand
//!   ([`Alt::Suspect`] — a verdict `true` kills the suspect, `false`
//!   fences a live rank as a zombie). Recovery, replay, and fencing
//!   then run over the same held fabric, so crash-interleaved
//!   schedules stay pure functions of `(workload, trace)` and their
//!   digests must *still* match the fault-free baseline.
//! * [`explore_exhaustive`] enumerates the full decision tree by
//!   trace-prefix re-execution (the stateless-model-checking loop);
//!   [`explore_sampled`] walks seeded random schedules when the tree
//!   is too large. Both compare every run's per-rank digests and
//!   TDI `depend_interval` vectors against the first run.
//! * [`explore_dpor`] covers the same tree with dynamic partial-order
//!   reduction: an independence relation over [`Alt`]s drives sleep
//!   sets that skip schedules equivalent to ones already executed,
//!   and the root frontier can be partitioned across worker threads
//!   (`ExploreConfig::workers`). Same digest census, a fraction of
//!   the executions; see `DESIGN.md` §12.
//! * On divergence, [`shrink`] greedily minimizes the offending
//!   [`Trace`] — truncating the tail and zeroing decisions while the
//!   mismatch reproduces — so the report carries a minimal replayable
//!   counterexample instead of a thousand-step schedule. Schedules
//!   that stop making progress are first-class outcomes
//!   ([`Verdict::Wedged`]) rather than watchdog timeouts.
//!
//! [`DeliveryModel::Held`]: lclog_simnet::DeliveryModel::Held
//! [`SimClock`]: lclog_simnet::SimClock

#![warn(missing_docs)]

mod decider;
mod explorer;
mod replay;
mod runner;
mod trace;
mod workload;

pub use decider::{Decider, FirstDecider, SeededDecider, TraceDecider};
pub use explorer::{
    explore_dpor, explore_exhaustive, explore_sampled, shrink, Divergence, ExploreConfig,
    ExploreReport,
};
pub use replay::{replay_trace, ReplayCase, ReplayStep};
pub use runner::{
    run_schedule, run_schedule_cfg, run_schedule_with, Alt, FaultBudget, RunOutcome, RunnerConfig,
    Step, Verdict,
};
pub use trace::Trace;
pub use workload::{Fold, Op, Payload, Workload};
