//! Service soak: 8 seeded rounds of overlapping tenant jobs, each
//! round injecting a mid-job node loss (`kill … wipe`) into one
//! tenant. Every job — faulted or not — must land on the digests of a
//! standalone fault-free batch run of the same spec, which checks
//! both recovery correctness and the absence of cross-job
//! interference through the shared storage/replication plane.

use lclog_serve::{JobSpec, Service, ServiceConfig};
use lclog_runtime::run_tasks;
use std::collections::HashMap;
use std::time::Duration;

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn spec(args: &str) -> JobSpec {
    JobSpec::parse(args.split_whitespace()).expect("soak spec parses")
}

/// A seed's tenant mix: protocols, kinds, and sizes rotate with the
/// seed; one tenant gets a mid-job node loss; every other seed also
/// runs a thread-engine tenant (whose digests must match the tasks
/// engine's).
fn round_specs(seed: u64) -> Vec<JobSpec> {
    let protos = ["tdi", "tdis", "tag"];
    let kinds = ["ring", "pairs"];
    let mut specs = Vec::new();
    for i in 0..3u64 {
        let r = mix(seed ^ (i << 8));
        let n = 4 + (r % 3) as usize; // 4..=6
        let rounds = 8 + r % 4; // 8..=11
        let proto = protos[(r >> 8) as usize % protos.len()];
        let kind = kinds[(r >> 16) as usize % kinds.len()];
        specs.push(spec(&format!(
            "kind={kind} n={n} proto={proto} rounds={rounds}"
        )));
    }
    // The faulted tenant: node loss (wipe) mid-job, torn upload every
    // fourth seed.
    let r = mix(seed ^ 0xFA);
    let n = 4 + (r % 3) as usize;
    let rounds = 9 + r % 3;
    let victim = (r >> 8) as usize % n;
    let at_step = 2 + (r >> 16) % (rounds / 2);
    let corrupt = if seed % 4 == 3 { " corrupt=on" } else { "" };
    specs.push(spec(&format!(
        "kind=ring n={n} proto=tdi rounds={rounds} kill={victim}@{at_step} wipe=on{corrupt}"
    )));
    if seed.is_multiple_of(2) {
        specs.push(spec("kind=pairs n=4 proto=tdi rounds=8 engine=threads"));
    }
    specs
}

/// Cache key: everything that determines a spec's digests.
fn digest_key(s: &JobSpec) -> String {
    format!("{}/{}/{}/{}", s.kind.name(), s.n, s.protocol, s.rounds)
}

#[test]
fn soak_overlapping_tenants_with_node_loss_across_8_seeds() {
    let mut expected: HashMap<String, Vec<u64>> = HashMap::new();
    for seed in 0..8u64 {
        let service = Service::start(ServiceConfig::default());
        let specs = round_specs(seed);
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| service.submit(s.clone()).expect("soak submit"))
            .collect();
        for (s, id) in specs.iter().zip(&ids) {
            let report = service
                .wait(*id, Duration::from_secs(120))
                .unwrap_or_else(|e| panic!("seed {seed} job {id} ({}): {e}", s.describe()));
            let want = expected.entry(digest_key(s)).or_insert_with(|| {
                let mut clean = s.clone();
                clean.fault = None;
                clean.engine = lclog_serve::EngineKind::Tasks;
                clean.detector = false;
                run_tasks(&clean.cluster_config(0), clean.workload())
                    .expect("standalone fault-free run")
                    .digests
            });
            assert_eq!(
                &report.digests,
                want,
                "seed {seed} job {id} ({}) diverged from its fault-free digests",
                s.describe()
            );
            if s.fault.is_some() {
                assert!(
                    report.kills >= 1,
                    "seed {seed}: the planned node loss must fire"
                );
            } else {
                assert_eq!(
                    report.kills, 0,
                    "seed {seed} job {id}: a clean co-resident tenant was killed"
                );
            }
        }
        let (_, synced) = service.drain(Duration::from_secs(30));
        assert!(synced, "seed {seed}: drain must leave the remote caught up");
        service.shutdown();
    }
}
