//! A minimal blocking client for the service's line protocol — used
//! by the SV1 reproduction table, the soak tests, and scripts.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One connection to a running `lclog-serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to the service.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        // One-line request/response round trips: Nagle + delayed ACK
        // would add ~40 ms to every exchange.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Send one request line, read one response line. Multi-line
    /// responses (METRICS, MEMBERS) are read through their `END`
    /// terminator and returned joined by `\n`.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let multi = matches!(
            line.split_whitespace().next(),
            Some("METRICS") | Some("MEMBERS")
        );
        let mut out = String::new();
        loop {
            let mut response = String::new();
            if self.reader.read_line(&mut response)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "service closed the connection",
                ));
            }
            let response = response.trim_end_matches('\n');
            if !multi {
                return Ok(response.to_string());
            }
            if response == "END" {
                return Ok(out);
            }
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(response);
        }
    }

    /// Request, then split an `OK key=value ...` response into the
    /// value of `key` (errors on `ERR` responses or a missing key).
    pub fn request_field(&mut self, line: &str, key: &str) -> Result<String, String> {
        let response = self.request(line).map_err(|e| e.to_string())?;
        if !response.starts_with("OK") {
            return Err(response);
        }
        let prefix = format!("{key}=");
        response
            .split_whitespace()
            .find_map(|w| w.strip_prefix(&prefix))
            .map(str::to_string)
            .ok_or_else(|| format!("no {key}= in {response:?}"))
    }
}
