//! The workloads a service tenant can submit: small deterministic
//! communication kernels written as [`TaskApp`] state machines, so one
//! definition runs under both engines
//! ([`BlockingTaskApp`](lclog_runtime::BlockingTaskApp) adapts them to
//! the thread engine for detector jobs).
//!
//! Digests are pure functions of `(kind, n, rounds)` — independent of
//! the engine, the rank namespace, and everything else about the
//! hosting service — which is what lets the soak tests and the SV1
//! table check a tenant's result against a standalone fault-free run.

use lclog_core::Rank;
use lclog_runtime::{Fault, RecvSpec, TaskApp, TaskCtx, TaskPoll};
use lclog_wire::impl_wire_struct;

/// Application message tag used by every service workload.
const TAG: u32 = 11;

/// splitmix64 finalizer — the repo's standard cheap value mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which communication kernel a submitted job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Neighbor-exchange ring: each round every rank sends right and
    /// folds from the left. All n messages of a round are concurrently
    /// in flight.
    Ring,
    /// Even/odd partner exchange: each round rank `r` swaps with
    /// `r ^ 1` (the last rank of an odd `n` self-steps). Pairwise
    /// traffic instead of a cycle.
    Pairs,
}

impl WorkloadKind {
    /// Parse a SUBMIT `kind=` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "ring" => Ok(WorkloadKind::Ring),
            "pairs" => Ok(WorkloadKind::Pairs),
            other => Err(format!("unknown workload kind {other:?} (ring|pairs)")),
        }
    }

    /// The SUBMIT spelling.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Ring => "ring",
            WorkloadKind::Pairs => "pairs",
        }
    }
}

/// Serializable per-rank state shared by both workloads: a round
/// counter, a sent-this-round latch, and the folded accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeState {
    round: u64,
    sent: bool,
    acc: u64,
}

impl_wire_struct!(ExchangeState { round, sent, acc });

/// A service workload: one of the [`WorkloadKind`] kernels run for a
/// fixed number of rounds.
pub struct Workload {
    kind: WorkloadKind,
    rounds: u64,
}

impl Workload {
    /// Build a workload instance.
    pub fn new(kind: WorkloadKind, rounds: u64) -> Self {
        Workload { kind, rounds }
    }

    /// The peer `rank` exchanges with this `round` (`None` = self-step:
    /// fold a constant instead of a message).
    fn peer(&self, rank: Rank, n: usize) -> Option<Rank> {
        match self.kind {
            WorkloadKind::Ring => {
                if n == 1 {
                    None
                } else {
                    Some((rank + 1) % n)
                }
            }
            WorkloadKind::Pairs => {
                let partner = rank ^ 1;
                if partner < n {
                    Some(partner)
                } else {
                    None
                }
            }
        }
    }

    /// Who this rank receives from (for the ring the sender is the
    /// left neighbor; pairs are symmetric).
    fn source(&self, rank: Rank, n: usize) -> Option<Rank> {
        match self.kind {
            WorkloadKind::Ring => {
                if n == 1 {
                    None
                } else {
                    Some((rank + n - 1) % n)
                }
            }
            WorkloadKind::Pairs => self.peer(rank, n),
        }
    }
}

impl TaskApp for Workload {
    type State = ExchangeState;

    fn init(&self, rank: Rank, _n: usize) -> ExchangeState {
        ExchangeState {
            round: 0,
            sent: false,
            acc: mix(rank as u64 ^ ((self.kind as u64) << 32)),
        }
    }

    fn poll(&self, ctx: &mut TaskCtx<'_>, st: &mut ExchangeState) -> Result<TaskPoll, Fault> {
        if st.round >= self.rounds {
            return Ok(TaskPoll::Done);
        }
        let me = ctx.rank();
        let n = ctx.n();
        let Some(dst) = self.peer(me, n) else {
            // Unpaired rank: deterministic solo fold keeps rounds in
            // lockstep with everyone else's step count.
            st.acc = mix(st.acc ^ st.round);
            st.round += 1;
            return Ok(TaskPoll::Step);
        };
        if !st.sent {
            let payload = mix(st.acc ^ st.round);
            ctx.send_value(dst, TAG, &payload)?;
            st.sent = true;
        }
        let src = self.source(me, n).expect("paired rank has a source");
        match ctx.try_recv_value::<u64>(RecvSpec::from(src, TAG))? {
            Some((_, v)) => {
                st.acc = mix(st.acc.wrapping_add(v));
                st.sent = false;
                st.round += 1;
                Ok(TaskPoll::Step)
            }
            None => Ok(TaskPoll::Pending),
        }
    }

    fn digest(&self, st: &ExchangeState) -> u64 {
        mix(st.acc ^ st.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_runtime::{run_tasks, CheckpointPolicy, ClusterConfig, EngineMode, RunConfig};
    use lclog_core::ProtocolKind;

    fn cfg(n: usize) -> ClusterConfig {
        ClusterConfig::new(
            n,
            RunConfig::new(ProtocolKind::Tdi)
                .with_checkpoint(CheckpointPolicy::EverySteps(2))
                .with_engine(EngineMode::Tasks { workers: 2 }),
        )
    }

    #[test]
    fn workloads_complete_and_digest_deterministically() {
        for kind in [WorkloadKind::Ring, WorkloadKind::Pairs] {
            let a = run_tasks(&cfg(4), Workload::new(kind, 6)).unwrap();
            let b = run_tasks(&cfg(4), Workload::new(kind, 6)).unwrap();
            assert_eq!(a.digests, b.digests, "{kind:?} must be deterministic");
        }
    }

    #[test]
    fn pairs_handles_odd_rank_counts() {
        let r = run_tasks(&cfg(5), Workload::new(WorkloadKind::Pairs, 4)).unwrap();
        assert_eq!(r.digests.len(), 5);
    }
}
