//! # lclog-serve
//!
//! The persistent cluster service: instead of building a runtime,
//! running one job, and tearing everything down (the `Cluster` /
//! `run_tasks` batch shape), `lclog-serve` keeps a **warm runtime**
//! alive — one shared stable-storage backend, one replication
//! pipeline, one sweep pool — and serves jobs submitted by concurrent
//! tenants over a line-oriented local TCP API.
//!
//! ```text
//! SUBMIT kind=ring n=8 proto=tdi rounds=12 kill=1@4 wipe=on   → OK id=1 base=0
//! STATUS 1                                                     → OK id=1 state=running ...
//! REPORT 1 / DIGESTS 1                                         → OK id=1 ... digests=...
//! METRICS / MEMBERS                                            → multi-line, END-terminated
//! SNAPSHOT / DRAIN / RETIRE <id> / PING
//! ```
//!
//! Isolation: every job gets its own fabric and virtual clock; the
//! *durable* world is shared and namespaced by a never-reused
//! `rank_base`, so a mid-job node loss (`kill=… wipe=on`) recovers
//! through the ordinary rollback/restore path — from the service-wide
//! remote manifest — without disturbing co-resident jobs. See
//! [`service::Service`].

#![warn(missing_docs)]

mod client;
pub mod job;
pub mod service;
pub mod workload;

pub use client::Client;
pub use job::{EngineKind, FaultSpec, JobSpec, SweepJob};
pub use service::{Service, ServiceConfig};
pub use workload::{Workload, WorkloadKind};
