//! The persistent cluster service: one warm runtime (shared stable
//! storage, one replication pipeline, a shared sweep pool) serving
//! concurrent tenant jobs, plus the line-oriented TCP front end.
//!
//! ## Isolation model
//!
//! Every job gets its **own** fabric and virtual clock (a [`TaskJob`]
//! builds both), so co-resident tenants cannot interfere through the
//! network by construction. What they *do* share is durable: one
//! stable-storage backend and one replication pipeline, namespaced by
//! a monotonically allocated, never-reused `rank_base` — tenant A's
//! generations live under `ckpt/<base_A + rank>/`, tenant B's under
//! `ckpt/<base_B + rank>/`, and a node-loss restore pulls exactly its
//! own global rank from the shared remote manifest.
//!
//! ## Scheduling model
//!
//! Tasks-engine jobs are [`SweepJob`]s multiplexed onto one shared
//! worker pool: each pool thread round-robins over every active job's
//! shards, and the shard mutexes' `try_lock` skip means a busy shard
//! never convoys the pool — that is the fairness mechanism. Thread-
//! engine jobs (detector runs, event-logger protocols) run on their
//! own dedicated runner thread, since their ranks are OS threads
//! already.

use crate::job::{EngineKind, JobSpec, SweepJob};
use lclog_runtime::{
    BlockingTaskApp, Cluster, DetectorReport, EventSink, RemoteConfig, Replicator,
    ReplicatorConfig, RunReport, TaskJob, TasksEnv,
};
use lclog_runtime::{DataPlaneStats, ReplicatorStats};
use lclog_core::TrackingStats;
use lclog_stable::{MemRemote, MemStore, RemoteStore, StableStorage};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bounds (ms) of the job-latency histogram buckets; the last
/// bucket is unbounded.
const LATENCY_BOUNDS_MS: [u64; 9] = [5, 10, 25, 50, 100, 250, 500, 1000, 5000];

/// Completed-job latency histogram (fixed millisecond buckets).
#[derive(Debug, Default, Clone)]
struct LatencyHist {
    counts: [u64; LATENCY_BOUNDS_MS.len() + 1],
}

impl LatencyHist {
    fn record(&mut self, wall: Duration) {
        let ms = wall.as_millis() as u64;
        let bucket = LATENCY_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(LATENCY_BOUNDS_MS.len());
        self.counts[bucket] += 1;
    }

    fn render_into(&self, out: &mut String) {
        let mut lo = 0;
        for (i, &count) in self.counts.iter().enumerate() {
            match LATENCY_BOUNDS_MS.get(i) {
                Some(&hi) => out.push_str(&format!("latency_ms_{lo}_{hi}={count}\n")),
                None => out.push_str(&format!("latency_ms_{lo}_inf={count}\n")),
            }
            lo = LATENCY_BOUNDS_MS.get(i).copied().unwrap_or(lo);
        }
    }
}

/// Where a job currently is in its lifecycle.
enum JobState {
    /// A tasks-engine job being swept by the shared pool.
    Tasks(Arc<dyn SweepJob>),
    /// A thread-engine job running on its dedicated runner thread.
    Threads,
    /// Done: the report (or failure) is held for REPORT/DIGESTS.
    Finished {
        report: Box<Result<RunReport, String>>,
        wall: Duration,
    },
}

/// One tenant job held by the service.
struct JobEntry {
    id: u64,
    spec: JobSpec,
    rank_base: usize,
    submitted: Instant,
    /// Claim flag so exactly one pool thread runs a sweep round's
    /// leader duties ([`SweepJob::advance`]) at a time.
    advancing: AtomicBool,
    state: Mutex<JobState>,
}

/// Everything the pool threads, the runner threads, and the TCP
/// connections share.
struct Inner {
    storage: Arc<dyn StableStorage>,
    remote: Arc<dyn RemoteStore>,
    replicator: Arc<Replicator>,
    env: TasksEnv,
    jobs: Mutex<BTreeMap<u64, Arc<JobEntry>>>,
    next_id: AtomicU64,
    /// Monotonic, never reused: each job's rank namespace is carved
    /// out of `0..` in submit order (`n + 1` slots: `n` ranks plus the
    /// job's stable-service slot).
    next_base: AtomicUsize,
    draining: AtomicBool,
    stop: AtomicBool,
    hist: Mutex<LatencyHist>,
    /// Cross-job aggregates folded in as jobs finish.
    totals: Mutex<(TrackingStats, DataPlaneStats)>,
    last_detector: Mutex<Option<DetectorReport>>,
    jobs_finished: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_retired: AtomicU64,
    kills_total: AtomicU64,
    generations_cleared: AtomicU64,
    /// Where the TCP listener ended up (used to wake the accept loop
    /// at shutdown).
    bound: Mutex<Option<SocketAddr>>,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Sweep-pool threads shared by all tasks-engine jobs.
    pub workers: usize,
    /// Replication pipeline knobs for the service-wide replicator.
    pub replicator: ReplicatorConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            replicator: ReplicatorConfig::default(),
        }
    }
}

/// The persistent cluster service. Construct with [`Service::start`],
/// talk to it in-process (submit/status/report) or over TCP
/// ([`Service::listen`] + [`crate::Client`]).
pub struct Service {
    inner: Arc<Inner>,
    pool: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Service {
    /// Bring up the warm runtime: shared storage, the service-wide
    /// replicator, and `cfg.workers` sweep threads.
    pub fn start(cfg: ServiceConfig) -> Arc<Self> {
        let storage: Arc<dyn StableStorage> = Arc::new(MemStore::new());
        let remote: Arc<dyn RemoteStore> = Arc::new(MemRemote::new());
        let replicator = Replicator::spawn(
            Arc::clone(&remote),
            cfg.replicator.clone(),
            EventSink::disabled(),
            0,
        );
        let inner = Arc::new(Inner {
            env: TasksEnv {
                storage: Arc::clone(&storage),
                replicator: Some(Arc::clone(&replicator)),
            },
            storage,
            remote,
            replicator,
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            next_base: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            hist: Mutex::new(LatencyHist::default()),
            totals: Mutex::new((TrackingStats::default(), DataPlaneStats::default())),
            last_detector: Mutex::new(None),
            jobs_finished: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_retired: AtomicU64::new(0),
            kills_total: AtomicU64::new(0),
            generations_cleared: AtomicU64::new(0),
            bound: Mutex::new(None),
        });
        let pool = (0..cfg.workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("lclog-serve-{w}"))
                    .spawn(move || pool_worker(&inner))
                    .expect("spawn sweep worker")
            })
            .collect();
        Arc::new(Service {
            inner,
            pool: Mutex::new(pool),
        })
    }

    /// The shared local stable storage (tests inspect namespaces).
    pub fn storage(&self) -> &Arc<dyn StableStorage> {
        &self.inner.storage
    }

    /// Submit a job; returns its id. Refused while draining.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, String> {
        if self.inner.draining.load(Ordering::Acquire) {
            return Err("service is draining; submits are closed".into());
        }
        let rank_base = self.inner.next_base.fetch_add(spec.n + 1, Ordering::Relaxed);
        let cfg = spec.cluster_config(rank_base);
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let state = match spec.engine {
            EngineKind::Tasks => {
                let job = TaskJob::with_env(&cfg, spec.workload(), &self.inner.env)?;
                JobState::Tasks(Arc::new(job))
            }
            EngineKind::Threads => JobState::Threads,
        };
        let entry = Arc::new(JobEntry {
            id,
            spec: spec.clone(),
            rank_base,
            submitted: Instant::now(),
            advancing: AtomicBool::new(false),
            state: Mutex::new(state),
        });
        if spec.engine == EngineKind::Threads {
            // Thread-engine ranks are OS threads already; the job gets
            // a dedicated runner instead of the sweep pool. It ships
            // into the shared remote through its own pipeline, in its
            // own rank namespace.
            let cfg = cfg.with_remote(RemoteConfig::new(Arc::clone(&self.inner.remote)));
            let inner = Arc::clone(&self.inner);
            let entry2 = Arc::clone(&entry);
            let workload = spec.workload();
            std::thread::Builder::new()
                .name(format!("lclog-serve-job-{id}"))
                .spawn(move || {
                    let result = Cluster::run(&cfg, BlockingTaskApp(workload));
                    inner.finalize(&entry2, result, 0);
                })
                .map_err(|e| format!("spawn job runner: {e}"))?;
        }
        self.inner.jobs.lock().insert(id, entry);
        Ok(id)
    }

    /// One-line lifecycle probe.
    pub fn status(&self, id: u64) -> Result<String, String> {
        let entry = self.entry(id)?;
        let state = entry.state.lock();
        Ok(match &*state {
            JobState::Tasks(driver) => {
                let (done, total) = driver.progress();
                format!(
                    "id={id} state=running engine=tasks done={done}/{total} kills={}",
                    driver.kills()
                )
            }
            JobState::Threads => format!("id={id} state=running engine=threads"),
            JobState::Finished { report, wall } => match report.as_ref() {
                Ok(r) => format!(
                    "id={id} state=finished wall_ms={} kills={}",
                    wall.as_millis(),
                    r.kills
                ),
                Err(e) => format!("id={id} state=failed error={e:?}"),
            },
        })
    }

    /// The finished job's report (error while still running).
    pub fn report(&self, id: u64) -> Result<RunReport, String> {
        let entry = self.entry(id)?;
        let state = entry.state.lock();
        match &*state {
            JobState::Finished { report, .. } => (**report).clone(),
            _ => Err(format!("job {id} is still running")),
        }
    }

    /// Block until job `id` finishes (or `timeout` passes), then
    /// return its report.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<RunReport, String> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let entry = self.entry(id)?;
                let state = entry.state.lock();
                if let JobState::Finished { report, .. } = &*state {
                    return (**report).clone();
                }
            }
            if Instant::now() >= deadline {
                return Err(format!("timed out waiting for job {id}"));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Drop a finished job from the registry (its generations were
    /// GC'd when it finished).
    pub fn retire(&self, id: u64) -> Result<(), String> {
        let entry = self.entry(id)?;
        {
            let state = entry.state.lock();
            if !matches!(&*state, JobState::Finished { .. }) {
                return Err(format!("job {id} is still running"));
            }
        }
        self.inner.jobs.lock().remove(&id);
        self.inner.jobs_retired.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The membership view: every held job and its rank namespace.
    pub fn members(&self) -> String {
        let mut out = String::new();
        for entry in self.inner.jobs.lock().values() {
            let state = match &*entry.state.lock() {
                JobState::Tasks(_) | JobState::Threads => "running",
                JobState::Finished { report, .. } if report.is_ok() => "finished",
                JobState::Finished { .. } => "failed",
            };
            out.push_str(&format!(
                "job id={} state={state} ranks={}..{} {}\n",
                entry.id,
                entry.rank_base,
                entry.rank_base + entry.spec.n,
                entry.spec.describe()
            ));
        }
        out
    }

    /// Force the replicator to drain its backlog now; true when the
    /// remote caught up within `timeout`.
    pub fn snapshot_now(&self, timeout: Duration) -> bool {
        self.inner.replicator.wait_synced(timeout)
    }

    /// Graceful shutdown, phase 1: close submits, wait for running
    /// jobs, then drain the replicator. Returns `(finished jobs,
    /// remote synced)`.
    pub fn drain(&self, timeout: Duration) -> (u64, bool) {
        self.inner.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            let busy = self
                .inner
                .jobs
                .lock()
                .values()
                .any(|e| !matches!(&*e.state.lock(), JobState::Finished { .. }));
            if !busy {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let synced = self
            .inner
            .replicator
            .wait_synced(deadline.saturating_duration_since(Instant::now()));
        (self.inner.jobs_finished.load(Ordering::Relaxed), synced)
    }

    /// Graceful shutdown, phase 2: stop the sweep pool and the
    /// listener, join everything, and finish the replicator.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Release);
        // Wake the accept loop with a throwaway connection.
        if let Some(addr) = *self.inner.bound.lock() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
        for handle in self.pool.lock().drain(..) {
            let _ = handle.join();
        }
        self.inner.replicator.finish();
    }

    /// `key=value` metrics text: job counters, cross-job tracking and
    /// data-plane aggregates, live replicator stats, the last detector
    /// report, and the completed-job latency histogram.
    pub fn metrics(&self) -> String {
        let inner = &self.inner;
        let active = inner
            .jobs
            .lock()
            .values()
            .filter(|e| !matches!(&*e.state.lock(), JobState::Finished { .. }))
            .count();
        let mut out = String::new();
        let submitted = inner.next_id.load(Ordering::Relaxed) - 1;
        out.push_str(&format!("jobs_submitted={submitted}\n"));
        out.push_str(&format!("jobs_active={active}\n"));
        out.push_str(&format!(
            "jobs_finished={}\n",
            inner.jobs_finished.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "jobs_failed={}\n",
            inner.jobs_failed.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "jobs_retired={}\n",
            inner.jobs_retired.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "kills_total={}\n",
            inner.kills_total.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "generations_cleared={}\n",
            inner.generations_cleared.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "draining={}\n",
            inner.draining.load(Ordering::Relaxed)
        ));
        {
            let totals = inner.totals.lock();
            out.push_str(&format!("delivers_total={}\n", totals.0.delivers));
            out.push_str(&format!(
                "piggyback_bytes_total={}\n",
                totals.0.piggyback_bytes
            ));
            out.push_str(&format!("frames_built_total={}\n", totals.1.frames_built));
            out.push_str(&format!(
                "retransmit_frames_total={}\n",
                totals.1.retransmit_frames
            ));
            out.push_str(&format!(
                "acks_coalesced_total={}\n",
                totals.1.acks_coalesced
            ));
        }
        let repl: ReplicatorStats = inner.replicator.stats();
        out.push_str(&format!("repl_objects_shipped={}\n", repl.objects_shipped));
        out.push_str(&format!("repl_bytes_shipped={}\n", repl.bytes_shipped));
        out.push_str(&format!("repl_retries={}\n", repl.retries));
        out.push_str(&format!("repl_restores={}\n", repl.restores));
        out.push_str(&format!("repl_resyncs={}\n", repl.resyncs));
        out.push_str(&format!(
            "repl_degraded_windows={}\n",
            repl.degraded_windows
        ));
        out.push_str(&format!("repl_spill_peak_bytes={}\n", repl.spill_peak_bytes));
        if let Some(det) = &*inner.last_detector.lock() {
            out.push_str(&format!("det_declarations={}\n", det.declarations));
            out.push_str(&format!("det_false_kills={}\n", det.false_kills));
            out.push_str(&format!("det_gate_timeouts={}\n", det.gate_timeouts));
            out.push_str(&format!(
                "det_mean_latency_us={}\n",
                det.mean_latency().unwrap_or_default().as_micros()
            ));
        }
        inner.hist.lock().render_into(&mut out);
        out
    }

    /// Bind the TCP front end on `addr` (e.g. `127.0.0.1:0`) and start
    /// the accept loop. Returns the bound address.
    pub fn listen(self: &Arc<Self>, addr: &str) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        *self.inner.bound.lock() = Some(bound);
        let service = Arc::clone(self);
        let accept = std::thread::Builder::new()
            .name("lclog-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if service.inner.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let service = Arc::clone(&service);
                    let _ = std::thread::Builder::new()
                        .name("lclog-serve-conn".into())
                        .spawn(move || service.serve_connection(stream));
                }
            })?;
        self.pool.lock().push(accept);
        Ok(bound)
    }

    /// One connection: a loop of request lines, one response each.
    fn serve_connection(&self, stream: TcpStream) {
        // Line-sized responses must not sit in Nagle's buffer.
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut writer = stream;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let response = self.handle(line.trim());
            if writer.write_all(response.as_bytes()).is_err()
                || writer.write_all(b"\n").is_err()
            {
                return;
            }
            if self.inner.stop.load(Ordering::Acquire) {
                return;
            }
        }
    }

    /// Dispatch one request line to a response (no trailing newline).
    /// Multi-line responses (METRICS, MEMBERS) end with `END`.
    pub fn handle(&self, line: &str) -> String {
        let mut words = line.split_whitespace();
        let verb = words.next().unwrap_or("");
        let id_arg = |words: &mut dyn Iterator<Item = &str>| -> Result<u64, String> {
            words
                .next()
                .ok_or_else(|| "missing job id".to_string())?
                .parse()
                .map_err(|_| "job id is not a number".to_string())
        };
        match verb {
            "PING" => "OK pong".into(),
            "SUBMIT" => match JobSpec::parse(words).and_then(|spec| self.submit(spec)) {
                Ok(id) => {
                    let base = self
                        .inner
                        .jobs
                        .lock()
                        .get(&id)
                        .map(|e| e.rank_base)
                        .unwrap_or(0);
                    format!("OK id={id} base={base}")
                }
                Err(e) => format!("ERR {e}"),
            },
            "STATUS" => match id_arg(&mut words).and_then(|id| self.status(id)) {
                Ok(s) => format!("OK {s}"),
                Err(e) => format!("ERR {e}"),
            },
            "REPORT" => match id_arg(&mut words).and_then(|id| Ok((id, self.report(id)?))) {
                Ok((id, r)) => {
                    let mut line = format!(
                        "OK id={id} wall_ms={} kills={} delivers={} net_msgs={} digests={}",
                        r.wall.as_millis(),
                        r.kills,
                        r.stats.delivers,
                        r.net_msgs,
                        render_digests(&r.digests)
                    );
                    if let Some(repl) = &r.replicator {
                        line.push_str(&format!(
                            " repl_shipped={} repl_restores={}",
                            repl.objects_shipped, repl.restores
                        ));
                    }
                    if let Some(det) = &r.detector {
                        line.push_str(&format!(
                            " det_declarations={} det_false_kills={}",
                            det.declarations, det.false_kills
                        ));
                    }
                    line
                }
                Err(e) => format!("ERR {e}"),
            },
            "DIGESTS" => match id_arg(&mut words).and_then(|id| Ok((id, self.report(id)?))) {
                Ok((id, r)) => format!("OK id={id} {}", render_digests(&r.digests)),
                Err(e) => format!("ERR {e}"),
            },
            "RETIRE" => match id_arg(&mut words).and_then(|id| self.retire(id).map(|_| id)) {
                Ok(id) => format!("OK retired id={id}"),
                Err(e) => format!("ERR {e}"),
            },
            "MEMBERS" => format!("{}END", self.members()),
            "METRICS" => format!("{}END", self.metrics()),
            "SNAPSHOT" => format!("OK synced={}", self.snapshot_now(Duration::from_secs(10))),
            "DRAIN" => {
                let (finished, synced) = self.drain(Duration::from_secs(60));
                format!("OK drained jobs={finished} synced={synced}")
            }
            "" => "ERR empty request".into(),
            other => format!("ERR unknown command {other:?}"),
        }
    }

    fn entry(&self, id: u64) -> Result<Arc<JobEntry>, String> {
        self.inner
            .jobs
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| format!("unknown job {id}"))
    }
}

/// Hex digest list, comma separated — stable across REPORT/DIGESTS
/// and trivially diffable between runs.
fn render_digests(digests: &[u64]) -> String {
    digests
        .iter()
        .map(|d| format!("{d:016x}"))
        .collect::<Vec<_>>()
        .join(",")
}

impl Inner {
    /// Record a finished job exactly once: fold its aggregates into
    /// the service totals, record its latency, and park the report.
    fn finalize(&self, entry: &JobEntry, result: Result<RunReport, String>, gens_cleared: usize) {
        let mut state = entry.state.lock();
        if matches!(&*state, JobState::Finished { .. }) {
            return;
        }
        let wall = entry.submitted.elapsed();
        match &result {
            Ok(report) => {
                self.jobs_finished.fetch_add(1, Ordering::Relaxed);
                self.kills_total
                    .fetch_add(report.kills as u64, Ordering::Relaxed);
                let mut totals = self.totals.lock();
                totals.0.merge(&report.stats);
                totals.1.merge(&report.data_plane);
                if let Some(det) = &report.detector {
                    *self.last_detector.lock() = Some(det.clone());
                }
            }
            Err(_) => {
                self.jobs_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.generations_cleared
            .fetch_add(gens_cleared as u64, Ordering::Relaxed);
        self.hist.lock().record(wall);
        *state = JobState::Finished {
            report: Box::new(result),
            wall,
        };
    }
}

/// One shared pool thread: round-robin over every active tasks-engine
/// job, sweeping all shards (`try_lock` inside `sweep` skips shards
/// another pool thread holds), claiming the leader duties once per
/// pass, and finalizing jobs that completed.
fn pool_worker(inner: &Arc<Inner>) {
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let entries: Vec<Arc<JobEntry>> = inner.jobs.lock().values().cloned().collect();
        let mut progressed = false;
        for entry in &entries {
            let driver = match &*entry.state.lock() {
                JobState::Tasks(driver) => Arc::clone(driver),
                _ => continue,
            };
            for shard in 0..driver.shards() {
                progressed |= driver.sweep(shard);
            }
            if entry
                .advancing
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                progressed |= driver.advance();
                entry.advancing.store(false, Ordering::Release);
            }
            if driver.is_finished() {
                // Report first, then GC: a finished tenant's ranks
                // never restore again, and a long-running service must
                // not accumulate dead tenants' generations.
                let report = driver.take_report();
                let gens = driver.clear_generations();
                inner.finalize(entry, report, gens);
                progressed = true;
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use lclog_runtime::run_tasks;

    fn spec(args: &str) -> JobSpec {
        JobSpec::parse(args.split_whitespace()).expect("test spec parses")
    }

    /// The fault-free digests a spec must converge to, computed by a
    /// standalone batch run (no service, no namespace, no faults).
    fn expected_digests(spec: &JobSpec) -> Vec<u64> {
        let mut clean = spec.clone();
        clean.fault = None;
        run_tasks(&clean.cluster_config(0), clean.workload())
            .expect("standalone fault-free run")
            .digests
    }

    #[test]
    fn concurrent_tenants_with_a_mid_job_wipe_do_not_interfere() {
        let service = Service::start(ServiceConfig::default());
        let specs = [
            spec("kind=ring n=4 proto=tdi rounds=8"),
            spec("kind=ring n=5 proto=tdis rounds=8"),
            spec("kind=pairs n=4 proto=tag rounds=8"),
            spec("kind=ring n=4 proto=tdi rounds=10 kill=1@4 wipe=on"),
        ];
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| service.submit(s.clone()).expect("submit"))
            .collect();
        for (spec, id) in specs.iter().zip(&ids) {
            let report = service.wait(*id, Duration::from_secs(60)).expect("job ok");
            assert_eq!(
                report.digests,
                expected_digests(spec),
                "job {id} must land on its fault-free digests"
            );
            if spec.fault.is_some() {
                assert!(report.kills >= 1, "the planned wipe kill must fire");
                let repl = report.replicator.expect("env jobs report replicator stats");
                assert!(repl.restores >= 1, "the wipe must restore from the remote");
            }
        }
        service.shutdown();
    }

    #[test]
    fn finished_tenants_generations_are_gcd_and_namespaces_stay_apart() {
        let service = Service::start(ServiceConfig::default());
        let a = service
            .submit(spec("kind=ring n=3 proto=tdi rounds=6"))
            .unwrap();
        service.wait(a, Duration::from_secs(30)).unwrap();
        // Finished tenant a was GC'd by the pool.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !service.storage().keys_with_prefix("ckpt/0/").is_empty()
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            service.storage().keys_with_prefix("ckpt/0/").is_empty(),
            "a finished tenant's generations must be GC'd"
        );
        // Tenant b gets a fresh namespace past a's (never reused).
        let b = service
            .submit(spec("kind=ring n=3 proto=tdi rounds=6"))
            .unwrap();
        let base = {
            let entry = service.entry(b).unwrap();
            entry.rank_base
        };
        assert!(base >= 4, "rank namespaces must never be reused");
        service.wait(b, Duration::from_secs(30)).unwrap();
        service.retire(b).unwrap();
        assert!(service.report(b).is_err(), "retired jobs are gone");
        service.shutdown();
    }

    #[test]
    fn drain_closes_submits_and_syncs_the_replicator() {
        let service = Service::start(ServiceConfig::default());
        let id = service
            .submit(spec("kind=ring n=4 proto=tdi rounds=6"))
            .unwrap();
        let (finished, synced) = service.drain(Duration::from_secs(60));
        assert!(finished >= 1, "drain waits for running jobs");
        assert!(synced, "drain leaves the remote caught up");
        assert!(
            service
                .submit(spec("kind=ring n=4 proto=tdi rounds=6"))
                .unwrap_err()
                .contains("draining"),
            "submits are closed while draining"
        );
        // The drained job is still reportable.
        assert!(service.report(id).is_ok());
        service.shutdown();
    }

    #[test]
    fn detector_thread_job_feeds_the_metrics_endpoint() {
        let service = Service::start(ServiceConfig::default());
        let id = service
            .submit(spec(
                "kind=ring n=4 proto=tdi rounds=8 engine=threads detector=on kill=1@4",
            ))
            .unwrap();
        let report = service.wait(id, Duration::from_secs(60)).expect("job ok");
        assert_eq!(report.digests, expected_digests(&spec("kind=ring n=4 proto=tdi rounds=8")));
        let det = report.detector.expect("detector jobs report the detector");
        assert!(det.declarations >= 1, "the kill must be declared dead");
        let metrics = service.metrics();
        assert!(
            metrics.contains("det_declarations="),
            "metrics must carry the last detector report:\n{metrics}"
        );
        service.shutdown();
    }

    #[test]
    fn tcp_front_end_round_trips_the_whole_protocol() {
        let service = Service::start(ServiceConfig::default());
        let addr = service.listen("127.0.0.1:0").expect("bind loopback");
        let mut client = Client::connect(addr).expect("connect");
        assert_eq!(client.request("PING").unwrap(), "OK pong");
        let id = client
            .request_field("SUBMIT kind=ring n=4 proto=tdi rounds=8 kill=2@3 wipe=on", "id")
            .expect("submit over tcp");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let status = client.request(&format!("STATUS {id}")).unwrap();
            assert!(status.starts_with("OK"), "{status}");
            if status.contains("state=finished") {
                break;
            }
            assert!(
                !status.contains("state=failed"),
                "job failed over tcp: {status}"
            );
            assert!(Instant::now() < deadline, "tcp job timed out: {status}");
            std::thread::sleep(Duration::from_millis(2));
        }
        let report = client.request(&format!("REPORT {id}")).unwrap();
        assert!(report.contains("kills=1"), "{report}");
        assert!(report.contains("repl_restores=1"), "{report}");
        let digests = client.request(&format!("DIGESTS {id}")).unwrap();
        let expected = render_digests(&expected_digests(&spec(
            "kind=ring n=4 proto=tdi rounds=8",
        )));
        assert!(
            digests.ends_with(&expected),
            "tcp digests {digests:?} != fault-free {expected:?}"
        );
        let members = client.request("MEMBERS").unwrap();
        assert!(members.contains(&format!("id={id} state=finished")), "{members}");
        let metrics = client.request("METRICS").unwrap();
        for key in [
            "jobs_finished=1",
            "repl_objects_shipped=",
            "delivers_total=",
            "latency_ms_0_5=",
        ] {
            assert!(metrics.contains(key), "missing {key} in:\n{metrics}");
        }
        assert_eq!(
            client.request("SNAPSHOT").unwrap(),
            "OK synced=true"
        );
        assert_eq!(
            client.request(&format!("RETIRE {id}")).unwrap(),
            format!("OK retired id={id}")
        );
        assert!(client
            .request(&format!("REPORT {id}"))
            .unwrap()
            .starts_with("ERR unknown job"));
        assert!(client.request("BOGUS").unwrap().starts_with("ERR"));
        service.shutdown();
    }
}
