//! Tenant job descriptions and the engine-erased driver the service's
//! shared worker pool sweeps.

use crate::workload::{Workload, WorkloadKind};
use lclog_core::ProtocolKind;
use lclog_runtime::{
    CheckpointPolicy, ClusterConfig, DetectorConfig, EngineMode, FailurePlan, RunReport,
    TaskApp, TaskJob,
};
use std::time::Duration;

/// Which engine runs a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Ranks as cooperative tasks, multiplexed onto the service's
    /// shared worker pool (the default).
    Tasks,
    /// One OS thread per rank on a dedicated runner thread — required
    /// for detected failures and event-logger protocols.
    Threads,
}

/// The fault a tenant asks the service to inject mid-job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Victim rank (job-local).
    pub rank: usize,
    /// Step its first incarnation dies at.
    pub at_step: u64,
    /// Node loss: also wipe the victim's local generations, forcing a
    /// restore from the service's remote store.
    pub wipe: bool,
    /// Additionally tear the newest remote generation (restore must
    /// fall back one generation). Implies `wipe`.
    pub corrupt: bool,
}

/// A parsed SUBMIT request: everything that defines one tenant job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Communication kernel.
    pub kind: WorkloadKind,
    /// Rank count.
    pub n: usize,
    /// Dependency-tracking protocol.
    pub protocol: ProtocolKind,
    /// Rounds of the workload.
    pub rounds: u64,
    /// Checkpoint every this many steps.
    pub ckpt: u64,
    /// Shard count for tasks-engine jobs.
    pub workers: usize,
    /// Engine selection.
    pub engine: EngineKind,
    /// Run a failure detector (thread engine only).
    pub detector: bool,
    /// Mid-job fault injection, if any.
    pub fault: Option<FaultSpec>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            kind: WorkloadKind::Ring,
            n: 4,
            protocol: ProtocolKind::Tdi,
            rounds: 8,
            ckpt: 2,
            workers: 4,
            engine: EngineKind::Tasks,
            detector: false,
            fault: None,
        }
    }
}

fn parse_protocol(s: &str) -> Result<ProtocolKind, String> {
    match s {
        "tdi" => Ok(ProtocolKind::Tdi),
        "tdis" => Ok(ProtocolKind::TdiSparse(8)),
        "tag" => Ok(ProtocolKind::Tag),
        "tagf" => Ok(ProtocolKind::TagF(2)),
        "tel" => Ok(ProtocolKind::Tel),
        "pes" => Ok(ProtocolKind::Pessim),
        other => Err(format!(
            "unknown protocol {other:?} (tdi|tdis|tag|tagf|tel|pes)"
        )),
    }
}

fn parse_bool(key: &str, s: &str) -> Result<bool, String> {
    match s {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        other => Err(format!("{key}={other:?} is not on|off")),
    }
}

impl JobSpec {
    /// Parse the `key=value` words of a SUBMIT request.
    ///
    /// ```text
    /// SUBMIT kind=ring n=8 proto=tdi rounds=12 ckpt=4 workers=4 \
    ///        engine=tasks detector=off kill=1@4 wipe=on corrupt=off
    /// ```
    pub fn parse<'a>(words: impl Iterator<Item = &'a str>) -> Result<Self, String> {
        let mut spec = JobSpec::default();
        let mut wipe = false;
        let mut corrupt = false;
        for word in words {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| format!("malformed argument {word:?} (want key=value)"))?;
            match key {
                "kind" => spec.kind = WorkloadKind::parse(value)?,
                "n" => {
                    spec.n = value
                        .parse()
                        .map_err(|_| format!("n={value:?} is not a rank count"))?;
                    if spec.n == 0 || spec.n > 4096 {
                        return Err(format!("n={} out of range 1..=4096", spec.n));
                    }
                }
                "proto" => spec.protocol = parse_protocol(value)?,
                "rounds" => {
                    spec.rounds = value
                        .parse()
                        .map_err(|_| format!("rounds={value:?} is not a number"))?
                }
                "ckpt" => {
                    spec.ckpt = value
                        .parse()
                        .map_err(|_| format!("ckpt={value:?} is not a step count"))?;
                    if spec.ckpt == 0 {
                        return Err("ckpt=0: checkpoint period must be positive".into());
                    }
                }
                "workers" => {
                    spec.workers = value
                        .parse()
                        .map_err(|_| format!("workers={value:?} is not a number"))?
                }
                "engine" => {
                    spec.engine = match value {
                        "tasks" => EngineKind::Tasks,
                        "threads" => EngineKind::Threads,
                        other => return Err(format!("engine={other:?} is not tasks|threads")),
                    }
                }
                "detector" => spec.detector = parse_bool("detector", value)?,
                "kill" => {
                    let (rank, step) = value.split_once('@').ok_or_else(|| {
                        format!("kill={value:?} is not rank@step (e.g. kill=1@4)")
                    })?;
                    spec.fault = Some(FaultSpec {
                        rank: rank
                            .parse()
                            .map_err(|_| format!("kill rank {rank:?} is not a rank"))?,
                        at_step: step
                            .parse()
                            .map_err(|_| format!("kill step {step:?} is not a step"))?,
                        wipe: false,
                        corrupt: false,
                    });
                }
                "wipe" => wipe = parse_bool("wipe", value)?,
                "corrupt" => corrupt = parse_bool("corrupt", value)?,
                other => return Err(format!("unknown SUBMIT key {other:?}")),
            }
        }
        if let Some(fault) = &mut spec.fault {
            fault.wipe = wipe || corrupt;
            fault.corrupt = corrupt;
            if fault.rank >= spec.n {
                return Err(format!(
                    "kill rank {} out of range for n={}",
                    fault.rank, spec.n
                ));
            }
        } else if wipe || corrupt {
            return Err("wipe/corrupt need a kill=rank@step".into());
        }
        if spec.detector && spec.engine != EngineKind::Threads {
            return Err("detector=on needs engine=threads".into());
        }
        Ok(spec)
    }

    /// One-line description for MEMBERS / logs.
    pub fn describe(&self) -> String {
        format!(
            "kind={} n={} proto={} rounds={} engine={}{}{}",
            self.kind.name(),
            self.n,
            self.protocol,
            self.rounds,
            match self.engine {
                EngineKind::Tasks => "tasks",
                EngineKind::Threads => "threads",
            },
            if self.detector { " detector=on" } else { "" },
            match &self.fault {
                Some(f) => format!(
                    " kill={}@{}{}{}",
                    f.rank,
                    f.at_step,
                    if f.wipe { " wipe" } else { "" },
                    if f.corrupt { " corrupt" } else { "" }
                ),
                None => String::new(),
            },
        )
    }

    /// The failure plan this spec's fault describes.
    pub fn failure_plan(&self) -> FailurePlan {
        match &self.fault {
            None => FailurePlan::none(),
            Some(f) if f.corrupt => FailurePlan::none().and_kill_wipe_corrupt(f.rank, f.at_step),
            Some(f) if f.wipe => FailurePlan::kill_wipe_at(f.rank, f.at_step),
            Some(f) => FailurePlan::kill_at(f.rank, f.at_step),
        }
    }

    /// The cluster configuration of this job in the `rank_base`
    /// namespace the service allocated for it.
    pub fn cluster_config(&self, rank_base: usize) -> ClusterConfig {
        let mut run = lclog_runtime::RunConfig::new(self.protocol)
            .with_checkpoint(CheckpointPolicy::EverySteps(self.ckpt));
        if self.engine == EngineKind::Tasks {
            run = run.with_engine(EngineMode::Tasks {
                workers: self.workers,
            });
        }
        if self.detector {
            run = run.with_detector(DetectorConfig::default());
        }
        ClusterConfig::new(self.n, run)
            .with_rank_base(rank_base)
            .with_failures(self.failure_plan())
            .with_max_wall(Duration::from_secs(120))
    }

    /// The workload instance this spec runs.
    pub fn workload(&self) -> Workload {
        Workload::new(self.kind, self.rounds)
    }
}

/// The engine-erased face of a tasks-mode job: what the service's
/// shared worker pool needs to drive any tenant regardless of its
/// concrete [`TaskApp`] type.
pub trait SweepJob: Send + Sync {
    /// Number of shards the job exposes.
    fn shards(&self) -> usize;
    /// One sweep of `shard`; true if anything progressed.
    fn sweep(&self, shard: usize) -> bool;
    /// The once-per-round leader duties; true if held frames moved.
    fn advance(&self) -> bool;
    /// True once every rank finished (or the watchdog fired).
    fn is_finished(&self) -> bool;
    /// Assemble the job's report (call once, after `is_finished`).
    fn take_report(&self) -> Result<RunReport, String>;
    /// GC every checkpoint generation the job wrote.
    fn clear_generations(&self) -> usize;
    /// `(done ranks, total ranks)`.
    fn progress(&self) -> (usize, usize);
    /// Crashes fired so far.
    fn kills(&self) -> u32;
}

impl<A: TaskApp> SweepJob for TaskJob<A> {
    fn shards(&self) -> usize {
        TaskJob::shards(self)
    }
    fn sweep(&self, shard: usize) -> bool {
        TaskJob::sweep(self, shard)
    }
    fn advance(&self) -> bool {
        TaskJob::advance(self)
    }
    fn is_finished(&self) -> bool {
        TaskJob::is_finished(self)
    }
    fn take_report(&self) -> Result<RunReport, String> {
        TaskJob::report(self)
    }
    fn clear_generations(&self) -> usize {
        TaskJob::clear_generations(self)
    }
    fn progress(&self) -> (usize, usize) {
        TaskJob::progress(self)
    }
    fn kills(&self) -> u32 {
        TaskJob::kills_fired(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<JobSpec, String> {
        JobSpec::parse(s.split_whitespace())
    }

    #[test]
    fn parses_a_full_submit_line() {
        let spec =
            parse("kind=pairs n=6 proto=tdis rounds=10 ckpt=3 engine=tasks kill=2@4 wipe=on")
                .unwrap();
        assert_eq!(spec.kind, WorkloadKind::Pairs);
        assert_eq!(spec.n, 6);
        assert_eq!(spec.protocol, ProtocolKind::TdiSparse(8));
        assert_eq!(spec.rounds, 10);
        let fault = spec.fault.unwrap();
        assert_eq!((fault.rank, fault.at_step), (2, 4));
        assert!(fault.wipe);
        assert!(!fault.corrupt);
    }

    #[test]
    fn rejects_malformed_submits() {
        assert!(parse("kind=torus").unwrap_err().contains("workload kind"));
        assert!(parse("n=0").unwrap_err().contains("out of range"));
        assert!(parse("proto=xyz").unwrap_err().contains("protocol"));
        assert!(parse("kill=9").unwrap_err().contains("rank@step"));
        assert!(parse("n=4 kill=7@2").unwrap_err().contains("out of range"));
        assert!(parse("wipe=on").unwrap_err().contains("need a kill"));
        assert!(parse("detector=on").unwrap_err().contains("engine=threads"));
        assert!(parse("frobnicate=yes").unwrap_err().contains("unknown"));
    }

    #[test]
    fn corrupt_implies_wipe() {
        let spec = parse("kill=1@3 corrupt=on").unwrap();
        let fault = spec.fault.unwrap();
        assert!(fault.wipe && fault.corrupt);
    }
}
