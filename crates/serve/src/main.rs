//! `lclog-serve` — run the persistent cluster service.
//!
//! ```text
//! lclog-serve [--addr 127.0.0.1:7117] [--workers 4]
//! ```
//!
//! Talk to it with anything that speaks lines over TCP:
//!
//! ```text
//! $ printf 'SUBMIT kind=ring n=8 proto=tdi rounds=12\nSTATUS 1\n' | nc 127.0.0.1 7117
//! ```

use lclog_serve::{Service, ServiceConfig};

fn main() {
    let mut addr = "127.0.0.1:7117".to_string();
    let mut workers = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| {
                    eprintln!("--addr requires a host:port");
                    std::process::exit(2);
                })
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--workers requires a number");
                        std::process::exit(2);
                    })
            }
            "--help" | "-h" => {
                println!("lclog-serve [--addr 127.0.0.1:7117] [--workers 4]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let service = Service::start(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    match service.listen(&addr) {
        Ok(bound) => {
            println!("lclog-serve listening on {bound} ({workers} sweep workers)");
            println!("commands: SUBMIT STATUS REPORT DIGESTS METRICS MEMBERS SNAPSHOT DRAIN RETIRE PING");
        }
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    }
    // The accept loop owns the process from here; park the main thread.
    loop {
        std::thread::park();
    }
}
