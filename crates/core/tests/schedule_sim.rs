//! A miniature message-passing simulator driving the protocol objects
//! directly (no runtime, no threads): a random script of sends and a
//! random gate-respecting delivery scheduler, used to property-check
//! the protocol invariants the paper's correctness argument (§III.D)
//! rests on.

use lclog_core::{make_protocol, DeliveryVerdict, LoggingProtocol, ProtocolKind, Rank};
use proptest::prelude::*;
use std::collections::VecDeque;

/// One in-flight message.
#[derive(Debug, Clone)]
struct Msg {
    src: Rank,
    dst: Rank,
    send_index: u64,
    piggyback: Vec<u8>,
}

/// Deterministic mini-cluster over the protocol objects.
struct Sim {
    procs: Vec<Box<dyn LoggingProtocol>>,
    /// Per (src,dst) channel, FIFO.
    channels: Vec<VecDeque<Msg>>,
    send_counts: Vec<u64>,
    deliver_counts: Vec<u64>,
    n: usize,
    /// Ack logger submissions immediately after each delivery.
    instant_logger: bool,
}

impl Sim {
    fn new(kind: ProtocolKind, n: usize) -> Self {
        Sim {
            procs: (0..n).map(|r| make_protocol(kind, r, n)).collect(),
            channels: (0..n * n).map(|_| VecDeque::new()).collect(),
            send_counts: vec![0; n * n],
            deliver_counts: vec![0; n * n],
            n,
            instant_logger: true,
        }
    }

    fn without_instant_logger(kind: ProtocolKind, n: usize) -> Self {
        let mut sim = Self::new(kind, n);
        sim.instant_logger = false;
        sim
    }

    fn send(&mut self, src: Rank, dst: Rank) {
        let idx = &mut self.send_counts[src * self.n + dst];
        *idx += 1;
        let send_index = *idx;
        let art = self.procs[src].on_send(dst, send_index);
        self.channels[src * self.n + dst].push_back(Msg {
            src,
            dst,
            send_index,
            piggyback: art.piggyback,
        });
    }

    /// Channels whose head message passes FIFO + protocol gates.
    fn deliverable_channels(&self) -> Vec<usize> {
        (0..self.n * self.n)
            .filter(|&c| {
                self.channels[c].front().is_some_and(|m| {
                    self.deliver_counts[c] + 1 == m.send_index
                        && matches!(
                            self.procs[m.dst].deliverable(m.src, m.send_index, &m.piggyback),
                            DeliveryVerdict::Deliver
                        )
                })
            })
            .collect()
    }

    fn deliver_from(&mut self, channel: usize) {
        let m = self.channels[channel].pop_front().expect("head present");
        self.deliver_counts[channel] += 1;
        self.procs[m.dst]
            .on_deliver(m.src, m.send_index, &m.piggyback)
            .expect("gate approved");
        // Model an instantly-responsive event logger so pessimistic
        // logging's send gate opens again (the gate-toggling itself is
        // covered by `prop_pessim_send_gate_consistency`).
        if self.instant_logger && self.procs[m.dst].wants_event_logger() {
            let upto = self.procs[m.dst].delivered_total();
            let _ = self.procs[m.dst].drain_determinants_for_logger();
            self.procs[m.dst].on_logger_ack(upto);
        }
    }

    fn in_flight(&self) -> usize {
        self.channels.iter().map(VecDeque::len).sum()
    }
}

/// A random communication script: (src, dst) pairs. Sends happen up
/// front (interleaved with deliveries by the scheduler picks).
fn script_strategy(n: usize, len: usize) -> impl Strategy<Value = Vec<(Rank, Rank)>> {
    proptest::collection::vec((0..n, 0..n), 0..len)
}

fn all_kinds() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Tdi),
        Just(ProtocolKind::Tag),
        Just(ProtocolKind::Tel),
        Just(ProtocolKind::TagF(1)),
        Just(ProtocolKind::Pessim),
    ]
}

/// Run: interleave sends and random deliveries (seeded), then drain.
/// Returns delivered totals per process. Panics (test failure) if the
/// system wedges with messages in flight but no open gate.
fn run_schedule(kind: ProtocolKind, n: usize, script: &[(Rank, Rank)], seed: u64) -> Vec<u64> {
    let mut sim = Sim::new(kind, n);
    let mut rng = seed;
    let mut next = || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (rng >> 33) as usize
    };
    for &(src, dst) in script {
        sim.send(src, dst);
        // Randomly deliver between 0 and 2 pending messages.
        for _ in 0..(next() % 3) {
            let open = sim.deliverable_channels();
            if open.is_empty() {
                break;
            }
            let pick = open[next() % open.len()];
            sim.deliver_from(pick);
        }
    }
    // Drain.
    while sim.in_flight() > 0 {
        let open = sim.deliverable_channels();
        assert!(
            !open.is_empty(),
            "{kind}: wedged with {} messages in flight (no orphan-free schedule)",
            sim.in_flight()
        );
        let pick = open[next() % open.len()];
        sim.deliver_from(pick);
    }
    (0..n).map(|r| sim.procs[r].delivered_total()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Liveness in normal operation: no protocol's gate can wedge a
    /// FIFO-respecting scheduler, for any script and any schedule.
    #[test]
    fn prop_no_protocol_wedges_in_normal_operation(
        kind in all_kinds(),
        script in script_strategy(4, 60),
        seed in any::<u64>(),
    ) {
        let delivered = run_schedule(kind, 4, &script, seed);
        let total: u64 = delivered.iter().sum();
        prop_assert_eq!(total, script.len() as u64, "every send is delivered exactly once");
    }

    /// Delivery-order invariance of TDI's state: whatever
    /// gate-respecting schedule runs, each process ends at the same
    /// interval index (the foundation of the paper's claim that
    /// relaxed-order recovery is consistent).
    #[test]
    fn prop_tdi_delivered_totals_schedule_invariant(
        script in script_strategy(4, 50),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = run_schedule(ProtocolKind::Tdi, 4, &script, seed_a);
        let b = run_schedule(ProtocolKind::Tdi, 4, &script, seed_b);
        prop_assert_eq!(a, b);
    }

    /// TDI's piggyback is always exactly n identifiers; TAG-f's never
    /// exceeds what unbounded TAG would carry.
    #[test]
    fn prop_piggyback_size_relations(
        script in script_strategy(4, 40),
        seed in any::<u64>(),
    ) {
        let n = 4;
        let mut tdi = Sim::new(ProtocolKind::Tdi, n);
        let mut tag = Sim::new(ProtocolKind::Tag, n);
        let mut tagf = Sim::new(ProtocolKind::TagF(1), n);
        let mut rng = seed;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        for &(src, dst) in &script {
            // Drive all three sims through the same script with the
            // same (deterministic) delivery choices.
            for sim in [&mut tdi, &mut tag, &mut tagf] {
                sim.send(src, dst);
            }
            if next() % 2 == 0 {
                for sim in [&mut tdi, &mut tag, &mut tagf] {
                    let open = sim.deliverable_channels();
                    if let Some(&c) = open.first() {
                        sim.deliver_from(c);
                    }
                }
            }
        }
        // Compare per-send piggyback id counts on one more probe send.
        let t = tdi.procs[0].on_send(1, 1_000).id_count;
        prop_assert_eq!(t, n as u64);
        let full = tag.procs[0].on_send(1, 1_000).id_count;
        let bounded = tagf.procs[0].on_send(1, 1_000).id_count;
        // TAG-f counts 4 ids + holders per det; unbounded TAG counts 4
        // per det but over a superset of determinants once dets
        // stabilize. The meaningful relation: bounded carries no
        // *more determinants* than full. Compare det counts by
        // decoding.
        let full_dets: Vec<lclog_core::Determinant> =
            lclog_wire::decode_from_slice(&tag.procs[0].on_send(1, 1_001).piggyback).unwrap();
        let bounded_dets: Vec<(lclog_core::Determinant, Vec<u32>)> =
            lclog_wire::decode_from_slice(&tagf.procs[0].on_send(1, 1_001).piggyback).unwrap();
        prop_assert!(bounded_dets.len() <= full_dets.len(),
            "bounded {} vs full {} (raw ids {} vs {})",
            bounded_dets.len(), full_dets.len(), bounded, full);
    }

    /// Pessimistic logging: send_ready toggles exactly with unstable
    /// determinants, regardless of schedule.
    #[test]
    fn prop_pessim_send_gate_consistency(
        script in script_strategy(3, 30),
        seed in any::<u64>(),
    ) {
        let n = 3;
        let mut sim = Sim::without_instant_logger(ProtocolKind::Pessim, n);
        let mut rng = seed;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        for &(src, dst) in &script {
            sim.send(src, dst);
            if next() % 2 == 0 {
                let open = sim.deliverable_channels();
                if let Some(&c) = open.first() {
                    let dst_of_c = sim.channels[c].front().unwrap().dst;
                    sim.deliver_from(c);
                    // Immediately after a delivery, the deliverer is
                    // not send-ready until an ack.
                    prop_assert!(!sim.procs[dst_of_c].send_ready());
                    let upto = sim.procs[dst_of_c].delivered_total();
                    let dets = sim.procs[dst_of_c].drain_determinants_for_logger();
                    prop_assert!(!dets.is_empty());
                    sim.procs[dst_of_c].on_logger_ack(upto);
                    prop_assert!(sim.procs[dst_of_c].send_ready());
                }
            }
        }
    }
}

/// Non-property regression: a deterministic TDI recovery replay in an
/// adversarial order still converges to the original state.
#[test]
fn tdi_relaxed_replay_reaches_original_vector() {
    use lclog_core::Tdi;
    let n = 3;
    // Original execution at P2: deliver (0,#1), (1,#1), (0,#2).
    let mut p0 = Tdi::new(0, n);
    let mut p1 = Tdi::new(1, n);
    let mut p2 = Tdi::new(2, n);
    let a = p0.on_send(2, 1);
    let b = p1.on_send(2, 1);
    p2.on_deliver(0, 1, &a.piggyback).unwrap();
    p2.on_deliver(1, 1, &b.piggyback).unwrap();
    let c = p0.on_send(2, 2);
    p2.on_deliver(0, 2, &c.piggyback).unwrap();
    let original = p2.depend_interval().clone();

    // Recovery replay in a different (gate-legal) order: b first.
    let mut p2r = Tdi::new(2, n);
    p2r.on_deliver(1, 1, &b.piggyback).unwrap();
    p2r.on_deliver(0, 1, &a.piggyback).unwrap();
    p2r.on_deliver(0, 2, &c.piggyback).unwrap();
    assert_eq!(p2r.depend_interval(), &original, "join-semilattice merge is order-invariant");
}
