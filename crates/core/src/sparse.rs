//! TDI-S: sparse (delta-encoded) dependency tracking.
//!
//! The paper's TDI piggybacks the full n-entry `depend_interval`
//! vector on every send — O(n) bytes and merge time per message, which
//! is ruinous at n = 1024. TDI-S keeps the *protocol* of TDI bit-for-
//! bit (same vector, same delivery gate, same merge) but changes the
//! *wire representation* to per-channel delta frames, the scheme of
//! hybrid-buffering causal delivery and scalable causal broadcast:
//!
//! * **FULL frame** (`kind 0`): `[kind u8][epoch varint][n × value
//!   varint]` — the whole vector, self-describing given `n`. Sent as
//!   the first frame on a channel, every `resync_interval` frames
//!   thereafter, and whenever the delta would not actually be smaller.
//! * **DELTA frame** (`kind 1`): `[kind u8][epoch varint][count
//!   varint][count × (index varint, value varint)]` — only the entries
//!   that changed since the previous frame *on that channel*. Values
//!   are **absolute** interval indices, not diffs: the vector is
//!   monotone, so applying a delta on top of any dominated base
//!   reconstructs the sender's exact vector, and on top of a *newer*
//!   base yields a safe over-approximation (see resync below).
//!
//! Frames are sequenced by the channel's `send_index` (the kernel
//! already delivers app messages in per-sender FIFO order, so the
//! receiver decodes a channel's frames strictly sequentially) and
//! tagged with the sender's **epoch**, bumped on every checkpoint
//! restore so a recovered sender's fresh delta chain can never be
//! misapplied to a pre-crash base.
//!
//! ## Receiver bases and recovery
//!
//! The receiver keeps, per source, the last decoded sender vector
//! (`epoch`, `seq`, values) — the *base* the next delta applies to.
//! Bases are part of the checkpoint image: `do_checkpoint` snapshots
//! tracking and delivery state together, so a restored base's `seq`
//! equals the restored `last_deliver_index` and survivors' logged
//! resends (which re-attach their **original** sparse framing) decode
//! directly against it. Without checkpointed bases a restored receiver
//! could only bootstrap from resync snapshots, whose own-entry may
//! exceed the rolled-back gate on *every* channel at once — a
//! deadlock. Sender-side encode state is deliberately *not*
//! checkpointed: it resets on restore, forcing the next transmitted
//! frame on each channel to be FULL (self-healing).
//!
//! ## Resync protocol
//!
//! A frame the receiver cannot decode (epoch mismatch or sequence gap,
//! both impossible in steady state but reachable around recovery)
//! parks as `Wait` and queues a **resync request** for that source.
//! The kernel drains the queue on its tick, sends `RESYNC_REQ`, and
//! the source answers with a snapshot `[epoch][seq = last frame
//! sent][full vector]`, resetting its delta chain to the snapshot.
//! Frames at or below the installed base's seq then resolve to the
//! base vector itself — a dominating over-approximation of the frame's
//! true vector, which is safe on both sides of the protocol: the
//! delivery gate only becomes *stricter* (condition C is never
//! violated) and the merge result is dominated by what the next frame
//! would install anyway. The dense vector is retained as the real
//! protocol state and doubles as a debug-assert oracle: debug builds
//! run a shadow receiver per channel and verify every encoded frame
//! decodes back to the dense vector exactly.
//!
//! ## Dirty journal (O(changed) encoding)
//!
//! The sender does **not** scan the n-entry change-stamp array per
//! send. Every `touch` appends its entry index to a global dirty
//! journal (deduped per stamp), and each channel keeps a cursor into
//! it; a delta is assembled from the journal suffix past the cursor —
//! O(entries changed since that channel's last frame). The FULL-frame
//! byte total is maintained incrementally, so the FULL-vs-DELTA size
//! choice is O(1). The journal is compacted once it exceeds
//! `journal_cap()`: channels pinning the prefix too far back are
//! demoted to a FULL frame on their next send, bounding journal
//! memory regardless of traffic skew. Debug builds re-run the old
//! stamp scan and assert the journal suffix matches it exactly.

use crate::protocol::{DeliveryVerdict, LoggingProtocol, SendArtifacts};
use crate::stats::FrameStats;
use crate::types::{ProtocolError, ProtocolKind, Rank};
use lclog_wire::{varint, Reader, WireError};
use parking_lot::Mutex;
use std::collections::BTreeSet;

/// Frame kind byte: full vector.
const KIND_FULL: u8 = 0;
/// Frame kind byte: delta against the previous frame on the channel.
const KIND_DELTA: u8 = 1;

/// Per-destination sender-side encode state (volatile; reset on
/// restore so the first post-recovery frame per channel is FULL).
#[derive(Debug, Clone)]
struct SendChannel {
    /// A frame has been encoded for this destination this epoch.
    primed: bool,
    /// Global change-stamp as of the last frame to this destination;
    /// entries stamped later than this go into the next delta. Kept
    /// as the debug oracle for the journal cursor below.
    last_stamp: u64,
    /// Absolute cursor into the dirty journal: journal entries at or
    /// beyond this position changed since the last frame on this
    /// channel, so the next delta is assembled in O(changed) instead
    /// of an O(n) change-stamp scan.
    log_pos: usize,
    /// `send_index` of the last frame encoded for this destination.
    last_seq: u64,
    /// Frames since the last FULL (periodic resync counter).
    since_full: u32,
}

impl SendChannel {
    fn fresh() -> Self {
        SendChannel {
            primed: false,
            last_stamp: 0,
            log_pos: 0,
            last_seq: 0,
            since_full: 0,
        }
    }
}

/// Receiver-side decode base for one source channel.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Base {
    /// Sender epoch the base belongs to.
    epoch: u64,
    /// `send_index` of the frame (or resync snapshot) that produced it.
    seq: u64,
    /// The sender's full vector as of `seq`.
    vec: Vec<u64>,
}

/// A parsed piggyback frame.
enum Frame {
    Full { epoch: u64, values: Vec<u64> },
    Delta { epoch: u64, entries: Vec<(usize, u64)> },
}

/// How a frame resolved against the receiver's base.
enum Resolved {
    /// The sender's exact vector at this frame.
    Exact { epoch: u64, vec: Vec<u64> },
    /// Frame at or below the base's seq: the base vector stands in as
    /// a dominating over-approximation (resync-snapshot corner).
    Stale,
    /// Epoch mismatch or sequence gap — a resync is needed.
    NeedResync,
}

/// The TDI protocol over sparse per-channel delta frames.
pub struct SparseTdi {
    me: Rank,
    n: usize,
    /// A FULL frame is forced after this many consecutive deltas.
    resync_interval: u32,
    /// The dense `depend_interval` vector — the real protocol state
    /// (and the oracle every encoded frame is checked against in debug
    /// builds).
    depend: Vec<u64>,
    /// Sender framing epoch; bumped on checkpoint restore.
    epoch: u64,
    /// Global modification counter for `depend`.
    stamp: u64,
    /// `stamped[i]` = value of `stamp` when `depend[i]` last changed.
    stamped: Vec<u64>,
    /// Dirty journal: every entry index, in touch order, appended at
    /// most once per stamp. Channels hold absolute cursors into it
    /// (`SendChannel::log_pos`), so assembling a delta costs
    /// O(entries changed since that channel's last frame) instead of
    /// an O(n) scan of `stamped`.
    dirty_log: Vec<Rank>,
    /// Journal entries dropped by compaction; `dirty_log[0]` is
    /// absolute position `compacted`.
    compacted: usize,
    /// Incrementally-maintained Σ `varint::len_u64(depend[i])` — the
    /// body size of a FULL frame — so the frame-size choice in
    /// `on_send` is O(1) instead of O(n).
    full_body: usize,
    /// Per-destination encode state.
    chans: Vec<SendChannel>,
    /// Per-source decode bases (checkpointed).
    bases: Vec<Option<Base>>,
    /// Sources needing a resync snapshot; filled by the (`&self`)
    /// delivery gate, drained by the kernel tick.
    pending_resync: Mutex<BTreeSet<Rank>>,
    stats: FrameStats,
    /// Debug oracle: a shadow receiver per destination replaying our
    /// own frames; must always reconstruct `depend` exactly.
    #[cfg(debug_assertions)]
    shadow: Vec<Option<Vec<u64>>>,
}

impl SparseTdi {
    /// A fresh TDI-S endpoint for rank `me` of `n`, forcing a FULL
    /// frame after `resync_interval` consecutive deltas per channel.
    pub fn new(me: Rank, n: usize, resync_interval: u32) -> Self {
        assert!(me < n, "rank {me} out of range for n={n}");
        SparseTdi {
            me,
            n,
            resync_interval: resync_interval.max(1),
            depend: vec![0; n],
            epoch: 0,
            stamp: 0,
            stamped: vec![0; n],
            dirty_log: Vec::new(),
            compacted: 0,
            full_body: n * varint::len_u64(0),
            chans: vec![SendChannel::fresh(); n],
            bases: vec![None; n],
            pending_resync: Mutex::new(BTreeSet::new()),
            stats: FrameStats::default(),
            #[cfg(debug_assertions)]
            shadow: vec![None; n],
        }
    }

    /// Record a change to `depend[k]` under the current stamp: journal
    /// the index (once per stamp) and keep the FULL-frame byte total
    /// current.
    fn touch(&mut self, k: Rank, value: u64) {
        if self.stamped[k] != self.stamp {
            self.dirty_log.push(k);
            self.stamped[k] = self.stamp;
        }
        self.full_body += varint::len_u64(value);
        self.full_body -= varint::len_u64(self.depend[k]);
        self.depend[k] = value;
    }

    /// Journal length that triggers compaction. Generous enough that
    /// steady traffic rarely compacts; small enough to bound memory.
    fn journal_cap(&self) -> usize {
        (2 * self.n).max(128)
    }

    /// Drop the journal prefix every primed channel has already
    /// framed. A channel pinning the prefix more than half a cap back
    /// is demoted (next frame FULL) rather than allowed to hold the
    /// journal hostage, so journal memory is bounded by the cap
    /// regardless of traffic skew. Amortized O(1) per touch: each
    /// compaction drops at least half a cap of entries.
    fn compact_journal(&mut self) {
        let cap = self.journal_cap();
        if self.dirty_log.len() <= cap {
            return;
        }
        let abs_end = self.compacted + self.dirty_log.len();
        let floor = abs_end - cap / 2;
        let mut min = abs_end;
        for chan in &mut self.chans {
            if !chan.primed {
                continue;
            }
            if chan.log_pos < floor {
                chan.primed = false; // too stale: forget its delta chain
            } else {
                min = min.min(chan.log_pos);
            }
        }
        self.dirty_log.drain(..min - self.compacted);
        self.compacted = min;
    }

    fn parse_frame(&self, piggyback: &[u8]) -> Result<Frame, ProtocolError> {
        let mut r = Reader::new(piggyback);
        let frame = Self::parse_frame_inner(&mut r, self.n)?;
        r.finish()
            .map_err(|_| ProtocolError::Corrupt("trailing bytes after TDI-S frame"))?;
        Ok(frame)
    }

    fn parse_frame_inner(r: &mut Reader<'_>, n: usize) -> Result<Frame, ProtocolError> {
        let corrupt = |_: WireError| ProtocolError::Corrupt("truncated TDI-S frame");
        let kind = r.take_byte().map_err(corrupt)?;
        let epoch = varint::read_u64(r).map_err(corrupt)?;
        match kind {
            KIND_FULL => {
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(varint::read_u64(r).map_err(corrupt)?);
                }
                Ok(Frame::Full { epoch, values })
            }
            KIND_DELTA => {
                let count = varint::read_u64(r).map_err(corrupt)? as usize;
                if count > n {
                    return Err(ProtocolError::Corrupt("TDI-S delta count exceeds n"));
                }
                let mut entries = Vec::with_capacity(count);
                let mut prev: Option<usize> = None;
                for _ in 0..count {
                    let idx = varint::read_u64(r).map_err(corrupt)? as usize;
                    if idx >= n {
                        return Err(ProtocolError::Corrupt("TDI-S delta index out of range"));
                    }
                    // Entries are emitted in strictly increasing index
                    // order; enforcing it rejects forged duplicates.
                    if prev.is_some_and(|p| idx <= p) {
                        return Err(ProtocolError::Corrupt("TDI-S delta indices not increasing"));
                    }
                    prev = Some(idx);
                    let value = varint::read_u64(r).map_err(corrupt)?;
                    entries.push((idx, value));
                }
                Ok(Frame::Delta { epoch, entries })
            }
            _ => Err(ProtocolError::Corrupt("unknown TDI-S frame kind")),
        }
    }

    /// Resolve a parsed frame against the base for `src`, without
    /// mutating anything.
    fn resolve(&self, src: Rank, send_index: u64, frame: &Frame) -> Resolved {
        match frame {
            Frame::Full { epoch, values } => Resolved::Exact {
                epoch: *epoch,
                vec: values.clone(),
            },
            Frame::Delta { epoch, entries } => match &self.bases[src] {
                Some(base) if base.epoch == *epoch && send_index == base.seq + 1 => {
                    let mut vec = base.vec.clone();
                    for (idx, value) in entries {
                        vec[*idx] = *value;
                    }
                    Resolved::Exact { epoch: *epoch, vec }
                }
                Some(base) if base.epoch == *epoch && send_index <= base.seq => Resolved::Stale,
                _ => Resolved::NeedResync,
            },
        }
    }

    /// The piggyback's entry for `self.me` — all the delivery gate
    /// needs — without materializing the whole vector. `None` means
    /// the frame cannot be decoded yet (resync needed).
    fn gate_entry(&self, src: Rank, send_index: u64, frame: &Frame) -> Option<u64> {
        match frame {
            Frame::Full { values, .. } => Some(values[self.me]),
            Frame::Delta { epoch, entries } => match &self.bases[src] {
                Some(base) if base.epoch == *epoch && send_index == base.seq + 1 => Some(
                    entries
                        .iter()
                        .find(|(idx, _)| *idx == self.me)
                        .map(|(_, v)| *v)
                        .unwrap_or(base.vec[self.me]),
                ),
                Some(base) if base.epoch == *epoch && send_index <= base.seq => {
                    Some(base.vec[self.me])
                }
                _ => None,
            },
        }
    }

    /// Queue a resync request toward `src` (deduplicated; drained by
    /// the kernel tick via `take_resync_requests`).
    fn request_resync(&self, src: Rank) {
        self.pending_resync.lock().insert(src);
    }

    /// Replay one of our own frames through the shadow receiver for
    /// `dst` and assert it reconstructs the dense vector exactly — the
    /// debug-assert oracle of the encoding.
    #[cfg(debug_assertions)]
    fn check_oracle(&mut self, dst: Rank, piggyback: &[u8]) {
        let frame = self
            .parse_frame(piggyback)
            .expect("own frame must parse cleanly");
        let decoded = match frame {
            Frame::Full { values, .. } => values,
            Frame::Delta { entries, .. } => {
                let mut vec = self.shadow[dst]
                    .clone()
                    .expect("delta frame cannot precede the channel's first FULL");
                for (idx, value) in entries {
                    vec[idx] = value;
                }
                vec
            }
        };
        debug_assert_eq!(
            decoded, self.depend,
            "TDI-S frame to {dst} does not decode to the dense vector"
        );
        self.shadow[dst] = Some(decoded);
    }
}

impl LoggingProtocol for SparseTdi {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::TdiSparse(self.resync_interval)
    }

    fn n(&self) -> usize {
        self.n
    }

    fn me(&self) -> Rank {
        self.me
    }

    fn delivered_total(&self) -> u64 {
        self.depend[self.me]
    }

    fn interval_vector(&self) -> Option<Vec<u64>> {
        Some(self.depend.clone())
    }

    fn on_send(&mut self, dst: Rank, send_index: u64) -> SendArtifacts {
        debug_assert!(dst < self.n);
        let chan = &self.chans[dst];
        debug_assert!(
            !chan.primed || send_index > chan.last_seq,
            "send_index must advance per destination"
        );
        // Entries changed since the last frame on this channel: the
        // dirty-journal suffix past the channel's cursor, sorted and
        // deduped (an entry re-touched at several stamps appears once
        // per stamp). O(changed), not O(n). A channel whose cursor
        // predates the compacted prefix — never primed, or demoted by
        // `compact_journal` — has no usable suffix and sends FULL.
        let lagging = !chan.primed || chan.log_pos < self.compacted;
        let mut changed: Vec<usize> = if lagging {
            Vec::new()
        } else {
            self.dirty_log[chan.log_pos - self.compacted..].to_vec()
        };
        changed.sort_unstable();
        changed.dedup();
        #[cfg(debug_assertions)]
        if !lagging {
            let oracle: Vec<usize> = (0..self.n)
                .filter(|&i| self.stamped[i] > chan.last_stamp)
                .collect();
            debug_assert_eq!(changed, oracle, "dirty journal must match the stamp scan");
        }
        let delta_body: usize = changed
            .iter()
            .map(|&i| varint::len_u64(i as u64) + varint::len_u64(self.depend[i]))
            .sum::<usize>()
            + varint::len_u64(changed.len() as u64);
        let full_body = self.full_body;
        debug_assert_eq!(
            full_body,
            self.depend.iter().map(|&v| varint::len_u64(v)).sum::<usize>(),
            "incremental FULL-body total out of sync"
        );
        let full = lagging || chan.since_full >= self.resync_interval || delta_body >= full_body;

        let mut buf =
            Vec::with_capacity(1 + varint::len_u64(self.epoch) + delta_body.min(full_body));
        let id_count;
        if full {
            buf.push(KIND_FULL);
            varint::write_u64(&mut buf, self.epoch);
            for &v in &self.depend {
                varint::write_u64(&mut buf, v);
            }
            id_count = self.n as u64;
            self.stats.full_frames += 1;
        } else {
            buf.push(KIND_DELTA);
            varint::write_u64(&mut buf, self.epoch);
            varint::write_u64(&mut buf, changed.len() as u64);
            for &i in &changed {
                varint::write_u64(&mut buf, i as u64);
                varint::write_u64(&mut buf, self.depend[i]);
            }
            id_count = changed.len() as u64;
            self.stats.delta_frames += 1;
        }

        let abs_end = self.compacted + self.dirty_log.len();
        let chan = &mut self.chans[dst];
        chan.primed = true;
        chan.last_stamp = self.stamp;
        chan.log_pos = abs_end;
        chan.last_seq = send_index;
        chan.since_full = if full { 0 } else { chan.since_full + 1 };

        #[cfg(debug_assertions)]
        self.check_oracle(dst, &buf);

        SendArtifacts {
            piggyback: buf,
            id_count,
        }
    }

    fn deliverable(&self, src: Rank, send_index: u64, piggyback: &[u8]) -> DeliveryVerdict {
        let Ok(frame) = self.parse_frame(piggyback) else {
            return DeliveryVerdict::Wait;
        };
        match self.gate_entry(src, send_index, &frame) {
            Some(needs_me) if needs_me <= self.depend[self.me] => DeliveryVerdict::Deliver,
            Some(_) => DeliveryVerdict::Wait,
            None => {
                // Undecodable (post-recovery epoch change or gap):
                // park the message and ask the sender for a snapshot.
                self.request_resync(src);
                DeliveryVerdict::Wait
            }
        }
    }

    fn on_deliver(
        &mut self,
        src: Rank,
        send_index: u64,
        piggyback: &[u8],
    ) -> Result<(), ProtocolError> {
        let frame = self.parse_frame(piggyback)?;
        let (frame_epoch, sender_vec) = match self.resolve(src, send_index, &frame) {
            Resolved::Exact { epoch, vec } => (Some(epoch), vec),
            Resolved::Stale => {
                let base = self.bases[src].as_ref().expect("stale implies a base");
                (None, base.vec.clone())
            }
            Resolved::NeedResync => {
                self.request_resync(src);
                return Err(ProtocolError::NotDeliverable { src, send_index });
            }
        };
        if sender_vec[self.me] > self.depend[self.me] {
            return Err(ProtocolError::NotDeliverable { src, send_index });
        }
        self.stamp += 1;
        let own = self.depend[self.me] + 1;
        self.touch(self.me, own);
        for (k, &v) in sender_vec.iter().enumerate() {
            if k != self.me && v > self.depend[k] {
                self.touch(k, v);
            }
        }
        self.compact_journal();
        // Commit the decoded vector as the channel's new base (Stale
        // resolutions keep the existing, newer base).
        if let Some(epoch) = frame_epoch {
            let regresses = self.bases[src]
                .as_ref()
                .is_some_and(|b| b.epoch == epoch && b.seq >= send_index);
            if !regresses {
                self.bases[src] = Some(Base {
                    epoch,
                    seq: send_index,
                    vec: sender_vec,
                });
            }
        }
        Ok(())
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        // [epoch][n × depend][per-src: presence byte, then epoch, seq,
        // n × value] — hand-rolled so restore can validate exactly.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, self.epoch);
        for &v in &self.depend {
            varint::write_u64(&mut buf, v);
        }
        for base in &self.bases {
            match base {
                None => buf.push(0),
                Some(b) => {
                    buf.push(1);
                    varint::write_u64(&mut buf, b.epoch);
                    varint::write_u64(&mut buf, b.seq);
                    for &v in &b.vec {
                        varint::write_u64(&mut buf, v);
                    }
                }
            }
        }
        buf
    }

    fn restore_from_checkpoint(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        let corrupt = |_: WireError| ProtocolError::Corrupt("truncated TDI-S checkpoint");
        let mut r = Reader::new(bytes);
        let epoch = varint::read_u64(&mut r).map_err(corrupt)?;
        let mut depend = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            depend.push(varint::read_u64(&mut r).map_err(corrupt)?);
        }
        let mut bases = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            match r.take_byte().map_err(corrupt)? {
                0 => bases.push(None),
                1 => {
                    let b_epoch = varint::read_u64(&mut r).map_err(corrupt)?;
                    let seq = varint::read_u64(&mut r).map_err(corrupt)?;
                    let mut vec = Vec::with_capacity(self.n);
                    for _ in 0..self.n {
                        vec.push(varint::read_u64(&mut r).map_err(corrupt)?);
                    }
                    bases.push(Some(Base {
                        epoch: b_epoch,
                        seq,
                        vec,
                    }));
                }
                _ => return Err(ProtocolError::Corrupt("bad TDI-S base presence byte")),
            }
        }
        r.finish()
            .map_err(|_| ProtocolError::Corrupt("trailing bytes in TDI-S checkpoint"))?;

        self.depend = depend;
        self.bases = bases;
        // New framing epoch: a recovered sender's delta chain must
        // never be applied to a pre-crash base. Encode state resets so
        // the first post-recovery frame per channel is FULL.
        self.epoch = epoch + 1;
        self.stamp = 1;
        self.stamped = vec![1; self.n];
        self.dirty_log.clear();
        self.compacted = 0;
        self.full_body = self.depend.iter().map(|&v| varint::len_u64(v)).sum();
        self.chans = vec![SendChannel::fresh(); self.n];
        self.pending_resync.lock().clear();
        #[cfg(debug_assertions)]
        {
            self.shadow = vec![None; self.n];
        }
        Ok(())
    }

    fn take_resync_requests(&mut self) -> Vec<Rank> {
        let drained: Vec<Rank> = std::mem::take(&mut *self.pending_resync.lock())
            .into_iter()
            .collect();
        self.stats.resync_requests += drained.len() as u64;
        drained
    }

    fn resync_snapshot(&mut self, dst: Rank) -> Option<Vec<u8>> {
        if dst >= self.n || dst == self.me {
            return None;
        }
        // [epoch][seq of last frame sent][n × value]. Resetting the
        // channel's stamp is safe: `dst` is the channel's only
        // consumer and will decode future deltas against this
        // snapshot.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, self.epoch);
        varint::write_u64(&mut buf, self.chans[dst].last_seq);
        for &v in &self.depend {
            varint::write_u64(&mut buf, v);
        }
        let abs_end = self.compacted + self.dirty_log.len();
        let chan = &mut self.chans[dst];
        chan.primed = true;
        chan.last_stamp = self.stamp;
        chan.log_pos = abs_end;
        chan.since_full = 0;
        #[cfg(debug_assertions)]
        {
            self.shadow[dst] = Some(self.depend.clone());
        }
        Some(buf)
    }

    fn install_resync(&mut self, src: Rank, bytes: &[u8]) -> Result<(), ProtocolError> {
        let corrupt = |_: WireError| ProtocolError::Corrupt("truncated TDI-S resync snapshot");
        let mut r = Reader::new(bytes);
        let epoch = varint::read_u64(&mut r).map_err(corrupt)?;
        let seq = varint::read_u64(&mut r).map_err(corrupt)?;
        let mut vec = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            vec.push(varint::read_u64(&mut r).map_err(corrupt)?);
        }
        r.finish()
            .map_err(|_| ProtocolError::Corrupt("trailing bytes in TDI-S resync snapshot"))?;
        // Keep the newer of snapshot and existing base (a retransmitted
        // stale snapshot must not regress the decode chain).
        let newer = match &self.bases[src] {
            None => true,
            Some(b) => epoch > b.epoch || (epoch == b.epoch && seq >= b.seq),
        };
        if newer {
            self.bases[src] = Some(Base { epoch, seq, vec });
        }
        Ok(())
    }

    fn frame_stats(&self) -> Option<FrameStats> {
        Some(self.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::make_protocol;
    use crate::tdi::Tdi;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A dense-vs-sparse lockstep harness: every op is applied to both
    /// a `SparseTdi` fleet and a dense `Tdi` fleet, asserting the
    /// interval vectors never diverge.
    struct Lockstep {
        n: usize,
        sparse: Vec<SparseTdi>,
        dense: Vec<Tdi>,
        next_idx: Vec<Vec<u64>>,
    }

    impl Lockstep {
        fn new(n: usize, interval: u32) -> Self {
            Lockstep {
                n,
                sparse: (0..n).map(|r| SparseTdi::new(r, n, interval)).collect(),
                dense: (0..n).map(|r| Tdi::new(r, n)).collect(),
                next_idx: vec![vec![0; n]; n],
            }
        }

        /// Send src → dst through both stacks; returns true when the
        /// message was deliverable (and was delivered on both).
        fn send_and_deliver(&mut self, src: usize, dst: usize) -> bool {
            self.next_idx[src][dst] += 1;
            let idx = self.next_idx[src][dst];
            let sp_art = self.sparse[src].on_send(dst, idx);
            let de_art = self.dense[src].on_send(dst, idx);
            let sp = self.sparse[dst].deliverable(src, idx, &sp_art.piggyback);
            let de = self.dense[dst].deliverable(src, idx, &de_art.piggyback);
            assert_eq!(sp, de, "gates diverged for {src}->{dst} #{idx}");
            if sp == DeliveryVerdict::Deliver {
                self.sparse[dst]
                    .on_deliver(src, idx, &sp_art.piggyback)
                    .unwrap();
                self.dense[dst]
                    .on_deliver(src, idx, &de_art.piggyback)
                    .unwrap();
            }
            self.assert_vectors_equal();
            sp == DeliveryVerdict::Deliver
        }

        fn assert_vectors_equal(&self) {
            for r in 0..self.n {
                assert_eq!(
                    self.sparse[r].interval_vector(),
                    self.dense[r].interval_vector(),
                    "rank {r} diverged"
                );
            }
        }
    }

    #[test]
    fn first_frame_on_a_channel_is_full_then_deltas() {
        let mut p = SparseTdi::new(0, 4, 64);
        let art = p.on_send(1, 1);
        assert_eq!(art.piggyback[0], KIND_FULL);
        assert_eq!(art.id_count, 4);
        // Nothing changed: the delta is empty (and much smaller).
        let art2 = p.on_send(1, 2);
        assert_eq!(art2.piggyback[0], KIND_DELTA);
        assert_eq!(art2.id_count, 0);
        assert!(art2.piggyback.len() < art.piggyback.len());
        let stats = p.frame_stats().unwrap();
        assert_eq!(stats.full_frames, 1);
        assert_eq!(stats.delta_frames, 1);
    }

    #[test]
    fn periodic_full_frame_after_resync_interval() {
        let mut p = SparseTdi::new(0, 4, 3);
        assert_eq!(p.on_send(1, 1).piggyback[0], KIND_FULL);
        assert_eq!(p.on_send(1, 2).piggyback[0], KIND_DELTA);
        assert_eq!(p.on_send(1, 3).piggyback[0], KIND_DELTA);
        assert_eq!(p.on_send(1, 4).piggyback[0], KIND_DELTA);
        // since_full reached the interval: frame 5 resyncs.
        assert_eq!(p.on_send(1, 5).piggyback[0], KIND_FULL);
    }

    #[test]
    fn sparse_and_dense_agree_on_fig1_style_exchange() {
        let mut l = Lockstep::new(4, 2);
        assert!(l.send_and_deliver(1, 2));
        assert!(l.send_and_deliver(2, 3));
        assert!(l.send_and_deliver(3, 1));
        assert!(l.send_and_deliver(1, 0));
        assert!(l.send_and_deliver(0, 3));
    }

    #[test]
    fn dirty_journal_stays_bounded_and_demotes_laggards_to_full() {
        let n = 4;
        let mut l = Lockstep::new(n, 1_000_000);
        // Prime channel 0→3 so it holds a journal cursor, then leave
        // it idle while rank 0 churns: deliveries from 1 keep touching
        // its vector, sends to 1 keep that channel's cursor near the
        // journal tail.
        assert!(l.send_and_deliver(0, 3));
        for _ in 0..600 {
            l.send_and_deliver(1, 0);
            l.send_and_deliver(0, 1);
        }
        let cap = l.sparse[0].journal_cap();
        assert!(
            l.sparse[0].dirty_log.len() <= cap,
            "journal grew past its cap: {} > {cap}",
            l.sparse[0].dirty_log.len()
        );
        assert!(l.sparse[0].compacted > 0, "compaction never ran");
        // The idle channel was demoted rather than pinning the
        // journal; its next frame is a FULL that still decodes
        // exactly (the lockstep asserts the vectors agree).
        assert!(!l.sparse[0].chans[3].primed, "laggard should be demoted");
        l.next_idx[0][3] += 1;
        let idx = l.next_idx[0][3];
        let sp = l.sparse[0].on_send(3, idx);
        let de = l.dense[0].on_send(3, idx);
        assert_eq!(sp.piggyback[0], KIND_FULL);
        assert_eq!(
            l.sparse[3].deliverable(0, idx, &sp.piggyback),
            l.dense[3].deliverable(0, idx, &de.piggyback)
        );
        if l.sparse[3].deliverable(0, idx, &sp.piggyback) == DeliveryVerdict::Deliver {
            l.sparse[3].on_deliver(0, idx, &sp.piggyback).unwrap();
            l.dense[3].on_deliver(0, idx, &de.piggyback).unwrap();
        }
        l.assert_vectors_equal();
    }

    #[test]
    fn delta_without_base_waits_and_requests_resync() {
        let mut sender = SparseTdi::new(0, 3, 64);
        let _full = sender.on_send(1, 1);
        let delta = sender.on_send(1, 2);
        assert_eq!(delta.piggyback[0], KIND_DELTA);
        // A receiver that never saw the FULL cannot decode the delta.
        let mut rx = SparseTdi::new(1, 3, 64);
        assert_eq!(
            rx.deliverable(0, 2, &delta.piggyback),
            DeliveryVerdict::Wait
        );
        assert_eq!(rx.take_resync_requests(), vec![0]);
        // Snapshot + install heals the channel.
        let snap = sender.resync_snapshot(1).unwrap();
        rx.install_resync(0, &snap).unwrap();
        assert_eq!(
            rx.deliverable(0, 2, &delta.piggyback),
            DeliveryVerdict::Deliver
        );
        rx.on_deliver(0, 2, &delta.piggyback).unwrap();
        assert_eq!(rx.frame_stats().unwrap().resync_requests, 1);
    }

    #[test]
    fn restore_bumps_epoch_and_forces_full_frames() {
        let mut p = SparseTdi::new(0, 3, 64);
        let _ = p.on_send(1, 1);
        let _ = p.on_send(1, 2);
        let blob = p.checkpoint_bytes();
        let mut q = SparseTdi::new(0, 3, 64);
        q.restore_from_checkpoint(&blob).unwrap();
        assert_eq!(q.epoch, p.epoch + 1);
        // First post-restore frame on every channel is FULL.
        let art = q.on_send(1, 3);
        assert_eq!(art.piggyback[0], KIND_FULL);
    }

    #[test]
    fn checkpoint_preserves_receiver_bases() {
        let mut l = Lockstep::new(3, 64);
        assert!(l.send_and_deliver(0, 1));
        assert!(l.send_and_deliver(0, 1));
        // Checkpoint rank 1 and restore into a fresh instance: the
        // 0→1 base must survive so the next delta decodes directly.
        let blob = l.sparse[1].checkpoint_bytes();
        let mut restored = SparseTdi::new(1, 3, 64);
        restored.restore_from_checkpoint(&blob).unwrap();
        let art = l.sparse[0].on_send(1, 3);
        assert_eq!(art.piggyback[0], KIND_DELTA);
        assert_eq!(
            restored.deliverable(0, 3, &art.piggyback),
            DeliveryVerdict::Deliver
        );
        restored.on_deliver(0, 3, &art.piggyback).unwrap();
        assert!(restored.take_resync_requests().is_empty());
    }

    #[test]
    fn garbage_checkpoint_and_frames_are_rejected() {
        let mut p = SparseTdi::new(0, 3, 64);
        assert!(p.restore_from_checkpoint(&[0xFF, 0x13, 0x37]).is_err());
        // Corrupt piggybacks wait (gate) and error (on_deliver), as in
        // dense TDI.
        assert_eq!(p.deliverable(1, 1, &[9, 9, 9]), DeliveryVerdict::Wait);
        assert!(matches!(
            p.on_deliver(1, 1, &[9, 9, 9]),
            Err(ProtocolError::Corrupt(_))
        ));
        // A forged delta with out-of-range index is rejected too.
        let mut forged = vec![KIND_DELTA];
        varint::write_u64(&mut forged, 0); // epoch
        varint::write_u64(&mut forged, 1); // count
        varint::write_u64(&mut forged, 7); // index >= n
        varint::write_u64(&mut forged, 1);
        assert_eq!(p.deliverable(1, 1, &forged), DeliveryVerdict::Wait);
        assert!(matches!(
            p.on_deliver(1, 1, &forged),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    #[test]
    fn factory_builds_sparse_with_interval() {
        let p = make_protocol(ProtocolKind::TdiSparse(16), 2, 8);
        assert_eq!(p.kind(), ProtocolKind::TdiSparse(16));
        assert_eq!(p.me(), 2);
        assert_eq!(p.n(), 8);
    }

    /// The satellite property test: under seeded random interleavings
    /// of sends, deliveries, drops-forcing-resyncs, and incarnation
    /// bumps, the sparse codec always reconstructs exactly the dense
    /// vector (splitmix64-seeded, like the wire proptests).
    #[test]
    fn prop_sparse_round_trips_to_dense_under_random_interleavings() {
        for seed in 0u64..24 {
            let mut rng = seed.wrapping_mul(0x0123_4567_89AB_CDEF) ^ 0xD1B5_4A32_D192_ED03;
            let n = 3 + (splitmix64(&mut rng) % 3) as usize; // 3..=5
            let interval = 2 + (splitmix64(&mut rng) % 4) as u32;
            let mut l = Lockstep::new(n, interval);
            for _ in 0..200 {
                let op = splitmix64(&mut rng) % 10;
                let src = (splitmix64(&mut rng) as usize) % n;
                let dst = (splitmix64(&mut rng) as usize) % n;
                match op {
                    // Mostly: send + deliver through both stacks.
                    0..=6 => {
                        if src != dst {
                            l.send_and_deliver(src, dst);
                        }
                    }
                    // Drop-forcing-resync: the receiver forgets the
                    // channel base, parks the next delta, and heals
                    // via snapshot — immediately, so the snapshot
                    // vector equals the frame's vector and the
                    // lockstep gates stay aligned.
                    7 => {
                        if src != dst {
                            l.sparse[dst].bases[src] = None;
                            l.next_idx[src][dst] += 1;
                            let idx = l.next_idx[src][dst];
                            let sp_art = l.sparse[src].on_send(dst, idx);
                            let de_art = l.dense[src].on_send(dst, idx);
                            if sp_art.piggyback[0] == KIND_DELTA {
                                assert_eq!(
                                    l.sparse[dst].deliverable(src, idx, &sp_art.piggyback),
                                    DeliveryVerdict::Wait
                                );
                                let reqs = l.sparse[dst].take_resync_requests();
                                assert_eq!(reqs, vec![src]);
                                let snap = l.sparse[src].resync_snapshot(dst).unwrap();
                                l.sparse[dst].install_resync(src, &snap).unwrap();
                            }
                            let sp = l.sparse[dst].deliverable(src, idx, &sp_art.piggyback);
                            let de = l.dense[dst].deliverable(src, idx, &de_art.piggyback);
                            assert_eq!(sp, de);
                            if sp == DeliveryVerdict::Deliver {
                                l.sparse[dst]
                                    .on_deliver(src, idx, &sp_art.piggyback)
                                    .unwrap();
                                l.dense[dst]
                                    .on_deliver(src, idx, &de_art.piggyback)
                                    .unwrap();
                            }
                            l.assert_vectors_equal();
                        }
                    }
                    // Incarnation bump: checkpoint + restore both
                    // stacks; the sparse side bumps its epoch and
                    // forces FULL frames, the dense side is unchanged
                    // — vectors must still match.
                    _ => {
                        let sp_blob = l.sparse[src].checkpoint_bytes();
                        l.sparse[src].restore_from_checkpoint(&sp_blob).unwrap();
                        let de_blob = l.dense[src].checkpoint_bytes();
                        l.dense[src].restore_from_checkpoint(&de_blob).unwrap();
                        l.assert_vectors_equal();
                    }
                }
            }
            // Close out with a ring pass so every fleet member both
            // sent and received at least once under this seed.
            for r in 0..n {
                let _ = l.send_and_deliver(r, (r + 1) % n);
            }
            l.assert_vectors_equal();
        }
    }
}
