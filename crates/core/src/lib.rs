//! # lclog-core
//!
//! Causal message-logging protocols for rollback-recovery fault
//! tolerance, reproducing *"A Lightweight Causal Message Logging
//! Protocol to Lower Fault Tolerance Overhead"* (Yang, CLUSTER 2016).
//!
//! Three dependency-tracking protocols share one interface,
//! [`LoggingProtocol`]:
//!
//! * [`Tdi`] — **T**racking by **D**ependent **I**nterval, the paper's
//!   contribution. Piggybacks a single `n`-element vector of delivered
//!   message counts; recovery may deliver logged messages in *any*
//!   order satisfying the per-sender FIFO and the dependent-interval
//!   gate (`depend_interval[i]` of the message ≤ messages the
//!   recovering process has delivered).
//! * [`Tag`] — **T**racking by **A**ntecedence **G**raph, the
//!   Manetho/LogOn-style baseline \[6,7\]. Piggybacks the incremental
//!   part of a graph of per-delivery determinants and replays
//!   deliveries in exactly their original order (PWD).
//! * [`Tel`] — **T**racking with **E**vent **L**ogger, the
//!   Bouteiller-style baseline \[5\]. Determinants are piggybacked
//!   causally only until a stable event-logger service acknowledges
//!   them; recovery is PWD replay from logger + survivor knowledge.
//!
//! The split of responsibilities with `lclog-runtime` mirrors the
//! paper's Algorithm 1: the *runtime* owns everything common to all
//! three protocols — sender-based payload logging,
//! `last_send_index`/`last_deliver_index` counters, per-sender FIFO
//! delivery, checkpointing, `ROLLBACK`/`RESPONSE`, duplicate
//! suppression, log GC — while the *protocol* owns dependency
//! tracking: what to piggyback on a send, whether a queued message may
//! be delivered yet, and what recovery-order information survivors
//! contribute.
//!
//! ## Example: the Fig. 1 dependency chain under TDI
//!
//! ```
//! use lclog_core::{make_protocol, DeliveryVerdict, ProtocolKind};
//!
//! let n = 4;
//! let mut p1 = make_protocol(ProtocolKind::Tdi, 1, n); // process P1
//! let mut p2 = make_protocol(ProtocolKind::Tdi, 2, n); // process P2
//!
//! // P2 delivers a message from P1 carrying P1's dependency vector,
//! // then sends m5 back; m5's piggyback records that it depends on
//! // one delivery at P2.
//! let m3 = p1.on_send(2, 1);
//! assert_eq!(m3.id_count, n as u64); // TDI: one vector of n counters
//! assert!(matches!(p2.deliverable(1, 1, &m3.piggyback), DeliveryVerdict::Deliver));
//! p2.on_deliver(1, 1, &m3.piggyback).unwrap();
//! let m5 = p2.on_send(1, 1);
//! // P1 has delivered nothing yet, but m5 depends on 0 deliveries at
//! // P1, so it is deliverable immediately.
//! assert!(matches!(p1.deliverable(2, 1, &m5.piggyback), DeliveryVerdict::Deliver));
//! ```

#![warn(missing_docs)]

pub mod conformance;
mod protocol;
mod replay;
mod stats;
mod pessim;
mod sparse;
mod tag;
mod tagf;
mod tdi;
mod tel;
mod types;
mod vectors;

pub use protocol::{make_protocol, DeliveryVerdict, LoggingProtocol, SendArtifacts};
pub use replay::ReplayScript;
pub use stats::{FrameStats, TrackingStats};
pub use pessim::Pessim;
pub use sparse::SparseTdi;
pub use tag::Tag;
pub use tagf::TagF;
pub use tdi::Tdi;
pub use tel::Tel;
pub use types::{Determinant, MembershipView, ProtocolError, ProtocolKind, Rank};
pub use vectors::{CounterVector, DependVector};
