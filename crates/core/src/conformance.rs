//! A conformance battery for [`LoggingProtocol`] implementations.
//!
//! The runtime relies on behavioural contracts the trait's signatures
//! cannot express (gate/enforcement agreement, checkpoint fidelity,
//! logger hand-off semantics). Anyone adding a protocol — as we did
//! with TAG-f and PES beyond the paper's three — can run
//! [`check_protocol`] in a unit test and get precise panics for any
//! violation.
//!
//! ```
//! use lclog_core::{conformance, make_protocol, ProtocolKind};
//!
//! conformance::check_protocol(
//!     &|me, n| make_protocol(ProtocolKind::Tdi, me, n),
//!     4,
//! );
//! ```

use crate::{DeliveryVerdict, LoggingProtocol, Rank};

/// Factory signature: build the protocol instance for rank `me` of
/// `n`.
pub type Factory<'a> = &'a dyn Fn(Rank, usize) -> Box<dyn LoggingProtocol>;

/// Run the full battery at system size `n` (need `n >= 3`).
pub fn check_protocol(factory: Factory<'_>, n: usize) {
    assert!(n >= 3, "conformance battery needs n >= 3");
    check_identity(factory, n);
    check_roundtrip_advances_state(factory, n);
    check_gate_agreement(factory, n);
    check_checkpoint_fidelity(factory, n);
    check_recovery_info_idempotent(factory, n);
    check_logger_contract(factory, n);
    check_checkpoint_hooks_preserve_liveness(factory, n);
}

fn instantly_stabilize(p: &mut Box<dyn LoggingProtocol>) {
    if p.wants_event_logger() {
        let upto = p.delivered_total();
        let _ = p.drain_determinants_for_logger();
        p.on_logger_ack(upto);
    }
}

fn check_identity(factory: Factory<'_>, n: usize) {
    for me in 0..n {
        let p = factory(me, n);
        assert_eq!(p.me(), me, "me() must echo the construction rank");
        assert_eq!(p.n(), n, "n() must echo the system size");
        assert_eq!(p.delivered_total(), 0, "fresh instances have delivered nothing");
        assert!(p.send_ready(), "fresh instances must be allowed to send");
        assert!(
            p.determinants_for(0).is_empty(),
            "fresh instances know no determinants"
        );
    }
}

fn check_roundtrip_advances_state(factory: Factory<'_>, n: usize) {
    let mut a = factory(0, n);
    let mut b = factory(1, n);
    for i in 1..=5u64 {
        let art = a.on_send(1, i);
        assert_eq!(
            b.deliverable(0, i, &art.piggyback),
            DeliveryVerdict::Deliver,
            "normal-operation FIFO-next messages must be deliverable"
        );
        b.on_deliver(0, i, &art.piggyback)
            .expect("approved delivery succeeds");
        assert_eq!(b.delivered_total(), i, "delivered_total counts deliveries");
        instantly_stabilize(&mut b);
    }
    assert_eq!(a.delivered_total(), 0, "sending does not count as delivering");
}

fn check_gate_agreement(factory: Factory<'_>, n: usize) {
    // Whenever deliverable() says Wait, on_deliver must refuse; when
    // it says Deliver, on_deliver must succeed. Exercise both via a
    // replay script when the protocol uses one, and via plain traffic
    // otherwise.
    let mut a = factory(0, n);
    let mut b = factory(1, n);
    let art = a.on_send(1, 1);
    match b.deliverable(0, 1, &art.piggyback) {
        DeliveryVerdict::Deliver => {
            b.on_deliver(0, 1, &art.piggyback)
                .expect("gate said Deliver; on_deliver must agree");
        }
        DeliveryVerdict::Wait => {
            b.on_deliver(0, 1, &art.piggyback)
                .expect_err("gate said Wait; on_deliver must refuse");
        }
    }
}

fn check_checkpoint_fidelity(factory: Factory<'_>, n: usize) {
    let mut a = factory(0, n);
    let mut b = factory(1, n);
    for i in 1..=3u64 {
        let art = a.on_send(1, i);
        b.on_deliver(0, i, &art.piggyback).expect("deliver");
        instantly_stabilize(&mut b);
    }
    let blob = b.checkpoint_bytes();
    let mut restored = factory(1, n);
    restored
        .restore_from_checkpoint(&blob)
        .expect("own checkpoint restores");
    assert_eq!(
        restored.delivered_total(),
        b.delivered_total(),
        "restore must reproduce the delivery count"
    );
    // The restored instance accepts the next message exactly like the
    // original would.
    let art = a.on_send(1, 4);
    assert_eq!(
        restored.deliverable(0, 4, &art.piggyback),
        b.deliverable(0, 4, &art.piggyback),
        "restored gate must agree with the original"
    );
    // Corrupt checkpoints must be rejected, not trusted.
    let mut fresh = factory(1, n);
    assert!(
        fresh.restore_from_checkpoint(&[0xFF, 0x13, 0x37]).is_err()
            || fresh.delivered_total() == 0,
        "garbage checkpoints must not smuggle in state"
    );
}

fn check_recovery_info_idempotent(factory: Factory<'_>, n: usize) {
    let mut a = factory(0, n);
    let mut b = factory(1, n);
    let art1 = a.on_send(1, 1);
    let art2 = a.on_send(1, 2);
    b.on_deliver(0, 1, &art1.piggyback).expect("deliver");
    instantly_stabilize(&mut b);
    b.on_deliver(0, 2, &art2.piggyback).expect("deliver");
    instantly_stabilize(&mut b);
    // Whatever b knows about rank 1's history, installing it into an
    // incarnation twice (two survivors reporting the same events) must
    // be harmless and must allow replaying the original order.
    let mut survivors_view = b.determinants_for(1);
    let own_history = vec![
        crate::Determinant {
            sender: 0,
            send_index: 1,
            receiver: 1,
            deliver_index: 1,
        },
        crate::Determinant {
            sender: 0,
            send_index: 2,
            receiver: 1,
            deliver_index: 2,
        },
    ];
    survivors_view.extend(own_history);
    let mut incarnation = factory(1, n);
    incarnation.install_recovery_info(survivors_view.clone());
    incarnation.install_recovery_info(survivors_view);
    assert_eq!(
        incarnation.deliverable(0, 1, &art1.piggyback),
        DeliveryVerdict::Deliver,
        "original first delivery must replay first"
    );
    incarnation
        .on_deliver(0, 1, &art1.piggyback)
        .expect("replay step 1");
    instantly_stabilize(&mut incarnation);
    incarnation
        .on_deliver(0, 2, &art2.piggyback)
        .expect("replay step 2");
}

fn check_logger_contract(factory: Factory<'_>, n: usize) {
    let mut a = factory(0, n);
    let mut b = factory(1, n);
    if !b.wants_event_logger() {
        assert!(
            b.drain_determinants_for_logger().is_empty(),
            "loggerless protocols must not emit determinants"
        );
        return;
    }
    let art = a.on_send(1, 1);
    b.on_deliver(0, 1, &art.piggyback).expect("deliver");
    let batch = b.drain_determinants_for_logger();
    assert_eq!(batch.len(), 1, "one delivery yields one determinant");
    assert_eq!(batch[0].receiver as Rank, 1);
    assert!(
        b.drain_determinants_for_logger().is_empty(),
        "drain must hand over each determinant exactly once"
    );
    b.on_logger_ack(1);
    assert!(b.send_ready(), "acked protocols must be ready to send");
    // Acks are monotone: a stale smaller ack must not regress state.
    b.on_logger_ack(0);
    assert!(b.send_ready(), "stale acks must be ignored");
}

fn check_checkpoint_hooks_preserve_liveness(factory: Factory<'_>, n: usize) {
    let mut a = factory(0, n);
    let mut b = factory(1, n);
    for i in 1..=2u64 {
        let art = a.on_send(1, i);
        b.on_deliver(0, i, &art.piggyback).expect("deliver");
        instantly_stabilize(&mut b);
    }
    b.on_local_checkpoint();
    a.on_peer_checkpoint(1, b.delivered_total());
    // Traffic continues to flow after GC hooks.
    let art = a.on_send(1, 3);
    assert_eq!(
        b.deliverable(0, 3, &art.piggyback),
        DeliveryVerdict::Deliver,
        "checkpoint hooks must not wedge normal operation"
    );
    b.on_deliver(0, 3, &art.piggyback).expect("deliver after GC");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_protocol, ProtocolKind};

    #[test]
    fn every_shipped_protocol_conforms() {
        for kind in ProtocolKind::EXTENDED {
            for n in [3usize, 4, 8] {
                check_protocol(&|me, size| make_protocol(kind, me, size), n);
            }
        }
    }
}
