//! TDI — Tracking by Dependent Interval (§III of the paper).
//!
//! Dependency tracking is relaxed from *per-message delivery order*
//! (the PWD model) to *per-process delivered-message counts*: each
//! process maintains one `depend_interval[n]` vector, piggybacks it on
//! every send, and merges piggybacked vectors on every delivery. A
//! recovering process may deliver a logged message as soon as the
//! message's recorded `depend_interval[me]` is covered by its own
//! delivery count — no waiting for one specific message, no
//! antecedence graph, no increment computation.

use crate::protocol::{DeliveryVerdict, LoggingProtocol, SendArtifacts};
use crate::{DependVector, ProtocolError, ProtocolKind, Rank};
use lclog_wire::{Encode, Reader};

/// The paper's lightweight causal message-logging protocol.
#[derive(Debug, Clone)]
pub struct Tdi {
    me: Rank,
    n: usize,
    /// `depend_interval` of Algorithm 1: element `me` counts local
    /// deliveries; other elements are transitive interval knowledge.
    depend: DependVector,
}

impl Tdi {
    /// New instance for process `me` of `n`, all intervals zero.
    pub fn new(me: Rank, n: usize) -> Self {
        assert!(me < n, "rank {me} out of range for n={n}");
        Tdi {
            me,
            n,
            depend: DependVector::zeroed(n),
        }
    }

    /// Current dependency vector (exposed for tests and examples).
    pub fn depend_interval(&self) -> &DependVector {
        &self.depend
    }

    fn decode_piggyback(&self, piggyback: &[u8]) -> Result<DependVector, ProtocolError> {
        let mut reader = Reader::new(piggyback);
        let v = DependVector::decode_n(&mut reader, self.n)
            .map_err(|_| ProtocolError::Corrupt("TDI piggyback vector"))?;
        reader
            .finish()
            .map_err(|_| ProtocolError::Corrupt("TDI piggyback trailing bytes"))?;
        Ok(v)
    }
}

impl LoggingProtocol for Tdi {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Tdi
    }

    fn n(&self) -> usize {
        self.n
    }

    fn me(&self) -> Rank {
        self.me
    }

    fn delivered_total(&self) -> u64 {
        self.depend[self.me]
    }

    fn interval_vector(&self) -> Option<Vec<u64>> {
        Some(self.depend.as_slice().to_vec())
    }

    fn on_send(&mut self, _dst: Rank, _send_index: u64) -> SendArtifacts {
        // Algorithm 1 line 11: piggyback the whole depend_interval
        // vector — n identifiers, independent of message history.
        let mut piggyback = Vec::with_capacity(self.depend.encoded_len());
        self.depend.encode(&mut piggyback);
        SendArtifacts {
            piggyback,
            id_count: self.n as u64,
        }
    }

    fn deliverable(&self, _src: Rank, _send_index: u64, piggyback: &[u8]) -> DeliveryVerdict {
        // Algorithm 1 line 17: deliver iff we have already delivered
        // at least as many messages as the sender saw us depend on.
        match self.decode_piggyback(piggyback) {
            Ok(v) if v[self.me] <= self.depend[self.me] => DeliveryVerdict::Deliver,
            _ => DeliveryVerdict::Wait,
        }
    }

    fn on_deliver(
        &mut self,
        src: Rank,
        send_index: u64,
        piggyback: &[u8],
    ) -> Result<(), ProtocolError> {
        let v = self.decode_piggyback(piggyback)?;
        if v[self.me] > self.depend[self.me] {
            return Err(ProtocolError::NotDeliverable { src, send_index });
        }
        // Lines 20, 22–24: advance own interval, join the rest.
        self.depend.increment(self.me);
        self.depend.merge_from(&v, self.me);
        Ok(())
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        lclog_wire::encode_to_vec(&self.depend.as_slice().to_vec())
    }

    fn restore_from_checkpoint(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        let v: Vec<u64> = lclog_wire::decode_from_slice(bytes)
            .map_err(|_| ProtocolError::Corrupt("TDI checkpoint"))?;
        if v.len() != self.n {
            return Err(ProtocolError::Corrupt("TDI checkpoint length"));
        }
        self.depend = DependVector::from_vec(v);
        Ok(())
    }

    // TDI needs no replay script: install_recovery_info and
    // determinants_for keep their no-op defaults, and the deliverable
    // gate above is the *entire* rolling-forward order constraint —
    // the paper's headline relaxation.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifacts(p: &mut Tdi, dst: Rank, idx: u64) -> Vec<u8> {
        p.on_send(dst, idx).piggyback
    }

    #[test]
    fn piggyback_is_always_n_identifiers() {
        let mut p = Tdi::new(0, 8);
        for i in 1..=100 {
            let a = p.on_send(1, i);
            assert_eq!(a.id_count, 8);
        }
    }

    #[test]
    fn fig1_scenario_dependency_gate() {
        // Four processes as in Fig. 1. P1 delivers m0 (from P0) and m2
        // (from P2); P2 delivers m3 (from P1) ... finally m5 from P2
        // to P1 depends on 2 deliveries at P1.
        let mut p0 = Tdi::new(0, 4);
        let mut p1 = Tdi::new(1, 4);
        let mut p2 = Tdi::new(2, 4);
        let mut p3 = Tdi::new(3, 4);

        // m0: P0 -> P1, m1: P3 -> P2, m2: P2 -> P1 (after P2 delivers m1)
        let m0 = artifacts(&mut p0, 1, 1);
        let m1 = artifacts(&mut p3, 2, 1);
        p2.on_deliver(3, 1, &m1).unwrap();
        let m2 = artifacts(&mut p2, 1, 1);

        // m0 and m2 both depend on 0 deliveries at P1: deliverable in
        // any order (the paper's relaxation).
        assert_eq!(p1.deliverable(0, 1, &m0), DeliveryVerdict::Deliver);
        assert_eq!(p1.deliverable(2, 1, &m2), DeliveryVerdict::Deliver);
        p1.on_deliver(2, 1, &m2).unwrap(); // reverse of "original" order
        p1.on_deliver(0, 1, &m0).unwrap();
        assert_eq!(p1.delivered_total(), 2);

        // m3: P1 -> P2 now depends on 2 deliveries at P1.
        let m3 = artifacts(&mut p1, 2, 1);
        p2.on_deliver(1, 1, &m3).unwrap();
        // m4: P3 -> P2; P2's vector now (0, 2, 2, 1) after delivering
        // m1, m3 ... deliver m4 too.
        let m4 = artifacts(&mut p3, 2, 2);
        p2.on_deliver(3, 2, &m4).unwrap();

        // m5: P2 -> P1. Its piggyback must record P1's interval 2.
        let m5 = artifacts(&mut p2, 1, 2);

        // A fresh incarnation of P1 (delivered 0) must wait for m5...
        let p1_fresh = Tdi::new(1, 4);
        assert_eq!(p1_fresh.deliverable(2, 2, &m5), DeliveryVerdict::Wait);
        // ...but the up-to-date P1 can deliver it.
        assert_eq!(p1.deliverable(2, 2, &m5), DeliveryVerdict::Deliver);
    }

    #[test]
    fn merge_updates_transitive_knowledge() {
        let mut p0 = Tdi::new(0, 3);
        let mut p1 = Tdi::new(1, 3);
        // P0 delivers 2 messages from P1 (both depend on nothing).
        let a = artifacts(&mut p1, 0, 1);
        let b = artifacts(&mut p1, 0, 2);
        p0.on_deliver(1, 1, &a).unwrap();
        p0.on_deliver(1, 2, &b).unwrap();
        assert_eq!(p0.depend_interval().as_slice(), &[2, 0, 0]);

        // P2 delivers a message from P0 and learns P0's interval.
        let mut p2 = Tdi::new(2, 3);
        let c = artifacts(&mut p0, 2, 1);
        p2.on_deliver(0, 1, &c).unwrap();
        assert_eq!(p2.depend_interval().as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn on_deliver_rejects_unsatisfied_dependency() {
        let mut sender = Tdi::new(0, 2);
        // Sender has delivered 3 messages (simulate).
        for i in 1..=3 {
            let self_m = sender.on_send(0, i).piggyback;
            sender.on_deliver(0, i, &self_m).unwrap();
        }
        let m = sender.on_send(1, 1).piggyback;
        // m depends on 3 deliveries at... wait, element checked is the
        // *receiver's*: craft a piggyback whose element for rank 1 is 5.
        let forged = lclog_wire::encode_to_vec(&DependVector::from_vec(vec![0, 5]));
        let mut recv = Tdi::new(1, 2);
        assert_eq!(recv.deliverable(0, 1, &forged), DeliveryVerdict::Wait);
        assert!(matches!(
            recv.on_deliver(0, 1, &forged),
            Err(ProtocolError::NotDeliverable { .. })
        ));
        // The legitimate message delivers fine.
        assert_eq!(recv.deliverable(0, 1, &m), DeliveryVerdict::Deliver);
        recv.on_deliver(0, 1, &m).unwrap();
        assert_eq!(recv.depend_interval().as_slice(), &[3, 1]);
    }

    #[test]
    fn corrupt_piggyback_waits_not_panics() {
        let p = Tdi::new(0, 4);
        assert_eq!(p.deliverable(1, 1, &[0xFF]), DeliveryVerdict::Wait);
        let mut p = p;
        assert!(matches!(
            p.on_deliver(1, 1, &[0xFF]),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut p = Tdi::new(1, 3);
        let m = Tdi::new(0, 3).on_send(1, 1).piggyback;
        p.on_deliver(0, 1, &m).unwrap();
        let blob = p.checkpoint_bytes();
        let mut fresh = Tdi::new(1, 3);
        fresh.restore_from_checkpoint(&blob).unwrap();
        assert_eq!(fresh.depend_interval(), p.depend_interval());
        assert_eq!(fresh.delivered_total(), 1);
    }

    #[test]
    fn restore_rejects_wrong_length() {
        let blob = lclog_wire::encode_to_vec(&vec![1u64, 2]);
        let mut p = Tdi::new(0, 3);
        assert!(matches!(
            p.restore_from_checkpoint(&blob),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    #[test]
    fn self_message_delivery() {
        let mut p = Tdi::new(0, 2);
        let m = p.on_send(0, 1).piggyback;
        assert_eq!(p.deliverable(0, 1, &m), DeliveryVerdict::Deliver);
        p.on_deliver(0, 1, &m).unwrap();
        assert_eq!(p.delivered_total(), 1);
    }
}
