//! PWD replay scripts for the TAG and TEL baselines.
//!
//! Under the piecewise-deterministic model a recovering process must
//! re-deliver messages in exactly their pre-failure order. The order
//! is reconstructed from determinants collected from survivors (TAG)
//! and/or the stable event logger (TEL): a map from the recovering
//! process's delivery positions to the `(sender, send_index)` that
//! originally filled them.

use crate::{Determinant, Rank};
use std::collections::BTreeMap;

/// Replay constraints for one recovering process.
///
/// Positions ≤ the restored checkpoint's delivery count are ignored.
/// Positions with no determinant are "free" slots — no surviving
/// process depends on what was delivered there, so any choice is
/// consistent (the classic causal-logging argument) — but a message
/// that *is* pinned to a later slot must not be delivered early.
#[derive(Debug, Default, Clone)]
pub struct ReplayScript {
    /// deliver_index → (sender, send_index)
    slots: BTreeMap<u64, (Rank, u64)>,
    /// (sender, send_index) → deliver_index (reverse map for the
    /// "don't steal a pinned message early" check).
    pinned: BTreeMap<(Rank, u64), u64>,
}

impl ReplayScript {
    /// An empty script (normal execution; everything is free).
    pub fn new() -> Self {
        Self::default()
    }

    /// Install determinants describing `me`'s pre-failure deliveries.
    /// Determinants for other receivers are ignored. Duplicate
    /// installs (several survivors knowing the same event) must agree;
    /// disagreement would mean corrupted logs and panics in debug
    /// builds.
    pub fn install(&mut self, me: Rank, dets: impl IntoIterator<Item = Determinant>) {
        for d in dets {
            if d.receiver as Rank != me {
                continue;
            }
            let prev = self
                .slots
                .insert(d.deliver_index, (d.sender as Rank, d.send_index));
            debug_assert!(
                prev.is_none() || prev == Some((d.sender as Rank, d.send_index)),
                "conflicting determinants for deliver_index {}",
                d.deliver_index
            );
            self.pinned
                .insert((d.sender as Rank, d.send_index), d.deliver_index);
        }
    }

    /// Number of pinned slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// May message `(src, send_index)` be delivered at position
    /// `next_index` (the receiver's delivery count + 1)?
    pub fn allows(&self, src: Rank, send_index: u64, next_index: u64) -> bool {
        match self.slots.get(&next_index) {
            // This position was observed before the failure: only the
            // recorded message may fill it.
            Some(&(s, k)) => (s, k) == (src, send_index),
            // Free slot: anything goes, unless this particular message
            // is pinned to a later position.
            None => match self.pinned.get(&(src, send_index)) {
                Some(&at) => at == next_index,
                None => true,
            },
        }
    }

    /// Highest pinned position (0 when empty) — the point after which
    /// replay mode has no effect.
    pub fn horizon(&self) -> u64 {
        self.slots.keys().next_back().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(sender: Rank, send_index: u64, receiver: Rank, deliver_index: u64) -> Determinant {
        Determinant {
            sender: sender as u32,
            send_index,
            receiver: receiver as u32,
            deliver_index,
        }
    }

    #[test]
    fn empty_script_allows_everything() {
        let s = ReplayScript::new();
        assert!(s.allows(0, 1, 1));
        assert!(s.allows(5, 99, 42));
        assert!(s.is_empty());
        assert_eq!(s.horizon(), 0);
    }

    #[test]
    fn pinned_slot_admits_only_recorded_message() {
        let mut s = ReplayScript::new();
        s.install(1, [det(0, 1, 1, 3)]);
        assert!(!s.allows(2, 1, 3), "other message cannot fill slot 3");
        assert!(!s.allows(0, 2, 3), "other send_index cannot fill slot 3");
        assert!(s.allows(0, 1, 3));
        assert_eq!(s.horizon(), 3);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn pinned_message_cannot_be_delivered_early() {
        let mut s = ReplayScript::new();
        s.install(1, [det(0, 1, 1, 5)]);
        // Slot 2 is free, but (0,1) is pinned to slot 5.
        assert!(!s.allows(0, 1, 2));
        assert!(s.allows(3, 7, 2), "an unpinned message may fill slot 2");
        assert!(s.allows(0, 1, 5));
    }

    #[test]
    fn foreign_receivers_ignored() {
        let mut s = ReplayScript::new();
        s.install(1, [det(0, 1, 2, 1)]);
        assert!(s.is_empty());
    }

    #[test]
    fn duplicate_installs_agree() {
        let mut s = ReplayScript::new();
        s.install(1, [det(0, 1, 1, 1)]);
        s.install(1, [det(0, 1, 1, 1)]); // second survivor, same event
        assert_eq!(s.len(), 1);
        assert!(s.allows(0, 1, 1));
    }

    #[test]
    fn gap_in_script_leaves_free_slot_between_pins() {
        let mut s = ReplayScript::new();
        s.install(0, [det(1, 1, 0, 1), det(2, 1, 0, 3)]);
        assert!(s.allows(1, 1, 1));
        // Slot 2 unknown: any unpinned message may fill it.
        assert!(s.allows(3, 9, 2));
        // ...but not the one pinned to slot 3.
        assert!(!s.allows(2, 1, 2));
        assert!(s.allows(2, 1, 3));
    }
}
