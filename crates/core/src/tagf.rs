//! TAG-f — causal tracking bounded by a failure hypothesis, in the
//! style of Alvisi / Bhatia–Marzullo (\[8\] in the paper).
//!
//! Under the assumption of at most `f` simultaneous failures, a
//! determinant only needs to reach `f + 1` processes: any failure
//! pattern then leaves at least one holder alive. Each determinant is
//! therefore piggybacked *together with its known holder set* (the
//! "extra tracking information" of \[8\], counted in the piggyback
//! metric: 4 identifiers per determinant plus one per holder entry),
//! and drops out of piggybacks as soon as `f + 1` holders are proven.
//!
//! This sits between the paper's TAG baseline (no failure hypothesis,
//! conservative re-piggybacking forever) and TDI (a single vector):
//! the ablation benchmarks show TAG-f's piggyback plateauing at a
//! level set by `f` and the communication topology, still above TDI's
//! flat `n`.

use crate::protocol::{DeliveryVerdict, LoggingProtocol, SendArtifacts};
use crate::{Determinant, ProtocolError, ProtocolKind, Rank, ReplayScript};
use std::collections::{BTreeMap, BTreeSet};

type DetKey = (u32, u64);

/// A determinant plus the processes proven to hold it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Tracked {
    det: Determinant,
    holders: BTreeSet<u32>,
}

/// f-bounded antecedence tracking.
#[derive(Debug, Clone)]
pub struct TagF {
    me: Rank,
    n: usize,
    f: u32,
    deliver_count: u64,
    graph: BTreeMap<DetKey, Tracked>,
    replay: ReplayScript,
}

impl TagF {
    /// New instance for process `me` of `n`, tolerating up to `f`
    /// simultaneous failures.
    pub fn new(me: Rank, n: usize, f: u32) -> Self {
        assert!(me < n, "rank {me} out of range for n={n}");
        assert!((f as usize) < n, "f={f} must be smaller than n={n}");
        TagF {
            me,
            n,
            f,
            deliver_count: 0,
            graph: BTreeMap::new(),
            replay: ReplayScript::new(),
        }
    }

    /// The failure bound.
    pub fn f(&self) -> u32 {
        self.f
    }

    /// Determinants currently tracked (stable + propagating).
    pub fn graph_len(&self) -> usize {
        self.graph.len()
    }

    /// Determinants still below `f + 1` proven holders (the ones every
    /// send must carry).
    pub fn propagating_len(&self) -> usize {
        self.graph
            .values()
            .filter(|t| t.holders.len() <= self.f as usize)
            .count()
    }

    fn decode_piggyback(
        piggyback: &[u8],
    ) -> Result<Vec<(Determinant, Vec<u32>)>, ProtocolError> {
        lclog_wire::decode_from_slice(piggyback)
            .map_err(|_| ProtocolError::Corrupt("TAG-f piggyback"))
    }
}

impl LoggingProtocol for TagF {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::TagF(self.f)
    }

    fn n(&self) -> usize {
        self.n
    }

    fn me(&self) -> Rank {
        self.me
    }

    fn delivered_total(&self) -> u64 {
        self.deliver_count
    }

    fn on_send(&mut self, dst: Rank, _send_index: u64) -> SendArtifacts {
        // Carry every determinant that (a) has not provably reached
        // f + 1 processes and (b) the destination is not already a
        // proven holder of. The holder set rides along so receivers
        // inherit our knowledge.
        let mut payload: Vec<(Determinant, Vec<u32>)> = Vec::new();
        let mut id_count = 0u64;
        for t in self.graph.values() {
            if t.holders.len() > self.f as usize || t.holders.contains(&(dst as u32)) {
                continue;
            }
            id_count += Determinant::ID_COUNT + t.holders.len() as u64;
            payload.push((t.det, t.holders.iter().copied().collect()));
        }
        SendArtifacts {
            piggyback: lclog_wire::encode_to_vec(&payload),
            id_count,
        }
    }

    fn deliverable(&self, src: Rank, send_index: u64, _piggyback: &[u8]) -> DeliveryVerdict {
        if self.replay.allows(src, send_index, self.deliver_count + 1) {
            DeliveryVerdict::Deliver
        } else {
            DeliveryVerdict::Wait
        }
    }

    fn on_deliver(
        &mut self,
        src: Rank,
        send_index: u64,
        piggyback: &[u8],
    ) -> Result<(), ProtocolError> {
        if !self.replay.allows(src, send_index, self.deliver_count + 1) {
            return Err(ProtocolError::NotDeliverable { src, send_index });
        }
        let payload = Self::decode_piggyback(piggyback)?;
        for (det, holders) in payload {
            let entry = self.graph.entry(det.key()).or_insert_with(|| Tracked {
                det,
                holders: BTreeSet::new(),
            });
            entry.holders.extend(holders);
            // The sender and ourselves are now proven holders too.
            entry.holders.insert(src as u32);
            entry.holders.insert(self.me as u32);
            entry.holders.insert(det.receiver); // creator always holds
        }
        self.deliver_count += 1;
        let own = Determinant {
            sender: src as u32,
            send_index,
            receiver: self.me as u32,
            deliver_index: self.deliver_count,
        };
        let mut holders = BTreeSet::new();
        holders.insert(self.me as u32);
        self.graph.insert(own.key(), Tracked { det: own, holders });
        Ok(())
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        let flat: Vec<(Determinant, Vec<u32>)> = self
            .graph
            .values()
            .map(|t| (t.det, t.holders.iter().copied().collect()))
            .collect();
        lclog_wire::encode_to_vec(&(self.deliver_count, flat))
    }

    fn restore_from_checkpoint(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        let (deliver_count, flat): (u64, Vec<(Determinant, Vec<u32>)>) =
            lclog_wire::decode_from_slice(bytes)
                .map_err(|_| ProtocolError::Corrupt("TAG-f checkpoint"))?;
        self.deliver_count = deliver_count;
        self.graph = flat
            .into_iter()
            .map(|(det, holders)| {
                (
                    det.key(),
                    Tracked {
                        det,
                        holders: holders.into_iter().collect(),
                    },
                )
            })
            .collect();
        self.replay = ReplayScript::new();
        Ok(())
    }

    fn on_local_checkpoint(&mut self) {
        // Unlike the unbounded TAG baseline, the f-bounded protocol
        // may prune: deliveries covered by our checkpoint can never be
        // replayed.
        let me = self.me as u32;
        let upto = self.deliver_count;
        self.graph.retain(|&(r, idx), _| !(r == me && idx <= upto));
    }

    fn on_peer_checkpoint(&mut self, peer: Rank, peer_delivered_total: u64) {
        self.graph
            .retain(|&(r, idx), _| !(r == peer as u32 && idx <= peer_delivered_total));
    }

    fn determinants_for(&self, failed: Rank) -> Vec<Determinant> {
        self.graph
            .values()
            .filter(|t| t.det.receiver as Rank == failed)
            .map(|t| t.det)
            .collect()
    }

    fn install_recovery_info(&mut self, dets: Vec<Determinant>) {
        let relevant = dets
            .into_iter()
            .filter(|d| d.deliver_index > self.deliver_count);
        self.replay.install(self.me, relevant);
    }

    fn needs_full_recovery_info(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(from: &mut TagF, to: &mut TagF, send_index: u64) -> u64 {
        let a = from.on_send(to.me(), send_index);
        to.on_deliver(from.me(), send_index, &a.piggyback).unwrap();
        a.id_count
    }

    #[test]
    fn determinant_stops_propagating_after_f_plus_one_holders() {
        // f = 1 in a 4-process system: two holders suffice.
        let mut p0 = TagF::new(0, 4, 1);
        let mut p1 = TagF::new(1, 4, 1);
        let mut p2 = TagF::new(2, 4, 1);
        pass(&mut p0, &mut p1, 1); // det A created at p1: holders {1}
        assert_eq!(p1.propagating_len(), 1);
        // p1 -> p2 carries A (4 ids + 1 holder entry).
        let ids = pass(&mut p1, &mut p2, 1);
        assert_eq!(ids, 5);
        // p2 now holds A with holders {0?, no: {1, 2}} plus its own
        // new det B. A has 2 holders = f+1: stable at p2.
        assert_eq!(p2.propagating_len(), 1, "only B still propagates");
        // p2 -> p3... would carry B and NOT A.
        let art = p2.on_send(3, 1);
        let payload: Vec<(Determinant, Vec<u32>)> =
            lclog_wire::decode_from_slice(&art.piggyback).unwrap();
        assert_eq!(payload.len(), 1);
        assert_eq!(payload[0].0.receiver, 2, "only p2's own det travels");
    }

    #[test]
    fn holder_knowledge_rides_with_determinants() {
        let mut p0 = TagF::new(0, 5, 2); // f = 2: need 3 holders
        let mut p1 = TagF::new(1, 5, 2);
        let mut p2 = TagF::new(2, 5, 2);
        pass(&mut p0, &mut p1, 1); // det A at p1
        pass(&mut p1, &mut p2, 1); // p2 learns A with holders {1,2}
        let art = p2.on_send(3, 1);
        let payload: Vec<(Determinant, Vec<u32>)> =
            lclog_wire::decode_from_slice(&art.piggyback).unwrap();
        let a = payload.iter().find(|(d, _)| d.receiver == 1).unwrap();
        assert_eq!(a.1, vec![1, 2], "holder set travels with the det");
    }

    #[test]
    fn no_resend_to_proven_holder() {
        let mut p0 = TagF::new(0, 4, 2);
        let mut p1 = TagF::new(1, 4, 2);
        pass(&mut p0, &mut p1, 1); // A at p1 (holders {1})
        pass(&mut p1, &mut p0, 1); // p0 learns A (holders {0,1}), B at p0
        // p0 -> p1: A skipped (p1 is a holder), B carried.
        let art = p0.on_send(1, 2);
        let payload: Vec<(Determinant, Vec<u32>)> =
            lclog_wire::decode_from_slice(&art.piggyback).unwrap();
        assert_eq!(payload.len(), 1);
        assert_eq!(payload[0].0.receiver, 0);
    }

    #[test]
    fn replay_script_enforced_like_other_pwd_protocols() {
        let mut p = TagF::new(1, 3, 1);
        p.install_recovery_info(vec![Determinant {
            sender: 2,
            send_index: 1,
            receiver: 1,
            deliver_index: 1,
        }]);
        let empty = lclog_wire::encode_to_vec(&Vec::<(Determinant, Vec<u32>)>::new());
        assert_eq!(p.deliverable(0, 1, &empty), DeliveryVerdict::Wait);
        assert_eq!(p.deliverable(2, 1, &empty), DeliveryVerdict::Deliver);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_holders() {
        let mut p0 = TagF::new(0, 3, 1);
        let mut p1 = TagF::new(1, 3, 1);
        pass(&mut p0, &mut p1, 1);
        pass(&mut p1, &mut p0, 1);
        let blob = p0.checkpoint_bytes();
        let mut fresh = TagF::new(0, 3, 1);
        fresh.restore_from_checkpoint(&blob).unwrap();
        assert_eq!(fresh.deliver_count, p0.deliver_count);
        assert_eq!(fresh.graph, p0.graph);
    }

    #[test]
    fn checkpoints_prune_covered_determinants() {
        let mut p0 = TagF::new(0, 3, 1);
        let mut p1 = TagF::new(1, 3, 1);
        pass(&mut p0, &mut p1, 1);
        pass(&mut p1, &mut p0, 1);
        assert!(p0.graph_len() >= 2);
        p0.on_peer_checkpoint(1, 1); // p1's delivery now durable
        assert_eq!(p0.determinants_for(1).len(), 0);
        p0.on_local_checkpoint();
        assert_eq!(p0.determinants_for(0).len(), 0);
    }

    #[test]
    fn corrupt_piggyback_is_an_error() {
        let mut p = TagF::new(0, 2, 1);
        assert!(matches!(
            p.on_deliver(1, 1, &[0xFF]),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    #[test]
    #[should_panic(expected = "f=3 must be smaller than n=3")]
    fn f_must_be_below_n() {
        let _ = TagF::new(0, 3, 3);
    }
}
