use lclog_wire::impl_wire_struct;
use std::fmt;

/// Identifier of a process (0-based, dense). Re-exported by the
/// runtime so all layers agree.
pub type Rank = usize;

/// Which dependency-tracking protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The paper's lightweight dependent-interval protocol.
    Tdi,
    /// Antecedence-graph baseline (Manetho / LogOn style).
    Tag,
    /// Event-logger baseline (Bouteiller style).
    Tel,
    /// Extension: f-bounded causal tracking (Alvisi / Bhatia–Marzullo
    /// style, \[8\]), tolerating at most `f` simultaneous failures.
    TagF(u32),
    /// Extension: pessimistic (synchronous) logging — zero piggyback,
    /// logger round-trip on every delivery's critical path.
    Pessim,
    /// Extension: TDI over sparse per-channel delta frames (only the
    /// vector entries changed since the last frame on the channel,
    /// with a FULL resync frame forced every `k` deltas). Same
    /// protocol state and gate as [`ProtocolKind::Tdi`]; O(changes)
    /// wire bytes instead of O(n).
    TdiSparse(u32),
}

impl ProtocolKind {
    /// Short family name ("TDI", "TAG", "TEL", "TAG-f", "PES").
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Tdi => "TDI",
            ProtocolKind::Tag => "TAG",
            ProtocolKind::Tel => "TEL",
            ProtocolKind::TagF(_) => "TAG-f",
            ProtocolKind::Pessim => "PES",
            ProtocolKind::TdiSparse(_) => "TDI-S",
        }
    }

    /// The paper's three protocols, in its figures' order (the two
    /// extension baselines are excluded from figure reproduction).
    pub const ALL: [ProtocolKind; 3] = [ProtocolKind::Tdi, ProtocolKind::Tag, ProtocolKind::Tel];

    /// Whether the runtime must provision the stable event-logger
    /// service for this protocol.
    pub fn uses_event_logger(self) -> bool {
        matches!(self, ProtocolKind::Tel | ProtocolKind::Pessim)
    }

    /// Every implemented protocol (figure trio + extensions with a
    /// representative f and a small sparse resync interval).
    pub const EXTENDED: [ProtocolKind; 6] = [
        ProtocolKind::Tdi,
        ProtocolKind::Tag,
        ProtocolKind::Tel,
        ProtocolKind::TagF(1),
        ProtocolKind::Pessim,
        ProtocolKind::TdiSparse(4),
    ];
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::TagF(bound) => write!(f, "TAG-f{bound}"),
            ProtocolKind::TdiSparse(k) => write!(f, "TDI-S{k}"),
            other => f.write_str(other.name()),
        }
    }
}

/// The metadata of one non-deterministic delivery event under the PWD
/// model — "the unique identifier of a message, including the sender
/// identifier and the sending order number, as well as the receiver
/// identifier and the delivery order number" (§II.A). Four
/// identifiers; the unit of Fig. 6's piggyback accounting for TAG and
/// TEL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Determinant {
    /// Rank that sent the message.
    pub sender: u32,
    /// Per-(sender → receiver) send order number, starting at 1.
    pub send_index: u64,
    /// Rank that delivered the message.
    pub receiver: u32,
    /// Position in the receiver's total delivery sequence, starting
    /// at 1.
    pub deliver_index: u64,
}

impl_wire_struct!(Determinant {
    sender,
    send_index,
    receiver,
    deliver_index
});

impl Determinant {
    /// Number of identifiers a determinant contributes to piggyback
    /// accounting (paper §III.A: "the size of the metadata of a
    /// message is 4").
    pub const ID_COUNT: u64 = 4;

    /// The key that makes a determinant unique: a receiver delivers
    /// exactly one message at each position of its delivery sequence.
    pub fn key(&self) -> (u32, u64) {
        (self.receiver, self.deliver_index)
    }
}

/// A certified membership view: the epoch-stamped per-rank incarnation
/// floor maintained by the membership arbiter (the stable service slot
/// that also hosts the TEL event logger).
///
/// `floor[r]` is the lowest incarnation of rank `r` the view considers
/// alive; every lower incarnation has been declared dead and must be
/// *fenced* — its frames rejected — so that two incarnations of one
/// rank can never both have traffic accepted once the view has
/// propagated. `epoch` increments on every declaration, so views are
/// totally ordered and a receiver applies only newer ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    /// Monotonic epoch; bumped once per death declaration.
    pub epoch: u64,
    /// Per-rank lowest live incarnation (index = rank).
    pub floor: Vec<u64>,
}

impl_wire_struct!(MembershipView { epoch, floor });

impl MembershipView {
    /// The initial view for `n` ranks: epoch 0, every rank's first
    /// incarnation alive.
    pub fn initial(n: usize) -> Self {
        MembershipView { epoch: 0, floor: vec![1; n] }
    }

    /// The lowest incarnation of `rank` this view considers alive
    /// (ranks outside the view — e.g. the service slot — are never
    /// fenced).
    pub fn live_floor(&self, rank: Rank) -> u64 {
        self.floor.get(rank).copied().unwrap_or(0)
    }

    /// True when `incarnation` of `rank` has been declared dead under
    /// this view.
    pub fn is_fenced(&self, rank: Rank, incarnation: u64) -> bool {
        incarnation < self.live_floor(rank)
    }

    /// Declares `incarnation` of `rank` dead: raises the rank's floor
    /// above it and bumps the epoch. Returns `false` (and changes
    /// nothing) when the view already fences that incarnation — stale
    /// suspicions are idempotent.
    pub fn declare_dead(&mut self, rank: Rank, incarnation: u64) -> bool {
        if rank >= self.floor.len() || self.floor[rank] > incarnation {
            return false;
        }
        self.floor[rank] = incarnation + 1;
        self.epoch += 1;
        true
    }
}

/// Errors surfaced by protocol implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A piggyback or checkpoint blob failed to decode.
    Corrupt(&'static str),
    /// `on_deliver` was called for a message the protocol's gate had
    /// not approved (caller bug).
    NotDeliverable {
        /// Sending rank of the rejected message.
        src: Rank,
        /// Its per-pair send index.
        send_index: u64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Corrupt(what) => write!(f, "corrupt protocol data: {what}"),
            ProtocolError::NotDeliverable { src, send_index } => write!(
                f,
                "message (src {src}, send_index {send_index}) delivered without passing the gate"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn determinant_roundtrip() {
        let d = Determinant {
            sender: 3,
            send_index: 17,
            receiver: 1,
            deliver_index: 42,
        };
        let back: Determinant = decode_from_slice(&encode_to_vec(&d)).unwrap();
        assert_eq!(back, d);
        assert_eq!(d.key(), (1, 42));
    }

    #[test]
    fn membership_view_roundtrip_and_fencing() {
        let mut v = MembershipView::initial(3);
        assert_eq!(v.epoch, 0);
        assert!(!v.is_fenced(1, 1));
        assert!(v.declare_dead(1, 1));
        assert_eq!(v.epoch, 1);
        assert!(v.is_fenced(1, 1));
        assert!(!v.is_fenced(1, 2));
        // Stale re-declaration is a no-op.
        assert!(!v.declare_dead(1, 1));
        assert_eq!(v.epoch, 1);
        // The service slot (out of range) is never fenced.
        assert!(!v.is_fenced(3, 1));
        let back: MembershipView = decode_from_slice(&encode_to_vec(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn protocol_kind_names() {
        assert_eq!(ProtocolKind::Tdi.to_string(), "TDI");
        assert_eq!(ProtocolKind::Tag.to_string(), "TAG");
        assert_eq!(ProtocolKind::Tel.to_string(), "TEL");
        assert_eq!(ProtocolKind::TagF(2).to_string(), "TAG-f2");
        assert_eq!(ProtocolKind::TagF(2).name(), "TAG-f");
        assert_eq!(ProtocolKind::Pessim.to_string(), "PES");
        assert_eq!(ProtocolKind::TdiSparse(32).to_string(), "TDI-S32");
        assert_eq!(ProtocolKind::TdiSparse(32).name(), "TDI-S");
        assert!(!ProtocolKind::TdiSparse(32).uses_event_logger());
        assert_eq!(ProtocolKind::ALL.len(), 3);
        assert_eq!(ProtocolKind::EXTENDED.len(), 6);
    }
}
