//! TEL — causal logging with a stable event logger, the
//! Bouteiller-style baseline (\[5,9\] in the paper).
//!
//! Determinants are still created per delivery (PWD), but each process
//! ships its own determinants asynchronously to a stable event-logger
//! service; causal piggybacking covers a determinant only until the
//! logger's acknowledgement arrives. Piggyback volume therefore tracks
//! the *unstabilized window* rather than full history — smaller than
//! TAG, still far larger than TDI's fixed vector, and it adds logger
//! round-trip traffic (the "extra notification messages" of §V).
//!
//! Each message also carries the sender's stability-knowledge vector
//! (`n` extra identifiers, one stable count per process) so receivers
//! prune third-party determinants they are still carrying — the
//! distributed stability gossip of \[9\].

use crate::protocol::{DeliveryVerdict, LoggingProtocol, SendArtifacts};
use crate::{Determinant, ProtocolError, ProtocolKind, Rank, ReplayScript};
use std::collections::BTreeMap;

type DetKey = (u32, u64);

/// Event-logger causal logging baseline.
#[derive(Debug, Clone)]
pub struct Tel {
    me: Rank,
    n: usize,
    deliver_count: u64,
    /// Own determinants not yet acknowledged stable by the logger,
    /// keyed by deliver_index.
    own_unstable: BTreeMap<u64, Determinant>,
    /// Determinants of other processes carried causally until known
    /// stable.
    foreign_unstable: BTreeMap<DetKey, Determinant>,
    /// `stable_counts[r]`: the logger stably holds `r`'s determinants
    /// up to this deliver_index (as far as we know).
    stable_counts: Vec<u64>,
    /// Determinants created since the last drain to the logger.
    pending_logger: Vec<Determinant>,
    replay: ReplayScript,
}

impl Tel {
    /// New instance for process `me` of `n`.
    pub fn new(me: Rank, n: usize) -> Self {
        assert!(me < n, "rank {me} out of range for n={n}");
        Tel {
            me,
            n,
            deliver_count: 0,
            own_unstable: BTreeMap::new(),
            foreign_unstable: BTreeMap::new(),
            stable_counts: vec![0; n],
            pending_logger: Vec::new(),
            replay: ReplayScript::new(),
        }
    }

    /// Number of determinants currently piggybacked on every send.
    pub fn unstable_len(&self) -> usize {
        self.own_unstable.len() + self.foreign_unstable.len()
    }

    fn decode_piggyback(
        piggyback: &[u8],
    ) -> Result<(Vec<Determinant>, Vec<u64>), ProtocolError> {
        lclog_wire::decode_from_slice(piggyback)
            .map_err(|_| ProtocolError::Corrupt("TEL piggyback"))
    }

    fn prune_stable(&mut self, rank: u32, upto: u64) {
        self.foreign_unstable
            .retain(|&(r, idx), _| !(r == rank && idx <= upto));
        if rank as Rank == self.me {
            self.own_unstable.retain(|&idx, _| idx > upto);
        }
    }
}

impl LoggingProtocol for Tel {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Tel
    }

    fn n(&self) -> usize {
        self.n
    }

    fn me(&self) -> Rank {
        self.me
    }

    fn delivered_total(&self) -> u64 {
        self.deliver_count
    }

    fn on_send(&mut self, _dst: Rank, _send_index: u64) -> SendArtifacts {
        let dets: Vec<Determinant> = self
            .own_unstable
            .values()
            .chain(self.foreign_unstable.values())
            .copied()
            .collect();
        let payload = (dets, self.stable_counts.clone());
        let piggyback = lclog_wire::encode_to_vec(&payload);
        SendArtifacts {
            piggyback,
            // 4 identifiers per determinant + n stability counters.
            id_count: payload.0.len() as u64 * Determinant::ID_COUNT + self.n as u64,
        }
    }

    fn deliverable(&self, src: Rank, send_index: u64, _piggyback: &[u8]) -> DeliveryVerdict {
        if self.replay.allows(src, send_index, self.deliver_count + 1) {
            DeliveryVerdict::Deliver
        } else {
            DeliveryVerdict::Wait
        }
    }

    fn on_deliver(
        &mut self,
        src: Rank,
        send_index: u64,
        piggyback: &[u8],
    ) -> Result<(), ProtocolError> {
        if !self.replay.allows(src, send_index, self.deliver_count + 1) {
            return Err(ProtocolError::NotDeliverable { src, send_index });
        }
        let (dets, sender_stable) = Self::decode_piggyback(piggyback)?;
        if sender_stable.len() != self.n {
            return Err(ProtocolError::Corrupt("TEL stability vector length"));
        }
        // Merge the sender's stability knowledge: anything the logger
        // durably holds need not be carried any further.
        for (r, &upto) in sender_stable.iter().enumerate() {
            if upto > self.stable_counts[r] {
                self.stable_counts[r] = upto;
                self.prune_stable(r as u32, upto);
            }
        }
        for det in dets {
            let owner = det.receiver as Rank;
            if owner == self.me {
                // Our own determinant echoed back; we either still
                // hold it or it is already stable/checkpoint-covered.
                continue;
            }
            if det.deliver_index > self.stable_counts[owner] {
                self.foreign_unstable.insert(det.key(), det);
            }
        }
        self.deliver_count += 1;
        let own = Determinant {
            sender: src as u32,
            send_index,
            receiver: self.me as u32,
            deliver_index: self.deliver_count,
        };
        self.own_unstable.insert(own.deliver_index, own);
        self.pending_logger.push(own);
        Ok(())
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        let own: Vec<Determinant> = self.own_unstable.values().copied().collect();
        let foreign: Vec<Determinant> = self.foreign_unstable.values().copied().collect();
        lclog_wire::encode_to_vec(&(
            self.deliver_count,
            own,
            foreign,
            self.stable_counts.clone(),
        ))
    }

    fn restore_from_checkpoint(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        let (deliver_count, own, foreign, stable): (
            u64,
            Vec<Determinant>,
            Vec<Determinant>,
            Vec<u64>,
        ) = lclog_wire::decode_from_slice(bytes)
            .map_err(|_| ProtocolError::Corrupt("TEL checkpoint"))?;
        if stable.len() != self.n {
            return Err(ProtocolError::Corrupt("TEL checkpoint stable length"));
        }
        self.deliver_count = deliver_count;
        self.own_unstable = own.into_iter().map(|d| (d.deliver_index, d)).collect();
        self.foreign_unstable = foreign.into_iter().map(|d| (d.key(), d)).collect();
        self.stable_counts = stable;
        self.pending_logger.clear();
        self.replay = ReplayScript::new();
        Ok(())
    }

    fn on_local_checkpoint(&mut self) {
        // Deliveries covered by the checkpoint can never be replayed;
        // their determinants are obsolete even if the logger never
        // acked them.
        let upto = self.deliver_count;
        self.own_unstable.retain(|&idx, _| idx > upto);
    }

    fn on_peer_checkpoint(&mut self, peer: Rank, peer_delivered_total: u64) {
        self.foreign_unstable
            .retain(|&(r, idx), _| !(r == peer as u32 && idx <= peer_delivered_total));
    }

    fn determinants_for(&self, failed: Rank) -> Vec<Determinant> {
        // The stable portion lives at the event logger; the runtime
        // queries it separately. We contribute the unstable window.
        self.foreign_unstable
            .values()
            .filter(|d| d.receiver as Rank == failed)
            .copied()
            .collect()
    }

    fn install_recovery_info(&mut self, dets: Vec<Determinant>) {
        let relevant = dets
            .into_iter()
            .filter(|d| d.deliver_index > self.deliver_count);
        self.replay.install(self.me, relevant);
    }

    fn wants_event_logger(&self) -> bool {
        true
    }

    fn needs_full_recovery_info(&self) -> bool {
        true
    }

    fn drain_determinants_for_logger(&mut self) -> Vec<Determinant> {
        std::mem::take(&mut self.pending_logger)
    }

    fn on_logger_ack(&mut self, upto: u64) {
        if upto > self.stable_counts[self.me] {
            self.stable_counts[self.me] = upto;
            let me = self.me as u32;
            self.prune_stable(me, upto);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(from: &mut Tel, to: &mut Tel, send_index: u64) -> u64 {
        let a = from.on_send(to.me(), send_index);
        to.on_deliver(from.me(), send_index, &a.piggyback).unwrap();
        a.id_count
    }

    #[test]
    fn unstable_window_grows_until_ack() {
        let mut p0 = Tel::new(0, 2);
        let mut p1 = Tel::new(1, 2);
        assert_eq!(pass(&mut p0, &mut p1, 1), 2); // no dets yet, +n counters
        assert_eq!(pass(&mut p1, &mut p0, 1), 6); // 1 det * 4 + n
        assert_eq!(pass(&mut p0, &mut p1, 2), 10); // 2 dets * 4 + n
        // Logger acks p1's first determinant.
        p1.on_logger_ack(1);
        // p1 delivered twice (dets at idx 1,2) and holds p0's det;
        // ack(1) removes own idx 1 → own {2} + foreign {p0's 1} = 2.
        assert_eq!(p1.unstable_len(), 2);
        let a = p1.on_send(0, 2);
        assert_eq!(a.id_count, 10);
    }

    #[test]
    fn stability_propagates_via_header_counter() {
        let mut p0 = Tel::new(0, 3);
        let mut p1 = Tel::new(1, 3);
        let mut p2 = Tel::new(2, 3);
        pass(&mut p0, &mut p1, 1); // p1 det @1
        pass(&mut p1, &mut p2, 1); // p2 carries p1's det
        assert_eq!(p2.unstable_len(), 2); // p1's det + own det
        // Logger acks p1; p1's next message tells p2.
        p1.on_logger_ack(1);
        pass(&mut p1, &mut p2, 2);
        // p2 pruned p1's stable det; now holds own dets (2) only...
        // p1's message also carried nothing new that is unstable.
        assert_eq!(
            p2.foreign_unstable.values().filter(|d| d.receiver == 1).count(),
            0
        );
    }

    #[test]
    fn drain_hands_over_each_det_once() {
        let mut p0 = Tel::new(0, 2);
        let mut p1 = Tel::new(1, 2);
        pass(&mut p0, &mut p1, 1);
        pass(&mut p0, &mut p1, 2);
        let drained = p1.drain_determinants_for_logger();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].deliver_index, 1);
        assert_eq!(drained[1].deliver_index, 2);
        assert!(p1.drain_determinants_for_logger().is_empty());
    }

    #[test]
    fn replay_script_gates_delivery() {
        let mut p = Tel::new(0, 2);
        p.install_recovery_info(vec![Determinant {
            sender: 1,
            send_index: 2,
            receiver: 0,
            deliver_index: 1,
        }]);
        let empty = lclog_wire::encode_to_vec(&(Vec::<Determinant>::new(), vec![0u64; 2]));
        assert_eq!(p.deliverable(1, 1, &empty), DeliveryVerdict::Wait);
        assert_eq!(p.deliverable(1, 2, &empty), DeliveryVerdict::Deliver);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut p0 = Tel::new(0, 2);
        let mut p1 = Tel::new(1, 2);
        pass(&mut p0, &mut p1, 1);
        pass(&mut p1, &mut p0, 1);
        let blob = p0.checkpoint_bytes();
        let mut fresh = Tel::new(0, 2);
        fresh.restore_from_checkpoint(&blob).unwrap();
        assert_eq!(fresh.deliver_count, p0.deliver_count);
        assert_eq!(fresh.own_unstable, p0.own_unstable);
        assert_eq!(fresh.foreign_unstable, p0.foreign_unstable);
        assert_eq!(fresh.stable_counts, p0.stable_counts);
    }

    #[test]
    fn local_checkpoint_prunes_own_window() {
        let mut p0 = Tel::new(0, 2);
        let mut p1 = Tel::new(1, 2);
        pass(&mut p0, &mut p1, 1);
        assert_eq!(p1.own_unstable.len(), 1);
        p1.on_local_checkpoint();
        assert_eq!(p1.own_unstable.len(), 0);
    }

    #[test]
    fn survivor_contribution_covers_unstable_window() {
        let mut p0 = Tel::new(0, 3);
        let mut p1 = Tel::new(1, 3);
        let mut p2 = Tel::new(2, 3);
        pass(&mut p0, &mut p1, 1);
        pass(&mut p1, &mut p2, 1);
        let dets = p2.determinants_for(1);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].receiver, 1);
    }

    #[test]
    fn corrupt_piggyback_is_an_error() {
        let mut p = Tel::new(0, 2);
        assert!(matches!(
            p.on_deliver(1, 1, &[0x09]),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    #[test]
    fn wants_event_logger() {
        assert!(Tel::new(0, 2).wants_event_logger());
    }
}
