//! TAG — tracking based on an antecedence graph, the Manetho / LogOn
//! style baseline (\[6,7\] in the paper).
//!
//! Every delivery is a non-deterministic event under PWD, so each
//! process accumulates a *graph* of determinants — one per delivery it
//! causally depends on — and, on every send, computes the *increment*
//! its peer is missing (the set difference against an estimate of what
//! that peer already holds) and piggybacks it. This is precisely the
//! cost structure the paper attacks: piggyback volume grows with
//! message history, and the increment computation itself takes time
//! ("another source is the calculation of the increment of antecedence
//! graph", §IV.A).
//!
//! Recovery is PWD replay: survivors ship the determinants they hold
//! about the failed process; the incarnation re-delivers in exactly
//! the recorded order via a [`ReplayScript`].

use crate::protocol::{DeliveryVerdict, LoggingProtocol, SendArtifacts};
use crate::{Determinant, ProtocolError, ProtocolKind, Rank, ReplayScript};
use std::collections::{BTreeMap, BTreeSet};

/// Key identifying a determinant: each receiver fills each delivery
/// position exactly once.
type DetKey = (u32, u64);

/// Antecedence-graph causal logging baseline.
#[derive(Debug, Clone)]
pub struct Tag {
    me: Rank,
    n: usize,
    deliver_count: u64,
    /// Determinants this process causally depends on (including its
    /// own deliveries). BTree keeps piggyback encodings deterministic.
    graph: BTreeMap<DetKey, Determinant>,
    /// Determinants each peer *provably* holds: what it piggybacked to
    /// us, plus its own delivery events. The paper's §IV.A observation
    /// — "there is no way for a process to precisely know the
    /// antecedence graph that the receiver currently holds, it has to
    /// piggyback conservatively sufficient metadata" — is exactly why
    /// this set is NOT updated optimistically on send: a sender keeps
    /// re-piggybacking until the peer proves knowledge, the redundancy
    /// the paper attacks.
    known_by: Vec<BTreeSet<DetKey>>,
    /// Pre-failure delivery order during rolling forward.
    replay: ReplayScript,
}

impl Tag {
    /// New instance for process `me` of `n`.
    pub fn new(me: Rank, n: usize) -> Self {
        assert!(me < n, "rank {me} out of range for n={n}");
        Tag {
            me,
            n,
            deliver_count: 0,
            graph: BTreeMap::new(),
            known_by: vec![BTreeSet::new(); n],
            replay: ReplayScript::new(),
        }
    }

    /// Current graph size (determinant count), exposed for tests and
    /// the ablation benchmarks.
    pub fn graph_len(&self) -> usize {
        self.graph.len()
    }

    fn decode_piggyback(piggyback: &[u8]) -> Result<Vec<Determinant>, ProtocolError> {
        lclog_wire::decode_from_slice(piggyback)
            .map_err(|_| ProtocolError::Corrupt("TAG piggyback determinants"))
    }
}

impl LoggingProtocol for Tag {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Tag
    }

    fn n(&self) -> usize {
        self.n
    }

    fn me(&self) -> Rank {
        self.me
    }

    fn delivered_total(&self) -> u64 {
        self.deliver_count
    }

    fn on_send(&mut self, dst: Rank, _send_index: u64) -> SendArtifacts {
        // The increment: everything in the graph the peer is not
        // *provably* holding. This set difference is the
        // graph-traversal cost the paper measures, and the conservative
        // re-piggybacking is its data-volume cost.
        let known = &self.known_by[dst];
        let increment: Vec<Determinant> = self
            .graph
            .iter()
            .filter(|(key, _)| !known.contains(*key))
            .map(|(_, det)| *det)
            .collect();
        let piggyback = lclog_wire::encode_to_vec(&increment);
        SendArtifacts {
            piggyback,
            id_count: increment.len() as u64 * Determinant::ID_COUNT,
        }
    }

    fn deliverable(&self, src: Rank, send_index: u64, _piggyback: &[u8]) -> DeliveryVerdict {
        // PWD: in normal operation any queue-order is *recorded*, not
        // constrained; during rolling forward the replay script pins
        // recorded positions.
        if self.replay.allows(src, send_index, self.deliver_count + 1) {
            DeliveryVerdict::Deliver
        } else {
            DeliveryVerdict::Wait
        }
    }

    fn on_deliver(
        &mut self,
        src: Rank,
        send_index: u64,
        piggyback: &[u8],
    ) -> Result<(), ProtocolError> {
        if !self.replay.allows(src, send_index, self.deliver_count + 1) {
            return Err(ProtocolError::NotDeliverable { src, send_index });
        }
        let dets = Self::decode_piggyback(piggyback)?;
        for det in dets {
            // The sender held these, so it provably knows them — and
            // so does whoever created them (the det's receiver).
            self.known_by[src].insert(det.key());
            self.known_by[det.receiver as Rank].insert(det.key());
            self.graph.insert(det.key(), det);
        }
        self.deliver_count += 1;
        // This delivery is itself a new non-deterministic event; its
        // creator trivially knows it.
        let own = Determinant {
            sender: src as u32,
            send_index,
            receiver: self.me as u32,
            deliver_index: self.deliver_count,
        };
        self.graph.insert(own.key(), own);
        self.known_by[self.me].insert(own.key());
        Ok(())
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        let graph: Vec<Determinant> = self.graph.values().copied().collect();
        let known: Vec<Vec<(u32, u64)>> = self
            .known_by
            .iter()
            .map(|set| set.iter().copied().collect())
            .collect();
        lclog_wire::encode_to_vec(&(self.deliver_count, graph, known))
    }

    #[allow(clippy::type_complexity)]
    fn restore_from_checkpoint(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        let (deliver_count, graph, known): (u64, Vec<Determinant>, Vec<Vec<(u32, u64)>>) =
            lclog_wire::decode_from_slice(bytes)
                .map_err(|_| ProtocolError::Corrupt("TAG checkpoint"))?;
        if known.len() != self.n {
            return Err(ProtocolError::Corrupt("TAG checkpoint known_by length"));
        }
        self.deliver_count = deliver_count;
        self.graph = graph.into_iter().map(|d| (d.key(), d)).collect();
        self.known_by = known
            .into_iter()
            .map(|keys| keys.into_iter().collect())
            .collect();
        self.replay = ReplayScript::new();
        Ok(())
    }

    // No checkpoint-based graph pruning: the baseline protocols only
    // stop piggybacking a determinant once "all processes hold it and
    // know that all other processes already hold it" (§V) — a
    // condition that effectively never fires mid-run. The graph tracks
    // the whole history, exactly the scalability problem the paper
    // demonstrates. (`on_local_checkpoint` / `on_peer_checkpoint`
    // intentionally keep their no-op defaults.)

    fn determinants_for(&self, failed: Rank) -> Vec<Determinant> {
        self.graph
            .values()
            .filter(|d| d.receiver as Rank == failed)
            .copied()
            .collect()
    }

    fn install_recovery_info(&mut self, dets: Vec<Determinant>) {
        // Ignore events the restored checkpoint already covers.
        let relevant = dets
            .into_iter()
            .filter(|d| d.deliver_index > self.deliver_count);
        self.replay.install(self.me, relevant);
    }

    fn needs_full_recovery_info(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Route one message between two protocol instances.
    fn pass(from: &mut Tag, to: &mut Tag, send_index: u64) -> u64 {
        let a = from.on_send(to.me(), send_index);
        to.on_deliver(from.me(), send_index, &a.piggyback).unwrap();
        a.id_count
    }

    #[test]
    fn piggyback_grows_with_history_then_dedups() {
        let mut p0 = Tag::new(0, 3);
        let mut p1 = Tag::new(1, 3);
        // First message: p0 has no history, empty piggyback.
        assert_eq!(pass(&mut p0, &mut p1, 1), 0);
        // p1 replies: it now depends on its own delivery event — one
        // determinant, 4 identifiers.
        assert_eq!(pass(&mut p1, &mut p0, 1), 4);
        // p0 sends again: p0 now holds 2 dets (p1's delivery + its
        // own), but p1 already knows its own delivery det, so the
        // increment is only p0's new delivery det.
        let a = p0.on_send(1, 2);
        assert_eq!(a.id_count, 4);
    }

    #[test]
    fn increment_to_third_party_carries_transitive_history() {
        let mut p0 = Tag::new(0, 3);
        let mut p1 = Tag::new(1, 3);
        let mut p2 = Tag::new(2, 3);
        pass(&mut p0, &mut p1, 1); // p1 delivers: det A
        pass(&mut p1, &mut p2, 1); // p2 delivers: gets A, creates B
        // p2 -> p0 must piggyback both A and B (p0 knows neither).
        let a = p2.on_send(0, 1);
        assert_eq!(a.id_count, 8);
        p0.on_deliver(2, 1, &a.piggyback).unwrap();
        assert_eq!(p0.graph_len(), 3); // A, B, and p0's own new det
    }

    #[test]
    fn replay_script_enforces_original_order() {
        let mut p = Tag::new(1, 3);
        p.install_recovery_info(vec![
            Determinant { sender: 0, send_index: 1, receiver: 1, deliver_index: 1 },
            Determinant { sender: 2, send_index: 1, receiver: 1, deliver_index: 2 },
        ]);
        // Message from rank 2 arrived first but must wait.
        assert_eq!(p.deliverable(2, 1, &[0]), DeliveryVerdict::Wait);
        assert_eq!(p.deliverable(0, 1, &[0]), DeliveryVerdict::Deliver);
        let empty = lclog_wire::encode_to_vec(&Vec::<Determinant>::new());
        p.on_deliver(0, 1, &empty).unwrap();
        assert_eq!(p.deliverable(2, 1, &empty), DeliveryVerdict::Deliver);
        p.on_deliver(2, 1, &empty).unwrap();
        // Past the horizon: free again.
        assert_eq!(p.deliverable(0, 2, &empty), DeliveryVerdict::Deliver);
    }

    #[test]
    fn on_deliver_rejects_out_of_script_order() {
        let mut p = Tag::new(1, 2);
        p.install_recovery_info(vec![Determinant {
            sender: 0,
            send_index: 2,
            receiver: 1,
            deliver_index: 1,
        }]);
        let empty = lclog_wire::encode_to_vec(&Vec::<Determinant>::new());
        assert!(matches!(
            p.on_deliver(0, 1, &empty),
            Err(ProtocolError::NotDeliverable { .. })
        ));
    }

    #[test]
    fn checkpoint_roundtrip_preserves_graph_and_knowledge() {
        let mut p0 = Tag::new(0, 2);
        let mut p1 = Tag::new(1, 2);
        pass(&mut p0, &mut p1, 1);
        pass(&mut p1, &mut p0, 1);
        let blob = p0.checkpoint_bytes();
        let mut fresh = Tag::new(0, 2);
        fresh.restore_from_checkpoint(&blob).unwrap();
        assert_eq!(fresh.deliver_count, p0.deliver_count);
        assert_eq!(fresh.graph, p0.graph);
        assert_eq!(fresh.known_by, p0.known_by);
    }

    #[test]
    fn checkpoints_do_not_prune_the_graph() {
        // The baseline keeps full history (§V): checkpoint events
        // leave the antecedence graph untouched.
        let mut p0 = Tag::new(0, 2);
        let mut p1 = Tag::new(1, 2);
        pass(&mut p0, &mut p1, 1);
        pass(&mut p1, &mut p0, 1);
        let before = p0.graph_len();
        p0.on_local_checkpoint();
        p0.on_peer_checkpoint(1, 100);
        assert_eq!(p0.graph_len(), before);
    }

    #[test]
    fn conservative_resend_repeats_unproven_determinants() {
        // §IV.A: with no proof the receiver holds a determinant, it is
        // piggybacked again on every send.
        let mut p0 = Tag::new(0, 3);
        let mut p1 = Tag::new(1, 3);
        pass(&mut p0, &mut p1, 1); // p1 creates det A
        pass(&mut p1, &mut p0, 1); // p0 holds A, creates det B
        // Two consecutive sends p0 -> p2 both carry A and B.
        let first = p0.on_send(2, 1);
        let second = p0.on_send(2, 2);
        assert_eq!(first.id_count, 8);
        assert_eq!(second.id_count, 8);
    }

    #[test]
    fn survivors_hand_over_failed_process_determinants() {
        let mut p0 = Tag::new(0, 3);
        let mut p1 = Tag::new(1, 3);
        let mut p2 = Tag::new(2, 3);
        pass(&mut p0, &mut p1, 1); // det: p1 delivered (0, 1) at pos 1
        pass(&mut p1, &mut p2, 1); // p2 learns that det
        let dets = p2.determinants_for(1);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].sender, 0);
        assert_eq!(dets[0].deliver_index, 1);
    }

    #[test]
    fn install_ignores_pre_checkpoint_determinants() {
        let mut p = Tag::new(1, 2);
        p.deliver_count = 5; // restored from checkpoint
        p.install_recovery_info(vec![
            Determinant { sender: 0, send_index: 1, receiver: 1, deliver_index: 3 },
            Determinant { sender: 0, send_index: 9, receiver: 1, deliver_index: 6 },
        ]);
        let empty = lclog_wire::encode_to_vec(&Vec::<Determinant>::new());
        // Position 6 pinned to (0, 9).
        assert_eq!(p.deliverable(0, 8, &empty), DeliveryVerdict::Wait);
        assert_eq!(p.deliverable(0, 9, &empty), DeliveryVerdict::Deliver);
    }

    #[test]
    fn corrupt_piggyback_is_an_error() {
        let mut p = Tag::new(0, 2);
        assert!(matches!(
            p.on_deliver(1, 1, &[0xFF, 0x01]),
            Err(ProtocolError::Corrupt(_))
        ));
    }
}
