use crate::Rank;
use lclog_wire::{Decode, Encode, Reader, WireError};
use std::ops::Index;

/// The paper's `depend_interval[n]` vector: element `i` of process
/// `P_i` counts the messages `P_i` has delivered (its current process
/// state interval index); every other element is the highest interval
/// index of that process the owner transitively depends on.
///
/// Merging piggybacked vectors element-wise with `max` makes this a
/// join-semilattice — the property the protocol's correctness rests
/// on, checked by property tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependVector(Vec<u64>);

impl DependVector {
    /// The all-zero vector for an `n`-process system.
    pub fn zeroed(n: usize) -> Self {
        DependVector(vec![0; n])
    }

    /// Build from raw counts.
    pub fn from_vec(v: Vec<u64>) -> Self {
        DependVector(v)
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when tracking zero processes (never in practice).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Increment the owner's own interval index (one more delivery).
    pub fn increment(&mut self, me: Rank) {
        self.0[me] += 1;
    }

    /// Element-wise max with `other`, skipping the owner's own element
    /// exactly as Algorithm 1 lines 22–24 do (the local count is
    /// authoritative and always ≥ any piggybacked view of it).
    pub fn merge_from(&mut self, other: &DependVector, me: Rank) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (k, (mine, theirs)) in self.0.iter_mut().zip(other.0.iter()).enumerate() {
            if k != me && *theirs > *mine {
                *mine = *theirs;
            }
        }
    }

    /// Full element-wise join (used by tests for the lattice laws).
    pub fn join(&self, other: &DependVector) -> DependVector {
        DependVector(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| (*a).max(*b))
                .collect(),
        )
    }

    /// `self[k] <= other[k]` for every `k`.
    pub fn dominated_by(&self, other: &DependVector) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }

    /// Raw slice access.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }
}

impl Index<Rank> for DependVector {
    type Output = u64;
    fn index(&self, rank: Rank) -> &u64 {
        &self.0[rank]
    }
}

impl Encode for DependVector {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Encoded as `n` varints with no length prefix: every party
        // knows `n`, and Fig. 6 counts exactly n identifiers.
        for v in &self.0 {
            lclog_wire::varint::write_u64(buf, *v);
        }
    }
    fn encoded_len(&self) -> usize {
        self.0.iter().map(|v| lclog_wire::varint::len_u64(*v)).sum()
    }
}

impl DependVector {
    /// Decode a vector of known length `n`.
    pub fn decode_n(reader: &mut Reader<'_>, n: usize) -> Result<Self, WireError> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(lclog_wire::varint::read_u64(reader)?);
        }
        Ok(DependVector(v))
    }
}

/// A per-peer counter vector: the paper's `last_send_index[n]` /
/// `last_deliver_index[n]` (and friends). Element `j` counts events
/// involving peer `j`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterVector(Vec<u64>);

impl CounterVector {
    /// All-zero counters for an `n`-process system.
    pub fn zeroed(n: usize) -> Self {
        CounterVector(vec![0; n])
    }

    /// Build from raw counts.
    pub fn from_vec(v: Vec<u64>) -> Self {
        CounterVector(v)
    }

    /// Number of peers tracked.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Current count for peer `j`.
    pub fn get(&self, j: Rank) -> u64 {
        self.0[j]
    }

    /// Set the count for peer `j`.
    pub fn set(&mut self, j: Rank, value: u64) {
        self.0[j] = value;
    }

    /// Increment and return the new count for peer `j`.
    pub fn bump(&mut self, j: Rank) -> u64 {
        self.0[j] += 1;
        self.0[j]
    }

    /// Sum of all counters (e.g. total messages delivered).
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Raw slice access.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }
}

impl Index<Rank> for CounterVector {
    type Output = u64;
    fn index(&self, rank: Rank) -> &u64 {
        &self.0[rank]
    }
}

impl Encode for CounterVector {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for CounterVector {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CounterVector(Vec::<u64>::decode(reader)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_wire::encode_to_vec;
    use proptest::prelude::*;

    #[test]
    fn increment_and_merge_follow_algorithm_1() {
        // Fig. 1 worked example from §III.B: before P1 delivers m5 its
        // vector is (0,2,1,0); m5 carries (0,2,2,1); after delivery it
        // must be (0,3,2,1)... the paper says (0,2,2,1) *before* the
        // increment for m5 itself is applied to element 1; our
        // on_deliver applies increment-then-merge, so check both
        // pieces separately here.
        let mut mine = DependVector::from_vec(vec![0, 2, 1, 0]);
        let piggy = DependVector::from_vec(vec![0, 2, 2, 1]);
        mine.merge_from(&piggy, 1);
        assert_eq!(mine.as_slice(), &[0, 2, 2, 1]);
        mine.increment(1);
        assert_eq!(mine.as_slice(), &[0, 3, 2, 1]);
    }

    #[test]
    fn merge_skips_own_element() {
        let mut mine = DependVector::from_vec(vec![5, 0]);
        let piggy = DependVector::from_vec(vec![9, 9]);
        mine.merge_from(&piggy, 0);
        assert_eq!(mine.as_slice(), &[5, 9]);
    }

    #[test]
    fn depend_vector_fixed_width_roundtrip() {
        let v = DependVector::from_vec(vec![0, 300, u64::MAX, 7]);
        let bytes = encode_to_vec(&v);
        let mut reader = lclog_wire::Reader::new(&bytes);
        let back = DependVector::decode_n(&mut reader, 4).unwrap();
        reader.finish().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn counter_vector_ops() {
        let mut c = CounterVector::zeroed(3);
        assert_eq!(c.bump(1), 1);
        assert_eq!(c.bump(1), 2);
        c.set(2, 7);
        assert_eq!(c.get(0), 0);
        assert_eq!(c[1], 2);
        assert_eq!(c.total(), 9);
        let bytes = encode_to_vec(&c);
        let back: CounterVector = lclog_wire::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, c);
    }

    fn arb_vec(n: usize) -> impl Strategy<Value = DependVector> {
        proptest::collection::vec(0u64..1000, n).prop_map(DependVector::from_vec)
    }

    proptest! {
        // The join-semilattice laws TDI's correctness relies on.
        #[test]
        fn prop_join_commutative(a in arb_vec(6), b in arb_vec(6)) {
            prop_assert_eq!(a.join(&b), b.join(&a));
        }

        #[test]
        fn prop_join_associative(a in arb_vec(4), b in arb_vec(4), c in arb_vec(4)) {
            prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        }

        #[test]
        fn prop_join_idempotent(a in arb_vec(5)) {
            prop_assert_eq!(a.join(&a), a);
        }

        #[test]
        fn prop_join_is_upper_bound(a in arb_vec(5), b in arb_vec(5)) {
            let j = a.join(&b);
            prop_assert!(a.dominated_by(&j));
            prop_assert!(b.dominated_by(&j));
        }

        #[test]
        fn prop_merge_from_matches_join_except_own(
            a in arb_vec(5), b in arb_vec(5), me in 0usize..5)
        {
            let mut merged = a.clone();
            merged.merge_from(&b, me);
            let join = a.join(&b);
            for k in 0..5 {
                if k == me {
                    prop_assert_eq!(merged[k], a[k]);
                } else {
                    prop_assert_eq!(merged[k], join[k]);
                }
            }
        }

        #[test]
        fn prop_monotone_merge_never_decreases(a in arb_vec(5), b in arb_vec(5)) {
            let mut merged = a.clone();
            merged.merge_from(&b, 2);
            prop_assert!(a.dominated_by(&merged));
        }
    }
}
