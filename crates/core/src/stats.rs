/// Per-process dependency-tracking cost counters — the raw material of
/// the paper's Fig. 6 (piggyback data amount) and Fig. 7 (tracking
/// time overhead).
///
/// Owned by the runtime (one per rank thread, no sharing) and summed
/// across ranks when an experiment ends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrackingStats {
    /// Application messages sent.
    pub sends: u64,
    /// Application messages delivered.
    pub delivers: u64,
    /// Identifiers piggybacked across all sends (TDI: n per message;
    /// TAG/TEL: 4 per determinant).
    pub piggyback_ids: u64,
    /// Encoded piggyback bytes across all sends.
    pub piggyback_bytes: u64,
    /// Nanoseconds spent constructing piggybacks (`on_send`).
    pub track_send_ns: u64,
    /// Nanoseconds spent merging piggybacks (`on_deliver`).
    pub track_deliver_ns: u64,
    /// Peak bytes retained in the sender-based message log (payloads +
    /// piggybacks) — the memory cost checkpoint-interval choices trade
    /// against (ablation ABL3).
    pub log_bytes_peak: u64,
    /// Nanoseconds an incarnation spent collecting recovery
    /// information (ROLLBACK broadcast → last RESPONSE / logger
    /// answer). PWD protocols cannot deliver anything during this
    /// window; TDI can — the paper's rolling-forward advantage,
    /// measured directly (ablation ABL2).
    pub recovery_sync_ns: u64,
    /// Sparse-codec DELTA frames encoded (0 for dense protocols).
    pub delta_frames: u64,
    /// Sparse-codec FULL frames encoded (0 for dense protocols).
    pub full_frames: u64,
    /// Resync requests this process issued for undecodable frames.
    pub resync_requests: u64,
}

/// Frame-level counters of the sparse piggyback codec, reported by
/// [`LoggingProtocol::frame_stats`](crate::LoggingProtocol::frame_stats)
/// and folded into [`TrackingStats`] by the runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// DELTA frames encoded on sends.
    pub delta_frames: u64,
    /// FULL frames encoded on sends (first-on-channel, periodic
    /// resync, or delta-not-smaller).
    pub full_frames: u64,
    /// Resync requests issued for frames that could not be decoded.
    pub resync_requests: u64,
}

impl TrackingStats {
    /// Fold another process's counters into this one.
    pub fn merge(&mut self, other: &TrackingStats) {
        self.sends += other.sends;
        self.delivers += other.delivers;
        self.piggyback_ids += other.piggyback_ids;
        self.piggyback_bytes += other.piggyback_bytes;
        self.track_send_ns += other.track_send_ns;
        self.track_deliver_ns += other.track_deliver_ns;
        // Peaks aggregate by max, not sum: the cluster-wide peak is
        // the worst single process (incarnations of one rank reuse
        // the same memory).
        self.log_bytes_peak = self.log_bytes_peak.max(other.log_bytes_peak);
        self.recovery_sync_ns += other.recovery_sync_ns;
        self.delta_frames += other.delta_frames;
        self.full_frames += other.full_frames;
        self.resync_requests += other.resync_requests;
    }

    /// Fig. 6's metric: average identifiers piggybacked per sent
    /// message.
    pub fn avg_ids_per_msg(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            self.piggyback_ids as f64 / self.sends as f64
        }
    }

    /// Average piggyback bytes per sent message.
    pub fn avg_bytes_per_msg(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            self.piggyback_bytes as f64 / self.sends as f64
        }
    }

    /// Fig. 7's metric: total tracking time (send-side construction
    /// plus deliver-side merge), in milliseconds.
    pub fn tracking_ms(&self) -> f64 {
        (self.track_send_ns + self.track_deliver_ns) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero_sends() {
        let s = TrackingStats::default();
        assert_eq!(s.avg_ids_per_msg(), 0.0);
        assert_eq!(s.avg_bytes_per_msg(), 0.0);
        assert_eq!(s.tracking_ms(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = TrackingStats {
            sends: 1,
            delivers: 2,
            piggyback_ids: 3,
            piggyback_bytes: 4,
            track_send_ns: 5,
            track_deliver_ns: 6,
            log_bytes_peak: 7,
            recovery_sync_ns: 100,
            delta_frames: 8,
            full_frames: 9,
            resync_requests: 10,
        };
        let mut b = a.clone();
        b.log_bytes_peak = 3;
        a.merge(&b);
        assert_eq!(a.sends, 2);
        assert_eq!(a.delivers, 4);
        assert_eq!(a.piggyback_ids, 6);
        assert_eq!(a.piggyback_bytes, 8);
        assert_eq!(a.track_send_ns, 10);
        assert_eq!(a.track_deliver_ns, 12);
        assert_eq!(a.log_bytes_peak, 7, "peaks merge by max");
        assert_eq!(a.recovery_sync_ns, 200);
        assert_eq!(a.delta_frames, 16);
        assert_eq!(a.full_frames, 18);
        assert_eq!(a.resync_requests, 20);
        assert_eq!(a.avg_ids_per_msg(), 3.0);
    }
}
