//! PES — pessimistic (synchronous) message logging, the classic
//! alternative the rollback-recovery survey \[4\] contrasts causal
//! logging with.
//!
//! Every delivery determinant is logged to the stable event logger
//! *before* the process is allowed to send its next message
//! ([`LoggingProtocol::send_ready`] gates the runtime). Nothing is
//! ever piggybacked — the cost moves from bandwidth to send latency:
//! each delivery inserts a logger round-trip on the critical path.
//! Recovery needs only the event logger (survivors contribute
//! nothing).
//!
//! Included as an extension baseline: the ablation benchmarks
//! quantify the latency-vs-piggyback trade against TDI/TAG/TEL.

use crate::protocol::{DeliveryVerdict, LoggingProtocol, SendArtifacts};
use crate::{Determinant, ProtocolError, ProtocolKind, Rank, ReplayScript};

/// Pessimistic logging baseline.
#[derive(Debug, Clone)]
pub struct Pessim {
    me: Rank,
    n: usize,
    deliver_count: u64,
    /// Highest deliver_index the logger has acknowledged.
    stable_count: u64,
    pending_logger: Vec<Determinant>,
    replay: ReplayScript,
}

impl Pessim {
    /// New instance for process `me` of `n`.
    pub fn new(me: Rank, n: usize) -> Self {
        assert!(me < n, "rank {me} out of range for n={n}");
        Pessim {
            me,
            n,
            deliver_count: 0,
            stable_count: 0,
            pending_logger: Vec::new(),
            replay: ReplayScript::new(),
        }
    }

    /// Deliveries not yet acknowledged stable.
    pub fn unstable(&self) -> u64 {
        self.deliver_count - self.stable_count
    }
}

impl LoggingProtocol for Pessim {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Pessim
    }

    fn n(&self) -> usize {
        self.n
    }

    fn me(&self) -> Rank {
        self.me
    }

    fn delivered_total(&self) -> u64 {
        self.deliver_count
    }

    fn on_send(&mut self, _dst: Rank, _send_index: u64) -> SendArtifacts {
        debug_assert!(
            self.send_ready(),
            "runtime must gate sends on send_ready()"
        );
        SendArtifacts {
            piggyback: Vec::new(),
            id_count: 0,
        }
    }

    fn deliverable(&self, src: Rank, send_index: u64, _piggyback: &[u8]) -> DeliveryVerdict {
        if self.replay.allows(src, send_index, self.deliver_count + 1) {
            DeliveryVerdict::Deliver
        } else {
            DeliveryVerdict::Wait
        }
    }

    fn on_deliver(
        &mut self,
        src: Rank,
        send_index: u64,
        piggyback: &[u8],
    ) -> Result<(), ProtocolError> {
        if !piggyback.is_empty() {
            return Err(ProtocolError::Corrupt("PES piggyback must be empty"));
        }
        if !self.replay.allows(src, send_index, self.deliver_count + 1) {
            return Err(ProtocolError::NotDeliverable { src, send_index });
        }
        self.deliver_count += 1;
        self.pending_logger.push(Determinant {
            sender: src as u32,
            send_index,
            receiver: self.me as u32,
            deliver_index: self.deliver_count,
        });
        Ok(())
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        lclog_wire::encode_to_vec(&(self.deliver_count, self.stable_count))
    }

    fn restore_from_checkpoint(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        let (deliver_count, stable_count): (u64, u64) = lclog_wire::decode_from_slice(bytes)
            .map_err(|_| ProtocolError::Corrupt("PES checkpoint"))?;
        self.deliver_count = deliver_count;
        // Everything the checkpoint covers can never be replayed;
        // treat it as stable regardless of the logger's view.
        self.stable_count = stable_count.max(deliver_count);
        self.pending_logger.clear();
        self.replay = ReplayScript::new();
        Ok(())
    }

    fn on_local_checkpoint(&mut self) {
        // Checkpointed deliveries need no determinant replay.
        self.stable_count = self.stable_count.max(self.deliver_count);
    }

    fn install_recovery_info(&mut self, dets: Vec<Determinant>) {
        let relevant = dets
            .into_iter()
            .filter(|d| d.deliver_index > self.deliver_count);
        self.replay.install(self.me, relevant);
    }

    fn needs_full_recovery_info(&self) -> bool {
        true
    }

    fn wants_event_logger(&self) -> bool {
        true
    }

    fn drain_determinants_for_logger(&mut self) -> Vec<Determinant> {
        std::mem::take(&mut self.pending_logger)
    }

    fn on_logger_ack(&mut self, upto: u64) {
        if upto > self.stable_count {
            self.stable_count = upto;
        }
    }

    fn send_ready(&self) -> bool {
        // The pessimistic invariant: no message leaves this process
        // while any of its delivery determinants is unstable.
        self.stable_count >= self.deliver_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_blocked_until_logger_ack() {
        let mut p = Pessim::new(0, 2);
        assert!(p.send_ready());
        p.on_deliver(1, 1, &[]).unwrap();
        assert!(!p.send_ready());
        assert_eq!(p.unstable(), 1);
        let drained = p.drain_determinants_for_logger();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].deliver_index, 1);
        p.on_logger_ack(1);
        assert!(p.send_ready());
        assert_eq!(p.unstable(), 0);
    }

    #[test]
    fn piggyback_is_empty_and_free() {
        let mut p = Pessim::new(0, 8);
        let art = p.on_send(1, 1);
        assert!(art.piggyback.is_empty());
        assert_eq!(art.id_count, 0);
    }

    #[test]
    fn nonempty_piggyback_rejected() {
        let mut p = Pessim::new(0, 2);
        assert!(matches!(
            p.on_deliver(1, 1, &[1]),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    #[test]
    fn replay_script_gates_recovery_delivery() {
        let mut p = Pessim::new(0, 3);
        p.install_recovery_info(vec![Determinant {
            sender: 2,
            send_index: 1,
            receiver: 0,
            deliver_index: 1,
        }]);
        assert_eq!(p.deliverable(1, 1, &[]), DeliveryVerdict::Wait);
        assert_eq!(p.deliverable(2, 1, &[]), DeliveryVerdict::Deliver);
    }

    #[test]
    fn checkpoint_marks_covered_deliveries_stable() {
        let mut p = Pessim::new(0, 2);
        p.on_deliver(1, 1, &[]).unwrap();
        assert!(!p.send_ready());
        p.on_local_checkpoint();
        assert!(p.send_ready(), "checkpoint covers the delivery");
        let blob = p.checkpoint_bytes();
        let mut fresh = Pessim::new(0, 2);
        fresh.restore_from_checkpoint(&blob).unwrap();
        assert_eq!(fresh.deliver_count, 1);
        assert!(fresh.send_ready());
    }
}
