use crate::stats::FrameStats;
use crate::{Determinant, Pessim, ProtocolError, ProtocolKind, Rank, SparseTdi, Tag, TagF, Tdi, Tel};

/// What `on_send` produces: the bytes to piggyback on the outgoing
/// message plus their size in *identifiers* (the unit the paper's
/// Fig. 6 reports).
#[derive(Debug, Clone)]
pub struct SendArtifacts {
    /// Opaque piggyback bytes; the receiver's protocol instance (and
    /// only it) decodes them. They are also stored in the sender's
    /// message log and re-attached verbatim on recovery resends.
    pub piggyback: Vec<u8>,
    /// Identifier count: `n` for TDI's vector, `4 × determinants`
    /// (+1 stability counter) for TAG/TEL.
    pub id_count: u64,
}

/// Verdict of the protocol's delivery gate for a queued message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryVerdict {
    /// All dependency constraints are satisfied; deliver now.
    Deliver,
    /// Some message this one depends on has not been delivered yet;
    /// leave it in the receiving queue.
    Wait,
}

/// One process's dependency-tracking half of a causal message-logging
/// protocol.
///
/// The runtime calls these hooks from a single rank thread, so
/// implementations need no interior synchronization; `Send` is
/// required because incarnations are new threads.
///
/// Division of labour (see crate docs): the runtime owns payload
/// logging, `last_send/deliver_index` counters, the per-sender FIFO
/// gate, duplicate suppression and checkpoint orchestration — this
/// trait owns *dependency* tracking only.
pub trait LoggingProtocol: Send {
    /// Which protocol this is.
    fn kind(&self) -> ProtocolKind;

    /// System size `n`.
    fn n(&self) -> usize;

    /// This process's rank.
    fn me(&self) -> Rank;

    /// Total messages this process has delivered (its current process
    /// state interval index).
    fn delivered_total(&self) -> u64;

    // ----- normal operation ------------------------------------------------

    /// The application is sending message number `send_index` (per
    /// destination) to `dst`: produce the piggyback.
    fn on_send(&mut self, dst: Rank, send_index: u64) -> SendArtifacts;

    /// May the queued message `(src, send_index, piggyback)` be
    /// delivered now? The runtime has already verified the per-sender
    /// FIFO condition (`send_index == last_deliver_index[src] + 1`).
    fn deliverable(&self, src: Rank, send_index: u64, piggyback: &[u8]) -> DeliveryVerdict;

    /// The runtime is delivering `(src, send_index)`: absorb the
    /// piggyback and advance the local interval index. Returns
    /// [`ProtocolError::NotDeliverable`] if the gate would have said
    /// [`DeliveryVerdict::Wait`] (defence against caller bugs).
    fn on_deliver(
        &mut self,
        src: Rank,
        send_index: u64,
        piggyback: &[u8],
    ) -> Result<(), ProtocolError>;

    // ----- checkpointing ---------------------------------------------------

    /// Serialize protocol state into the checkpoint image.
    fn checkpoint_bytes(&self) -> Vec<u8>;

    /// Restore protocol state from a checkpoint image.
    fn restore_from_checkpoint(&mut self, bytes: &[u8]) -> Result<(), ProtocolError>;

    /// This process just checkpointed: determinants describing its own
    /// deliveries up to now can never be needed again (it will never
    /// roll back past the checkpoint).
    fn on_local_checkpoint(&mut self) {}

    /// Peer `peer` checkpointed after delivering `peer_delivered_total`
    /// messages: prune tracking state about its earlier deliveries.
    fn on_peer_checkpoint(&mut self, _peer: Rank, _peer_delivered_total: u64) {}

    // ----- recovery: survivor side -----------------------------------------

    /// Determinants this process holds about `failed`'s pre-failure
    /// deliveries, shipped to the incarnation inside the `RESPONSE`.
    /// Empty for TDI — the dependent-interval vectors logged alongside
    /// payloads already carry everything recovery needs.
    fn determinants_for(&self, _failed: Rank) -> Vec<Determinant> {
        Vec::new()
    }

    // ----- recovery: incarnation side --------------------------------------

    /// Install delivery-order information recovered from survivors or
    /// the event logger (PWD protocols build their replay script from
    /// this; TDI ignores it).
    fn install_recovery_info(&mut self, _dets: Vec<Determinant>) {}

    /// Whether a recovering incarnation must hold *all* deliveries
    /// until every survivor (and the event logger) has contributed its
    /// recovery information. True for the PWD protocols — delivering
    /// against an incomplete replay script could fill a pinned slot
    /// with the wrong message. False for TDI: every message carries
    /// its own complete delivery constraint, the paper's "proactive
    /// perception of delivery order" (§V), which is also why TDI rolls
    /// forward faster (ablation ABL2).
    ///
    /// **Contract: the answer must be constant over the instance's
    /// lifetime** (a fixed property of the protocol, not of its
    /// state). The runtime caches it at kernel construction so the
    /// delivery hot path can consult it without locking the protocol.
    fn needs_full_recovery_info(&self) -> bool {
        false
    }

    // ----- event-logger integration (TEL only) ------------------------------

    /// Whether this protocol uses the stable event-logger service.
    fn wants_event_logger(&self) -> bool {
        false
    }

    /// Determinants created since the last drain, to be shipped
    /// asynchronously to the event logger.
    fn drain_determinants_for_logger(&mut self) -> Vec<Determinant> {
        Vec::new()
    }

    /// The event logger has stably stored this process's determinants
    /// up to delivery position `upto` — stop piggybacking them.
    fn on_logger_ack(&mut self, _upto: u64) {}

    /// May the application send right now? Pessimistic logging
    /// returns `false` while delivery determinants are still in
    /// flight to the logger; the runtime engine waits (servicing its
    /// inbox meanwhile). Always `true` for the causal protocols —
    /// their whole point is asynchronous logging.
    fn send_ready(&self) -> bool {
        true
    }

    /// The protocol's dependency-interval vector, when it tracks one
    /// (`depend_interval[n]` for TDI; `None` for protocols without a
    /// per-process interval vector). §III.E's order-insensitivity
    /// claim says every legal delivery schedule converges to the same
    /// vector — the schedule explorer extracts this to check it.
    fn interval_vector(&self) -> Option<Vec<u64>> {
        None
    }

    // ----- sparse-codec resync (TDI-S only) ---------------------------------

    /// Sources whose piggyback frames this process could not decode
    /// since the last drain (stale epoch or sequence gap). The runtime
    /// sends each one a `RESYNC_REQ` on its next tick. Empty for
    /// protocols with self-contained piggybacks.
    fn take_resync_requests(&mut self) -> Vec<Rank> {
        Vec::new()
    }

    /// Produce a full-vector resync snapshot for `dst` in answer to
    /// its `RESYNC_REQ`, re-anchoring the channel's delta chain.
    /// `None` for protocols that never need resyncing.
    fn resync_snapshot(&mut self, _dst: Rank) -> Option<Vec<u8>> {
        None
    }

    /// Install a resync snapshot received from `src`. No-op default
    /// for protocols that never request one.
    fn install_resync(&mut self, _src: Rank, _bytes: &[u8]) -> Result<(), ProtocolError> {
        Ok(())
    }

    /// Frame-level codec counters (delta vs. full frames, resync
    /// requests), when the protocol's wire form distinguishes them.
    fn frame_stats(&self) -> Option<FrameStats> {
        None
    }
}

/// Construct a protocol instance for process `me` of `n`.
pub fn make_protocol(kind: ProtocolKind, me: Rank, n: usize) -> Box<dyn LoggingProtocol> {
    match kind {
        ProtocolKind::Tdi => Box::new(Tdi::new(me, n)),
        ProtocolKind::Tag => Box::new(Tag::new(me, n)),
        ProtocolKind::Tel => Box::new(Tel::new(me, n)),
        ProtocolKind::TagF(f) => Box::new(TagF::new(me, n, f)),
        ProtocolKind::Pessim => Box::new(Pessim::new(me, n)),
        ProtocolKind::TdiSparse(k) => Box::new(SparseTdi::new(me, n, k)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_produces_requested_kind() {
        for kind in ProtocolKind::EXTENDED {
            let p = make_protocol(kind, 2, 4);
            assert_eq!(p.kind(), kind);
            assert_eq!(p.me(), 2);
            assert_eq!(p.n(), 4);
            assert_eq!(p.delivered_total(), 0);
        }
    }

    #[test]
    fn event_logger_and_send_gating_assignments() {
        assert!(!make_protocol(ProtocolKind::Tdi, 0, 2).wants_event_logger());
        assert!(!make_protocol(ProtocolKind::Tag, 0, 2).wants_event_logger());
        assert!(!make_protocol(ProtocolKind::TagF(1), 0, 2).wants_event_logger());
        assert!(make_protocol(ProtocolKind::Tel, 0, 2).wants_event_logger());
        assert!(make_protocol(ProtocolKind::Pessim, 0, 2).wants_event_logger());
        for kind in ProtocolKind::EXTENDED {
            let ready = make_protocol(kind, 0, 2).send_ready();
            assert!(ready, "{kind}: fresh instances can always send");
        }
    }
}
