//! Property tests for the sender-based message log: the resend set is
//! always exactly the retained suffix per destination, whatever
//! interleaving of inserts and GC releases occurred.

use bytes::Bytes;
use lclog_runtime::{LogEntry, SenderLog};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    /// Log the next message to `dst`.
    Send { dst: usize },
    /// `CHECKPOINT_ADVANCE` from `dst` covering `upto` (clamped to
    /// what was actually sent).
    Release { dst: usize, upto_fraction: u8 },
}

fn arb_ops(n: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..n).prop_map(|dst| Op::Send { dst }),
            ((0..n), any::<u8>()).prop_map(|(dst, upto_fraction)| Op::Release {
                dst,
                upto_fraction
            }),
        ],
        0..len,
    )
}

proptest! {
    #[test]
    fn prop_log_retains_exactly_the_unreleased_suffix(ops in arb_ops(3, 120)) {
        let n = 3;
        let mut log = SenderLog::new(n);
        let mut sent = vec![0u64; n];
        let mut released = vec![0u64; n];
        for op in ops {
            match op {
                Op::Send { dst } => {
                    sent[dst] += 1;
                    log.insert(LogEntry::new(
                        dst as u32,
                        sent[dst],
                        0,
                        Bytes::from_static(&[1, 2]),
                        false,
                        Bytes::from_static(b"x"),
                    ));
                }
                Op::Release { dst, upto_fraction } => {
                    let upto = (sent[dst] * upto_fraction as u64) / 255;
                    log.release(dst, upto);
                    released[dst] = released[dst].max(upto);
                }
            }
        }
        // Model: per dst, entries (released[dst], sent[dst]] remain.
        let mut expected: BTreeMap<(usize, u64), ()> = BTreeMap::new();
        for dst in 0..n {
            for idx in released[dst] + 1..=sent[dst] {
                expected.insert((dst, idx), ());
            }
        }
        let mut actual: BTreeMap<(usize, u64), ()> = BTreeMap::new();
        for dst in 0..n {
            for e in log.entries_after(dst, 0) {
                actual.insert((dst, e.send_index), ());
            }
        }
        prop_assert_eq!(actual, expected);
        prop_assert_eq!(log.len(), log.to_entries().len());
        // Checkpoint roundtrip preserves content.
        let rebuilt = SenderLog::from_entries(n, log.to_entries());
        prop_assert_eq!(rebuilt.len(), log.len());
        prop_assert_eq!(rebuilt.bytes(), log.bytes());
    }

    #[test]
    fn prop_entries_after_is_a_suffix(ops in arb_ops(2, 60), from in 0u64..30) {
        let mut log = SenderLog::new(2);
        let mut sent = [0u64; 2];
        for op in ops {
            if let Op::Send { dst } = op {
                sent[dst] += 1;
                log.insert(LogEntry::new(
                    dst as u32,
                    sent[dst],
                    0,
                    Bytes::new(),
                    false,
                    Bytes::new(),
                ));
            }
        }
        let suffix: Vec<u64> = log.entries_after(0, from).map(|e| e.send_index).collect();
        // Strictly increasing, all > from, contiguous to the end.
        prop_assert!(suffix.windows(2).all(|w| w[0] + 1 == w[1]));
        prop_assert!(suffix.iter().all(|&i| i > from));
        if let Some(&last) = suffix.last() {
            prop_assert_eq!(last, sent[0]);
        }
    }
}
