//! Round-trip property test for every [`WireMsg`] variant, plus the
//! zero-copy guarantee the data plane is built on: decoding from a
//! refcounted frame must hand back `Bytes` fields that *alias* the
//! frame allocation (windows, not copies).
//!
//! The generator is a seeded splitmix64 — fully deterministic, so CI
//! never sees a flaky shrink and any failure reproduces from its seed.

use bytes::{Bytes, BytesMut};
use lclog_core::Determinant;
use lclog_runtime::{AppWire, CkptAdvanceWire, ResponseWire, RollbackWire, WireMsg};
use lclog_wire::{decode_from_bytes, encode_into, encode_to_bytes};

/// splitmix64 (Steele et al.): tiny, seedable, and good enough to
/// exercise varint length boundaries.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Byte vector of `min..min + spread` bytes — spanning the
    /// 1-byte/2-byte varint length edge when `spread` allows.
    fn blob(&mut self, min: u64, spread: u64) -> Vec<u8> {
        let len = (min + self.below(spread)) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn det(&mut self) -> Determinant {
        Determinant {
            sender: self.below(64) as u32,
            send_index: self.next(),
            receiver: self.below(64) as u32,
            deliver_index: self.next(),
        }
    }

    fn msg(&mut self, variant: usize) -> WireMsg {
        match variant {
            0 => WireMsg::App(AppWire {
                tag: self.next() as u32,
                send_index: self.next(),
                // Non-empty, so the aliasing assertion below is
                // meaningful.
                piggyback: Bytes::from(self.blob(1, 200)),
                needs_ack: self.below(2) == 1,
                data: Bytes::from(self.blob(1, 300)),
            }),
            1 => WireMsg::Ack(self.next()),
            2 => WireMsg::Rollback(RollbackWire {
                last_deliver_index: (0..self.below(9)).map(|_| self.next()).collect(),
                epoch: self.next(),
            }),
            3 => WireMsg::Response(ResponseWire {
                delivered_from_you: self.next(),
                dets: (0..self.below(5)).map(|_| self.det()).collect(),
                epoch: self.next(),
            }),
            4 => WireMsg::CkptAdvance(CkptAdvanceWire {
                delivered_from_you: self.next(),
                total_delivered: self.next(),
            }),
            5 => WireMsg::LogDets((0..self.below(7)).map(|_| self.det()).collect()),
            6 => WireMsg::LogAck(self.next()),
            7 => WireMsg::LogQuery(self.below(64) as u32),
            8 => WireMsg::LogQueryResp((0..self.below(4)).map(|_| self.det()).collect()),
            _ => unreachable!(),
        }
    }
}

const VARIANTS: usize = 9;

#[test]
fn roundtrip_all_variants_and_decoded_bytes_alias_the_frame() {
    let mut rng = Rng(0x5EED_0DA7);
    for round in 0..VARIANTS * 25 {
        let variant = round % VARIANTS;
        let msg = rng.msg(variant);
        let frame = encode_to_bytes(&msg);
        let back: WireMsg = decode_from_bytes(&frame)
            .unwrap_or_else(|e| panic!("round {round}: decode failed: {e:?}"));
        assert_eq!(back, msg, "round {round} (variant {variant})");
        if let WireMsg::App(w) = &back {
            assert!(
                w.piggyback.shares_allocation(&frame),
                "round {round}: piggyback must be a window into the frame"
            );
            assert!(
                w.data.shares_allocation(&frame),
                "round {round}: payload must be a window into the frame"
            );
        }
    }
}

#[test]
fn truncated_frames_error_instead_of_panicking() {
    let mut rng = Rng(0x7A11_5EED);
    for variant in 0..VARIANTS {
        let msg = rng.msg(variant);
        let frame = encode_to_bytes(&msg);
        for cut in 0..frame.len() {
            let truncated = frame.slice(..cut);
            assert!(
                decode_from_bytes::<WireMsg>(&truncated).is_err(),
                "variant {variant}: prefix of {cut}/{} bytes must not decode",
                frame.len()
            );
        }
    }
}

#[test]
fn encode_into_reused_buffer_matches_one_shot_encoding() {
    // The transport's framing path appends into a reused `BytesMut`
    // after a header; the appended bytes must be identical to the
    // one-shot encoding regardless of what precedes them.
    let mut rng = Rng(0xB0B5_1ED5);
    let mut buf = BytesMut::with_capacity(64);
    for round in 0..VARIANTS * 8 {
        let msg = rng.msg(round % VARIANTS);
        buf.clear();
        buf.put_u8(0xAA); // stand-in frame header
        encode_into(&msg, &mut buf);
        assert_eq!(buf[0], 0xAA, "round {round}");
        assert_eq!(&buf[1..], &encode_to_bytes(&msg)[..], "round {round}");
    }
}
