//! End-to-end durable log shipping: node-loss (process + wiped local
//! store) recovery through the remote replica, torn-upload fallback,
//! and degraded-mode behaviour across a backend outage.
//!
//! The invariant is the same as in `cluster_recovery`: **digests of a
//! run with failures equal the digests of the fault-free run** — here
//! even when the failure takes the local stable store with it, which
//! the baseline protocol cannot survive at all.

use lclog_core::ProtocolKind;
use lclog_runtime::events::EventKind;
use lclog_runtime::{
    CheckpointPolicy, Cluster, ClusterConfig, FailurePlan, Fault, RankApp, RankCtx, RecvSpec,
    RemoteConfig, ReplicatorConfig, RunConfig, StepStatus,
};
use lclog_simnet::StorageChaos;
use lclog_stable::{Manifest, RemoteStore, MANIFEST_KEY};
use lclog_wire::impl_wire_struct;
use std::time::Duration;

fn mix(x: u64, salt: u64) -> u64 {
    (x ^ salt)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(23)
        .wrapping_add(0x1656_67B1_9E37_79F9)
}

#[derive(Clone)]
struct RingApp {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct RingState {
    round: u64,
    token: u64,
}
impl_wire_struct!(RingState { round, token });

const RING_TAG: u32 = 21;

impl RankApp for RingApp {
    type State = RingState;

    fn init(&self, rank: usize, _n: usize) -> RingState {
        RingState {
            round: 0,
            token: mix(rank as u64, 0x5EA5),
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut RingState) -> Result<StepStatus, Fault> {
        if state.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let r = ctx.rank();
        let right = (r + 1) % n;
        if r == 0 {
            let out = mix(state.token, state.round);
            ctx.send_value(right, RING_TAG, &out)?;
            let (_, t): (_, u64) = ctx.recv_value(RecvSpec::from(n - 1, RING_TAG))?;
            state.token = t;
        } else {
            let (_, t): (_, u64) = ctx.recv_value(RecvSpec::from(r - 1, RING_TAG))?;
            let out = mix(t, state.round ^ (r as u64) << 32);
            ctx.send_value(right, RING_TAG, &out)?;
            state.token = out;
        }
        state.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &RingState) -> u64 {
        mix(state.token, state.round)
    }
}

fn cfg(n: usize, kind: ProtocolKind) -> ClusterConfig {
    ClusterConfig::new(
        n,
        RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(3)),
    )
}

fn baseline(n: usize, kind: ProtocolKind, rounds: u64) -> Vec<u64> {
    Cluster::run(&cfg(n, kind), RingApp { rounds })
        .expect("fault-free ring run")
        .digests
}

/// Replicator knobs scaled to test time: fast retries, fast breaker
/// probes.
fn quick_replicator() -> ReplicatorConfig {
    ReplicatorConfig {
        retry_initial: Duration::from_micros(200),
        retry_cap: Duration::from_millis(2),
        breaker_cooldown: Duration::from_millis(2),
        ..ReplicatorConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Node loss: kill a rank AND wipe its local store. The respawn must
// restore the newest certified generation from the remote and rejoin
// via the ordinary ROLLBACK handshake.
// ---------------------------------------------------------------------------

fn wipe_restore(kind: ProtocolKind) {
    let rounds = 20;
    let clean = baseline(4, kind, rounds);
    let config = cfg(4, kind)
        .with_failures(FailurePlan::kill_wipe_at(1, 7))
        .with_remote(RemoteConfig::in_memory().with_replicator(quick_replicator()))
        .with_trace(true);
    let report = Cluster::run(&config, RingApp { rounds }).expect("node-loss run recovers");
    assert_eq!(report.kills, 1);
    assert_eq!(report.digests, clean, "{kind}: node loss changed the result");
    let stats = report.replicator.as_ref().expect("replicator ran");
    assert!(stats.restores >= 1, "restore path must have run: {stats:?}");
    assert_eq!(stats.unsynced_at_exit, 0, "remote must hold everything");
    let wiped = report
        .timeline
        .iter()
        .any(|e| matches!(e.kind, EventKind::StoreWiped { generations } if generations > 0));
    assert!(wiped, "timeline must record the store wipe");
    let restored = report
        .timeline
        .iter()
        .any(|e| e.rank == 1 && matches!(e.kind, EventKind::RemoteRestored { .. }));
    assert!(restored, "timeline must record the remote restore");
}

#[test]
fn wiped_rank_restores_from_remote_tdi() {
    wipe_restore(ProtocolKind::Tdi);
}

#[test]
fn wiped_rank_restores_from_remote_tel() {
    wipe_restore(ProtocolKind::Tel);
}

// ---------------------------------------------------------------------------
// Torn upload: the newest remote generation is damaged in flight with
// the node's death. Restore must fall back one generation — and the
// survivors' lagged log GC must still be able to replay the longer
// roll-forward interval.
// ---------------------------------------------------------------------------

#[test]
fn corrupted_newest_generation_falls_back_one() {
    let rounds = 20;
    let clean = baseline(4, ProtocolKind::Tdi, rounds);
    // Kill at step 8: checkpoints at steps 3 and 6 exist, so after the
    // newest (v2) is torn there is still a v1 to fall back to.
    let config = cfg(4, ProtocolKind::Tdi)
        .with_failures(FailurePlan::none().and_kill_wipe_corrupt(1, 8))
        .with_remote(RemoteConfig::in_memory().with_replicator(quick_replicator()))
        .with_trace(true);
    let report = Cluster::run(&config, RingApp { rounds }).expect("torn-upload run recovers");
    assert_eq!(report.kills, 1);
    assert_eq!(report.digests, clean, "fallback restore changed the result");
    let stats = report.replicator.as_ref().expect("replicator ran");
    assert!(
        stats.generations_skipped >= 1,
        "the damaged newest generation must have been skipped: {stats:?}"
    );
    let fell_back = report.timeline.iter().any(
        |e| matches!(e.kind, EventKind::RemoteRestored { skipped, .. } if skipped >= 1),
    );
    assert!(fell_back, "timeline must record the skipped generation");
}

// ---------------------------------------------------------------------------
// Backend outage: the breaker opens, shipping degrades to the bounded
// spill buffer without ever blocking the application, and when the
// backend returns the replicator re-syncs and catches up completely.
// ---------------------------------------------------------------------------

#[test]
fn outage_degrades_then_catches_up() {
    let rounds = 24;
    let clean = baseline(4, ProtocolKind::Tdi, rounds);
    let spill_limit = 16 * 1024;
    let (remote, handle) =
        RemoteConfig::faulty(StorageChaos::seeded(0xA11E).with_outage(4, 60));
    let config = cfg(4, ProtocolKind::Tdi)
        .with_remote(
            remote.with_replicator(quick_replicator().with_spill_limit(spill_limit)),
        )
        .with_trace(true);
    let report = Cluster::run(&config, RingApp { rounds }).expect("outage run completes");
    assert_eq!(report.digests, clean, "an outage must never affect the app");
    let stats = report.replicator.as_ref().expect("replicator ran");
    assert!(
        stats.degraded_windows >= 1,
        "the op-window outage must open the breaker: {stats:?}"
    );
    assert!(
        stats.spill_peak_bytes <= spill_limit,
        "spill peak {} exceeded the {} byte bound",
        stats.spill_peak_bytes,
        spill_limit
    );
    assert!(stats.resyncs >= 1, "breaker close must re-sync: {stats:?}");
    assert_eq!(
        stats.unsynced_at_exit, 0,
        "replication must catch up after the outage: {stats:?}"
    );
    // Every object the final manifest promises is certified.
    let store = handle.inner();
    let manifest =
        Manifest::decode(&store.get(MANIFEST_KEY).unwrap().expect("manifest present"))
            .expect("manifest intact");
    assert!(!manifest.entries.is_empty());
    for entry in &manifest.entries {
        let blob = store.get(&entry.key).unwrap().expect("object present");
        assert!(Manifest::certifies(entry, &blob), "{} not certified", entry.key);
    }
    let entered = report
        .timeline
        .iter()
        .any(|e| matches!(e.kind, EventKind::DegradedEntered { .. }));
    let exited = report
        .timeline
        .iter()
        .any(|e| matches!(e.kind, EventKind::DegradedExited { .. }));
    assert!(entered && exited, "timeline must bracket the degraded window");
}
