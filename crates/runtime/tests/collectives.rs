//! Direct tests of the collective operations, including under the
//! reordering fabric and with failure injection.

use lclog_core::ProtocolKind;
use lclog_runtime::collectives::{allreduce_sum_f64, barrier, broadcast, gather, reduce};
use lclog_runtime::{
    CheckpointPolicy, Cluster, ClusterConfig, FailurePlan, Fault, RankApp, RankCtx, RunConfig,
    StepStatus,
};
use lclog_simnet::NetConfig;
use lclog_wire::impl_wire_struct;

/// One step per collective kind, so every collective is exercised and
/// checkpoint/failure boundaries fall between them.
#[derive(Clone)]
struct CollectiveTour;

#[derive(Debug, Clone, PartialEq)]
struct TourState {
    stage: u64,
    checks: u64,
    acc: f64,
}
impl_wire_struct!(TourState { stage, checks, acc });

const ROUNDS: u64 = 4;

impl RankApp for CollectiveTour {
    type State = TourState;

    fn init(&self, rank: usize, _n: usize) -> TourState {
        TourState {
            stage: 0,
            checks: 0,
            acc: rank as f64 + 1.0,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, st: &mut TourState) -> Result<StepStatus, Fault> {
        if st.stage >= 4 * ROUNDS {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let r = ctx.rank();
        let tag = 50 + (st.stage as u32) * 4;
        match st.stage % 4 {
            0 => {
                barrier(ctx, tag)?;
                st.checks += 1;
            }
            1 => {
                let v = broadcast(ctx, 1 % n, tag, (r == 1 % n).then_some(st.acc))?;
                // Every rank folds the same broadcast value.
                st.acc = 0.5 * st.acc + 0.25 * v;
                st.checks += 1;
            }
            2 => {
                let sum = reduce(ctx, 0, tag, st.acc, |a, b| a + b)?;
                if r == 0 {
                    let sum = sum.expect("root sees the reduction");
                    st.acc += sum * 0.125;
                } else {
                    assert!(sum.is_none(), "non-roots get None");
                }
                // Re-sync everyone's view.
                st.acc = broadcast(ctx, 0, tag + 1, (r == 0).then_some(st.acc))?;
                st.checks += 1;
            }
            _ => {
                let all = gather(ctx, 2 % n, tag, st.acc.to_bits())?;
                if r == 2 % n {
                    let all = all.expect("root gathers");
                    assert_eq!(all.len(), n);
                    // Fold gathered values order-insensitively.
                    let mut sorted = all;
                    sorted.sort_unstable();
                    st.acc += sorted.iter().map(|b| f64::from_bits(*b)).sum::<f64>() * 0.01;
                }
                st.acc = broadcast(ctx, 2 % n, tag + 1, (r == 2 % n).then_some(st.acc))?;
                st.checks += 1;
            }
        }
        st.stage += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, st: &TourState) -> u64 {
        st.acc.to_bits() ^ (st.checks << 48)
    }
}

fn cfg(n: usize) -> ClusterConfig {
    ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(3)),
    )
}

#[test]
fn tour_completes_on_direct_fabric() {
    for n in [1usize, 2, 4, 7] {
        let report = Cluster::run(&cfg(n), CollectiveTour).expect("tour run");
        assert_eq!(report.digests.len(), n, "n={n}");
    }
}

#[test]
fn tour_is_deterministic_under_reordering() {
    let direct = Cluster::run(&cfg(5), CollectiveTour).unwrap().digests;
    for seed in [1u64, 2, 3] {
        let delayed = Cluster::run(
            &cfg(5).with_net(NetConfig::lan_like(seed)),
            CollectiveTour,
        )
        .unwrap()
        .digests;
        assert_eq!(
            delayed, direct,
            "ANY_SOURCE arrival order must not leak into results (seed {seed})"
        );
    }
}

#[test]
fn tour_recovers_from_failures_at_each_stage_kind() {
    let clean = Cluster::run(&cfg(4), CollectiveTour).unwrap().digests;
    for at_step in [1u64, 2, 3, 4] {
        let report = Cluster::run(
            &cfg(4).with_failures(FailurePlan::kill_at(1, at_step)),
            CollectiveTour,
        )
        .expect("recovered tour");
        assert_eq!(report.digests, clean, "failure before step {at_step}");
    }
}

/// Multi-round allreduce used by the mid-collective kill tests.
#[derive(Clone)]
struct IterativeAllReduce {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct ArSt {
    round: u64,
    acc: f64,
}
impl_wire_struct!(ArSt { round, acc });

impl RankApp for IterativeAllReduce {
    type State = ArSt;
    fn init(&self, rank: usize, _n: usize) -> ArSt {
        ArSt {
            round: 0,
            acc: 1.0 + rank as f64 * 0.5,
        }
    }
    fn step(&self, ctx: &mut RankCtx<'_>, st: &mut ArSt) -> Result<StepStatus, Fault> {
        if st.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let total = allreduce_sum_f64(ctx, 200 + st.round as u32 * 2, st.acc)?;
        st.acc = st.acc * 0.5 + total * 0.125;
        st.round += 1;
        Ok(StepStatus::Continue)
    }
    fn digest(&self, st: &ArSt) -> u64 {
        st.acc.to_bits() ^ st.round
    }
}

// Regression for the collect-then-combine panic sweep: when a rank
// dies *inside* an allreduce, the survivors — the root blocked in the
// ANY_SOURCE gather, the others waiting on the broadcast — must see a
// `Fault` from the runtime and take the recovery path. The pre-fix
// code could instead abort the process on an `expect` once the
// contribution count and the slot occupancy disagreed.
#[test]
fn allreduce_recovers_when_contributor_dies_mid_collective() {
    let app = IterativeAllReduce { rounds: 8 };
    let clean = Cluster::run(&cfg(4), app.clone()).unwrap().digests;
    for at_step in [2u64, 5] {
        let report = Cluster::run(
            &cfg(4).with_failures(FailurePlan::kill_at(3, at_step)),
            app.clone(),
        )
        .expect("recovered allreduce run");
        assert_eq!(report.kills, 1);
        assert_eq!(report.digests, clean, "kill at step {at_step}");
    }
}

#[test]
fn allreduce_recovers_when_root_dies_mid_collective() {
    // Rank 0 is both the reduce root and the broadcast source: killing
    // it strands every survivor inside the collective until recovery
    // resupplies the lost messages.
    let app = IterativeAllReduce { rounds: 8 };
    let clean = Cluster::run(&cfg(4), app.clone()).unwrap().digests;
    let report = Cluster::run(
        &cfg(4).with_failures(FailurePlan::kill_at(0, 3)),
        app,
    )
    .expect("recovered allreduce run with dead root");
    assert_eq!(report.kills, 1);
    assert_eq!(report.digests, clean);
}

#[test]
fn allreduce_matches_sequential_sum() {
    #[derive(Clone)]
    struct OneShot;
    #[derive(Debug, Clone, PartialEq)]
    struct S {
        done: u64,
        out: f64,
    }
    impl_wire_struct!(S { done, out });
    impl RankApp for OneShot {
        type State = S;
        fn init(&self, rank: usize, _n: usize) -> S {
            S {
                done: 0,
                out: (rank + 1) as f64,
            }
        }
        fn step(&self, ctx: &mut RankCtx<'_>, st: &mut S) -> Result<StepStatus, Fault> {
            if st.done == 1 {
                return Ok(StepStatus::Done);
            }
            st.out = allreduce_sum_f64(ctx, 9, st.out)?;
            st.done = 1;
            Ok(StepStatus::Continue)
        }
        fn digest(&self, st: &S) -> u64 {
            st.out.to_bits()
        }
    }
    let n = 6;
    let report = Cluster::run(&cfg(n), OneShot).unwrap();
    let expected = (1..=n).map(|v| v as f64).sum::<f64>().to_bits();
    assert!(report.digests.iter().all(|&d| d == expected));
}
