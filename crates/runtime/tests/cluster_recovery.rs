//! End-to-end recovery tests: real applications on the full cluster
//! harness, with injected failures, across all three protocols.
//!
//! The central invariant everywhere: **the digests of a run with
//! failures equal the digests of the fault-free run** — rollback
//! recovery restored exactly the computation the paper's Algorithm 1
//! promises.

use lclog_core::ProtocolKind;
use lclog_runtime::collectives::allreduce_sum_f64;
use lclog_runtime::{
    CheckpointPolicy, Cluster, ClusterConfig, CommMode, FailurePlan, Fault, RankApp, RankCtx,
    RecvSpec, RunConfig, StepStatus,
};
use lclog_simnet::NetConfig;
use lclog_wire::impl_wire_struct;

fn mix(x: u64, salt: u64) -> u64 {
    (x ^ salt)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(23)
        .wrapping_add(0x1656_67B1_9E37_79F9)
}

// ---------------------------------------------------------------------------
// Ring app: deterministic source-specific receives, one message per
// rank per round (LU-like frequency at miniature scale).
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct RingApp {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct RingState {
    round: u64,
    token: u64,
}
impl_wire_struct!(RingState { round, token });

const RING_TAG: u32 = 10;

impl RankApp for RingApp {
    type State = RingState;

    fn init(&self, rank: usize, _n: usize) -> RingState {
        RingState {
            round: 0,
            token: mix(rank as u64, 0xABCD),
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut RingState) -> Result<StepStatus, Fault> {
        if state.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let r = ctx.rank();
        let right = (r + 1) % n;
        if r == 0 {
            let out = mix(state.token, state.round);
            ctx.send_value(right, RING_TAG, &out)?;
            let (_, t): (_, u64) = ctx.recv_value(RecvSpec::from(n - 1, RING_TAG))?;
            state.token = t;
        } else {
            let (_, t): (_, u64) = ctx.recv_value(RecvSpec::from(r - 1, RING_TAG))?;
            let out = mix(t, state.round ^ (r as u64) << 32);
            ctx.send_value(right, RING_TAG, &out)?;
            state.token = out;
        }
        state.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &RingState) -> u64 {
        mix(state.token, state.round)
    }
}

// ---------------------------------------------------------------------------
// All-reduce app: genuinely non-deterministic ANY_SOURCE gathers, the
// paper's §II.C scenario.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct AllReduceApp {
    iters: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct ArState {
    iter: u64,
    acc: f64,
}
impl_wire_struct!(ArState { iter, acc });

impl RankApp for AllReduceApp {
    type State = ArState;

    fn init(&self, rank: usize, _n: usize) -> ArState {
        ArState {
            iter: 0,
            acc: 1.0 + rank as f64 * 0.125,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut ArState) -> Result<StepStatus, Fault> {
        if state.iter >= self.iters {
            return Ok(StepStatus::Done);
        }
        let local = state.acc * (1.0 + ctx.rank() as f64) / (1.0 + state.iter as f64);
        let total = allreduce_sum_f64(ctx, (state.iter as u32) * 2 + 100, local)?;
        state.acc = state.acc * 0.5 + total * 0.25;
        state.iter += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &ArState) -> u64 {
        state.acc.to_bits() ^ state.iter
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn cfg(n: usize, kind: ProtocolKind) -> ClusterConfig {
    ClusterConfig::new(
        n,
        RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(3)),
    )
}

fn baseline_ring(n: usize, kind: ProtocolKind, rounds: u64) -> Vec<u64> {
    Cluster::run(&cfg(n, kind), RingApp { rounds })
        .expect("fault-free ring run")
        .digests
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[test]
fn ring_fault_free_digests_agree_across_protocols() {
    let rounds = 20;
    let tdi = baseline_ring(4, ProtocolKind::Tdi, rounds);
    let tag = baseline_ring(4, ProtocolKind::Tag, rounds);
    let tel = baseline_ring(4, ProtocolKind::Tel, rounds);
    assert_eq!(tdi, tag, "protocol must not affect application results");
    assert_eq!(tdi, tel);
}

#[test]
fn ring_single_failure_recovers_identically_tdi() {
    single_failure_ring(ProtocolKind::Tdi);
}

#[test]
fn ring_single_failure_recovers_identically_tag() {
    single_failure_ring(ProtocolKind::Tag);
}

#[test]
fn ring_single_failure_recovers_identically_tel() {
    single_failure_ring(ProtocolKind::Tel);
}

fn single_failure_ring(kind: ProtocolKind) {
    let rounds = 20;
    let clean = baseline_ring(4, kind, rounds);
    let config = cfg(4, kind).with_failures(FailurePlan::kill_at(1, 7));
    let report = Cluster::run(&config, RingApp { rounds }).expect("recovered run");
    assert_eq!(report.kills, 1);
    assert_eq!(report.digests, clean, "{kind}: recovery changed the result");
}

#[test]
fn ring_failure_before_first_checkpoint_restarts_from_scratch() {
    let rounds = 12;
    let base = ClusterConfig::new(
        4,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::Never),
    );
    let clean = Cluster::run(&base, RingApp { rounds }).unwrap().digests;
    let config = base.with_failures(FailurePlan::kill_at(2, 5));
    let report = Cluster::run(&config, RingApp { rounds }).expect("recovered run");
    assert_eq!(report.kills, 1);
    assert_eq!(report.digests, clean);
}

#[test]
fn ring_rank0_failure_recovers() {
    // The ring driver itself dies.
    let rounds = 16;
    let clean = baseline_ring(4, ProtocolKind::Tdi, rounds);
    let config = cfg(4, ProtocolKind::Tdi).with_failures(FailurePlan::kill_at(0, 9));
    let report = Cluster::run(&config, RingApp { rounds }).expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn allreduce_anysource_single_failure_tdi() {
    anysource_failure(ProtocolKind::Tdi);
}

#[test]
fn allreduce_anysource_single_failure_tag() {
    anysource_failure(ProtocolKind::Tag);
}

#[test]
fn allreduce_anysource_single_failure_tel() {
    anysource_failure(ProtocolKind::Tel);
}

fn anysource_failure(kind: ProtocolKind) {
    let iters = 10;
    let clean = Cluster::run(&cfg(4, kind), AllReduceApp { iters })
        .unwrap()
        .digests;
    let config = cfg(4, kind).with_failures(FailurePlan::kill_at(2, 4));
    let report = Cluster::run(&config, AllReduceApp { iters }).expect("recovered run");
    assert_eq!(report.kills, 1);
    assert_eq!(
        report.digests, clean,
        "{kind}: ANY_SOURCE recovery changed the result"
    );
}

#[test]
fn multi_simultaneous_failures_recover_tdi() {
    // Fig. 2's scenario: several processes fail at once; their logs
    // are lost and must be regenerated during mutual roll-forward.
    let rounds = 18;
    let clean = baseline_ring(5, ProtocolKind::Tdi, rounds);
    let config = cfg(5, ProtocolKind::Tdi)
        .with_failures(FailurePlan::kill_at(1, 7).and_kill(2, 7).and_kill(3, 7));
    let report = Cluster::run(&config, RingApp { rounds }).expect("recovered run");
    assert_eq!(report.kills, 3);
    assert_eq!(report.digests, clean);
}

#[test]
fn multi_simultaneous_failures_recover_tag() {
    let rounds = 14;
    let clean = baseline_ring(4, ProtocolKind::Tag, rounds);
    let config = cfg(4, ProtocolKind::Tag).with_failures(FailurePlan::kill_at(1, 6).and_kill(2, 6));
    let report = Cluster::run(&config, RingApp { rounds }).expect("recovered run");
    assert_eq!(report.kills, 2);
    assert_eq!(report.digests, clean);
}

#[test]
fn repeated_failures_of_same_rank_recover() {
    let rounds = 20;
    let clean = baseline_ring(4, ProtocolKind::Tdi, rounds);
    let config = cfg(4, ProtocolKind::Tdi).with_failures(
        FailurePlan::kill_at(1, 6).and_kill_incarnation(1, 13, 2),
    );
    let report = Cluster::run(&config, RingApp { rounds }).expect("recovered run");
    assert_eq!(report.kills, 2);
    assert_eq!(report.digests, clean);
}

#[test]
fn blocking_mode_failure_recovers() {
    // Fig. 4a architecture: peers stall while rank 1 is down, but the
    // run must still complete correctly.
    let rounds = 16;
    let run = RunConfig::new(ProtocolKind::Tdi)
        .with_comm(CommMode::blocking_default())
        .with_checkpoint(CheckpointPolicy::EverySteps(3));
    let base = ClusterConfig::new(4, run);
    let clean = Cluster::run(&base, RingApp { rounds }).unwrap().digests;
    let config = base.with_failures(FailurePlan::kill_at(1, 7));
    let report = Cluster::run(&config, RingApp { rounds }).expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn blocking_mode_rendezvous_sends_recover() {
    // Payloads above the eager threshold force acknowledgement waits.
    let rounds = 10;
    let run = RunConfig::new(ProtocolKind::Tdi)
        .with_comm(CommMode::Blocking { eager_threshold: 0 })
        .with_checkpoint(CheckpointPolicy::EverySteps(2));
    let base = ClusterConfig::new(3, run);
    let clean = Cluster::run(&base, RingApp { rounds }).unwrap().digests;
    let config = base.with_failures(FailurePlan::kill_at(2, 5));
    let report = Cluster::run(&config, RingApp { rounds }).expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn delayed_reordering_fabric_failure_recovers() {
    // The courier actively reorders cross-pair traffic; recovery
    // messages arrive out of order and sit in the receiving queue
    // until deliverable (§III.E).
    let rounds = 12;
    for kind in [ProtocolKind::Tdi, ProtocolKind::Tag] {
        let base = cfg(4, kind).with_net(NetConfig::lan_like(0x5EED));
        let clean = Cluster::run(&base, RingApp { rounds }).unwrap().digests;
        let config = base.with_failures(FailurePlan::kill_at(1, 5));
        let report = Cluster::run(&config, RingApp { rounds }).expect("recovered run");
        assert_eq!(report.digests, clean, "{kind} under reordering fabric");
    }
}

#[test]
fn piggyback_ordering_matches_fig6() {
    // The paper's headline ordering: TDI piggybacks far less than TEL,
    // which piggybacks less than TAG. Measured on a collective-heavy
    // workload (hub pattern, like the NPB codes' reductions): the
    // antecedence graph's increments to each peer carry long
    // transitive histories, while the event logger caps TEL's window
    // at the logger round-trip.
    let iters = 25;
    let n = 8;
    let ids = |kind| {
        Cluster::run(&cfg(n, kind), AllReduceApp { iters })
            .unwrap()
            .stats
            .avg_ids_per_msg()
    };
    let tdi = ids(ProtocolKind::Tdi);
    let tel = ids(ProtocolKind::Tel);
    let tag = ids(ProtocolKind::Tag);
    assert_eq!(tdi, n as f64, "TDI piggybacks exactly n identifiers");
    assert!(tel > tdi, "TEL ({tel}) should exceed TDI ({tdi})");
    assert!(tag > tel, "TAG ({tag}) should exceed TEL ({tel})");
}

#[test]
fn checkpoints_garbage_collect_sender_logs() {
    // With frequent checkpoints the cluster completes and the run's
    // internal logs stay bounded — indirectly visible via success and
    // by the stats counters being sane.
    let report = Cluster::run(
        &cfg(4, ProtocolKind::Tdi),
        RingApp { rounds: 40 },
    )
    .unwrap();
    assert_eq!(report.kills, 0);
    assert_eq!(report.stats.sends, report.stats.delivers);
    // 4 ranks × 40 rounds, one send per rank per round.
    assert_eq!(report.stats.sends, 160);
}

#[test]
fn single_rank_cluster_trivially_completes() {
    let report = Cluster::run(&cfg(1, ProtocolKind::Tdi), RingApp { rounds: 5 }).unwrap();
    assert_eq!(report.digests.len(), 1);
    assert_eq!(report.kills, 0);
}

#[test]
fn chaos_many_sequential_failures_recover() {
    // Five kills across three ranks, including back-to-back
    // incarnation deaths, on a longer run.
    let rounds = 40;
    let clean = baseline_ring(4, ProtocolKind::Tdi, rounds);
    let plan = FailurePlan::kill_at(1, 5)
        .and_kill_incarnation(1, 11, 2)
        .and_kill_incarnation(1, 18, 3)
        .and_kill(2, 14)
        .and_kill(3, 25);
    let config = cfg(4, ProtocolKind::Tdi).with_failures(plan);
    let report = Cluster::run(&config, RingApp { rounds }).expect("chaos run");
    assert_eq!(report.kills, 5);
    assert_eq!(report.digests, clean);
}

#[test]
fn kill_during_recovery_rollforward() {
    // The second kill lands while incarnation 2 is still rolling
    // forward (its restored step is well before the kill step of the
    // first incarnation).
    let rounds = 24;
    let clean = baseline_ring(4, ProtocolKind::Tdi, rounds);
    let plan = FailurePlan::kill_at(2, 12)
        // Incarnation 2 restores around step 9 (ckpt every 3) and
        // must replay steps 9..12; kill it again at step 10 — mid
        // roll-forward.
        .and_kill_incarnation(2, 10, 2);
    let config = cfg(4, ProtocolKind::Tdi).with_failures(plan);
    let report = Cluster::run(&config, RingApp { rounds }).expect("mid-recovery kill run");
    assert_eq!(report.kills, 2);
    assert_eq!(report.digests, clean);
}
