//! The structured timeline must tell a complete, ordered recovery
//! story.

use lclog_core::ProtocolKind;
use lclog_runtime::{
    CheckpointPolicy, Cluster, ClusterConfig, EventKind, FailurePlan, Fault, RankApp, RankCtx,
    RecvSpec, RunConfig, StepStatus,
};
use lclog_wire::impl_wire_struct;

#[derive(Clone)]
struct Ring {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct St {
    round: u64,
    value: u64,
}
impl_wire_struct!(St { round, value });

impl RankApp for Ring {
    type State = St;
    fn init(&self, rank: usize, _n: usize) -> St {
        St {
            round: 0,
            value: rank as u64,
        }
    }
    fn step(&self, ctx: &mut RankCtx<'_>, st: &mut St) -> Result<StepStatus, Fault> {
        if st.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        ctx.send_value((ctx.rank() + 1) % n, 1, &st.value)?;
        let (_, v): (_, u64) = ctx.recv_value(RecvSpec::from((ctx.rank() + n - 1) % n, 1))?;
        st.value = st.value.wrapping_add(v ^ st.round);
        st.round += 1;
        Ok(StepStatus::Continue)
    }
    fn digest(&self, st: &St) -> u64 {
        st.value
    }
}

#[test]
fn untraced_runs_have_empty_timelines() {
    let cfg = ClusterConfig::new(3, RunConfig::new(ProtocolKind::Tdi));
    let report = Cluster::run(&cfg, Ring { rounds: 6 }).unwrap();
    assert!(report.timeline.is_empty());
}

#[test]
fn traced_failure_run_tells_the_whole_story() {
    let n = 4;
    let victim = 1usize;
    let cfg = ClusterConfig::new(
        n,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
    )
    .with_failures(FailurePlan::kill_at(victim, 9))
    .with_trace(true);
    let report = Cluster::run(&cfg, Ring { rounds: 16 }).unwrap();
    let tl = &report.timeline;

    // n + 1 spawns (one respawn), 1 crash, 1 rollback broadcast run,
    // n − 1 responses, 1 sync, n dones.
    let count = |pred: &dyn Fn(&EventKind) -> bool| tl.iter().filter(|e| pred(&e.kind)).count();
    assert_eq!(count(&|k| matches!(k, EventKind::Spawned { .. })), n + 1);
    assert_eq!(count(&|k| matches!(k, EventKind::Crashed { .. })), 1);
    assert!(count(&|k| matches!(k, EventKind::RollbackBroadcast { .. })) >= 1);
    assert_eq!(count(&|k| matches!(k, EventKind::ResponseReceived { .. })), n - 1);
    assert_eq!(count(&|k| matches!(k, EventKind::RecoverySynced { .. })), 1);
    assert_eq!(count(&|k| matches!(k, EventKind::Done { .. })), n);
    assert!(count(&|k| matches!(k, EventKind::Checkpoint { .. })) >= n);

    // Ordering: crash < incarnation spawn < rollback < sync, all on
    // the victim; timeline is globally time-sorted.
    assert!(tl.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    let pos = |pred: &dyn Fn(&EventKind) -> bool, rank: usize| {
        tl.iter()
            .position(|e| e.rank == rank && pred(&e.kind))
            .expect("event present")
    };
    let crash = pos(&|k| matches!(k, EventKind::Crashed { .. }), victim);
    let respawn = tl
        .iter()
        .position(|e| {
            e.rank == victim && matches!(e.kind, EventKind::Spawned { incarnation: 2 })
        })
        .expect("incarnation 2 spawned");
    let rollback = pos(&|k| matches!(k, EventKind::RollbackBroadcast { .. }), victim);
    let synced = pos(&|k| matches!(k, EventKind::RecoverySynced { .. }), victim);
    assert!(crash < respawn && respawn < rollback && rollback < synced);

    // Crash happened at the planned step.
    let crashed_step = tl
        .iter()
        .find_map(|e| match e.kind {
            EventKind::Crashed { step } if e.rank == victim => Some(step),
            _ => None,
        })
        .unwrap();
    assert_eq!(crashed_step, 9);
}

#[test]
fn multi_failure_timeline_has_one_sync_per_incarnation() {
    let cfg = ClusterConfig::new(
        4,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
    )
    .with_failures(FailurePlan::kill_at(0, 8).and_kill(2, 8))
    .with_trace(true);
    let report = Cluster::run(&cfg, Ring { rounds: 14 }).unwrap();
    let syncs = report
        .timeline
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RecoverySynced { .. }))
        .count();
    // Under TDI an incarnation may legitimately finish the whole
    // application before the *other* dead rank's RESPONSE arrives —
    // relaxed-order roll-forward needs no sync barrier. So between 1
    // and 2 syncs complete, never more.
    assert!((1..=2).contains(&syncs), "saw {syncs} recovery syncs");
    let crashes = report
        .timeline
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Crashed { .. }))
        .count();
    assert_eq!(crashes, 2);
}
