//! Cluster runs on the real-file stable-storage backend: checkpoints
//! and event logs land on disk and recovery reads them back.

use lclog_core::ProtocolKind;
use lclog_runtime::{
    CheckpointPolicy, Cluster, ClusterConfig, FailurePlan, Fault, RankApp, RankCtx, RecvSpec,
    RunConfig, StepStatus, StorageKind,
};
use lclog_wire::impl_wire_struct;

#[derive(Clone)]
struct Ring {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct St {
    round: u64,
    value: u64,
}
impl_wire_struct!(St { round, value });

impl RankApp for Ring {
    type State = St;
    fn init(&self, rank: usize, _n: usize) -> St {
        St {
            round: 0,
            value: rank as u64 + 7,
        }
    }
    fn step(&self, ctx: &mut RankCtx<'_>, st: &mut St) -> Result<StepStatus, Fault> {
        if st.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let n = ctx.n();
        let right = (ctx.rank() + 1) % n;
        let left = (ctx.rank() + n - 1) % n;
        ctx.send_value(right, 3, &st.value)?;
        let (_, v): (_, u64) = ctx.recv_value(RecvSpec::from(left, 3))?;
        st.value = st.value.rotate_left(7) ^ v;
        st.round += 1;
        Ok(StepStatus::Continue)
    }
    fn digest(&self, st: &St) -> u64 {
        st.value ^ st.round
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lclog-disk-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disk_backed_recovery_matches_memory_backed() {
    let app = Ring { rounds: 14 };
    let base = ClusterConfig::new(
        4,
        RunConfig::new(ProtocolKind::Tdi).with_checkpoint(CheckpointPolicy::EverySteps(4)),
    );
    let mem = Cluster::run(&base, app.clone()).unwrap().digests;
    let dir = temp_dir("tdi");
    let disk_cfg = base
        .with_storage(StorageKind::Disk(dir.clone()))
        .with_failures(FailurePlan::kill_at(2, 7));
    let report = Cluster::run(&disk_cfg, app).expect("disk-backed recovered run");
    assert_eq!(report.kills, 1);
    assert_eq!(report.digests, mem);
    // Checkpoint files actually exist on disk.
    let blobs = std::fs::read_dir(dir.join("blobs")).unwrap().count();
    assert!(blobs >= 4, "expected one checkpoint blob per rank, saw {blobs}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn disk_backed_event_logger_for_tel() {
    let app = Ring { rounds: 10 };
    let dir = temp_dir("tel");
    let cfg = ClusterConfig::new(
        3,
        RunConfig::new(ProtocolKind::Tel).with_checkpoint(CheckpointPolicy::EverySteps(3)),
    )
    .with_storage(StorageKind::Disk(dir.clone()))
    .with_failures(FailurePlan::kill_at(1, 5));
    let clean = Cluster::run(
        &ClusterConfig::new(
            3,
            RunConfig::new(ProtocolKind::Tel).with_checkpoint(CheckpointPolicy::EverySteps(3)),
        ),
        app.clone(),
    )
    .unwrap()
    .digests;
    let report = Cluster::run(&cfg, app).expect("disk TEL run");
    assert_eq!(report.digests, clean);
    // Determinant logs landed on disk.
    let logs = std::fs::read_dir(dir.join("logs")).unwrap().count();
    assert!(logs >= 1, "expected event-log files, saw {logs}");
    let _ = std::fs::remove_dir_all(dir);
}
