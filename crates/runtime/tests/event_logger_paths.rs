//! The event-logger service paths exercised deliberately: determinant
//! shipping, acks, queries during recovery, and pessimistic send
//! gating — at cluster level with TEL and PES.

use lclog_core::ProtocolKind;
use lclog_runtime::{
    CheckpointPolicy, Cluster, ClusterConfig, CommMode, FailurePlan, Fault, RankApp, RankCtx,
    RecvSpec, RunConfig, StepStatus,
};
use lclog_wire::impl_wire_struct;

/// Ping-pong between two ranks: maximal determinant churn per message.
#[derive(Clone)]
struct PingPong {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct PpState {
    round: u64,
    value: u64,
}
impl_wire_struct!(PpState { round, value });

impl RankApp for PingPong {
    type State = PpState;

    fn init(&self, rank: usize, _n: usize) -> PpState {
        PpState {
            round: 0,
            value: 17 + rank as u64,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, st: &mut PpState) -> Result<StepStatus, Fault> {
        if st.round >= self.rounds {
            return Ok(StepStatus::Done);
        }
        let peer = 1 - ctx.rank();
        if ctx.rank() == 0 {
            ctx.send_value(peer, 0, &st.value)?;
            let (_, v): (_, u64) = ctx.recv_value(RecvSpec::from(peer, 0))?;
            st.value = st.value.wrapping_mul(3).wrapping_add(v);
        } else {
            let (_, v): (_, u64) = ctx.recv_value(RecvSpec::from(peer, 0))?;
            st.value = st.value.wrapping_mul(5).wrapping_add(v);
            ctx.send_value(peer, 0, &st.value)?;
        }
        st.round += 1;
        Ok(StepStatus::Continue)
    }

    fn digest(&self, st: &PpState) -> u64 {
        st.value ^ st.round
    }
}

fn cfg(kind: ProtocolKind) -> ClusterConfig {
    ClusterConfig::new(
        2,
        RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(6)),
    )
}

#[test]
fn tel_stabilization_bounds_piggyback_on_pingpong() {
    // With the logger acking continuously, TEL's unstable window on a
    // 2-rank ping-pong stays far below full history.
    let rounds = 50;
    let report = Cluster::run(&cfg(ProtocolKind::Tel), PingPong { rounds }).unwrap();
    let tag = Cluster::run(&cfg(ProtocolKind::Tag), PingPong { rounds }).unwrap();
    assert!(
        report.stats.avg_ids_per_msg() < tag.stats.avg_ids_per_msg() / 2.0,
        "TEL ({:.1}) should stay far below TAG ({:.1}) on a long run",
        report.stats.avg_ids_per_msg(),
        tag.stats.avg_ids_per_msg()
    );
}

#[test]
fn tel_recovery_pulls_stable_determinants_from_logger() {
    // Kill *both* app ranks simultaneously: no survivor holds any
    // determinant, so the replay script can only come from the logger.
    let rounds = 20;
    let clean = Cluster::run(&cfg(ProtocolKind::Tel), PingPong { rounds })
        .unwrap()
        .digests;
    let config = cfg(ProtocolKind::Tel)
        .with_failures(FailurePlan::kill_at(0, 10).and_kill(1, 10));
    let report = Cluster::run(&config, PingPong { rounds }).expect("recovered run");
    assert_eq!(report.kills, 2);
    assert_eq!(report.digests, clean);
}

#[test]
fn pessim_recovery_with_no_surviving_app_rank() {
    let rounds = 16;
    let clean = Cluster::run(&cfg(ProtocolKind::Pessim), PingPong { rounds })
        .unwrap()
        .digests;
    let config = cfg(ProtocolKind::Pessim)
        .with_failures(FailurePlan::kill_at(0, 8).and_kill(1, 8));
    let report = Cluster::run(&config, PingPong { rounds }).expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn pessim_blocking_engine_gates_sends() {
    // In blocking mode the send gate is serviced by inline pumping;
    // the run must complete and recover.
    let rounds = 12;
    let run = RunConfig::new(ProtocolKind::Pessim)
        .with_comm(CommMode::blocking_default())
        .with_checkpoint(CheckpointPolicy::EverySteps(4));
    let base = ClusterConfig::new(2, run);
    let clean = Cluster::run(&base, PingPong { rounds }).unwrap().digests;
    let report = Cluster::run(
        &base.with_failures(FailurePlan::kill_at(1, 6)),
        PingPong { rounds },
    )
    .expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn pessim_piggybacks_zero_always() {
    let report = Cluster::run(&cfg(ProtocolKind::Pessim), PingPong { rounds: 30 }).unwrap();
    assert_eq!(report.stats.piggyback_ids, 0);
    assert_eq!(report.stats.piggyback_bytes, 0);
    assert!(report.stats.sends > 0);
}
