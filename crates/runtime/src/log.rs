//! The sender-based message log (Algorithm 1 line 12).
//!
//! Every sent application message is retained — payload, tag, and the
//! protocol piggyback it originally carried — keyed by destination and
//! per-destination send index. Entries are:
//!
//! * **resent** when the destination's incarnation broadcasts
//!   `ROLLBACK` (lines 49–51), re-attaching the *logged* piggyback so
//!   the recovering process learns each message's dependency exactly
//!   as in normal operation;
//! * **released** when a `CHECKPOINT_ADVANCE` proves the destination's
//!   checkpoint covers them (line 39);
//! * **checkpointed** with the rest of the sender's state, because the
//!   sender itself may fail and its incarnation must still serve
//!   peers' recoveries from the restored log.

use bytes::Bytes;
use lclog_core::Rank;
use lclog_wire::impl_wire_struct;

/// One logged send.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Destination rank.
    pub dst: u32,
    /// Per-destination send order number, starting at 1.
    pub send_index: u64,
    /// Application tag.
    pub tag: u32,
    /// The piggyback the message originally carried.
    pub piggyback: Vec<u8>,
    /// Application payload.
    pub data: Bytes,
}

impl_wire_struct!(LogEntry {
    dst,
    send_index,
    tag,
    piggyback,
    data
});

/// Per-sender volatile message log.
#[derive(Debug, Clone, Default)]
pub struct SenderLog {
    /// `by_dst[d]` maps send_index → entry, ordered so resends walk in
    /// index order.
    by_dst: Vec<std::collections::BTreeMap<u64, LogEntry>>,
    /// Running payload + piggyback byte total, so the send hot path's
    /// peak-pressure bookkeeping doesn't walk the whole log.
    bytes: usize,
}

impl SenderLog {
    /// Empty log for an `n`-process system.
    pub fn new(n: usize) -> Self {
        SenderLog {
            by_dst: vec![Default::default(); n],
            bytes: 0,
        }
    }

    fn entry_bytes(entry: &LogEntry) -> usize {
        entry.data.len() + entry.piggyback.len()
    }

    /// Record a send.
    pub fn insert(&mut self, entry: LogEntry) {
        self.bytes += Self::entry_bytes(&entry);
        if let Some(old) = self.by_dst[entry.dst as Rank].insert(entry.send_index, entry) {
            self.bytes -= Self::entry_bytes(&old);
        }
    }

    /// Release entries for `dst` with `send_index <= upto`
    /// (`CHECKPOINT_ADVANCE` GC).
    pub fn release(&mut self, dst: Rank, upto: u64) {
        let kept = self.by_dst[dst].split_off(&(upto + 1));
        let removed = std::mem::replace(&mut self.by_dst[dst], kept);
        for e in removed.values() {
            self.bytes -= Self::entry_bytes(e);
        }
    }

    /// Entries destined to `dst` with `send_index > after`, in index
    /// order (the rollback resend set).
    pub fn entries_after(&self, dst: Rank, after: u64) -> impl Iterator<Item = &LogEntry> {
        self.by_dst[dst].range(after + 1..).map(|(_, e)| e)
    }

    /// Total retained entries.
    pub fn len(&self) -> usize {
        self.by_dst.iter().map(|m| m.len()).sum()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total retained payload + piggyback bytes (log memory pressure,
    /// reported by benchmarks). O(1): maintained incrementally by
    /// `insert`/`release` — this sits on the send hot path.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Flatten for checkpointing.
    pub fn to_entries(&self) -> Vec<LogEntry> {
        self.by_dst
            .iter()
            .flat_map(|m| m.values().cloned())
            .collect()
    }

    /// Rebuild from checkpointed entries.
    pub fn from_entries(n: usize, entries: Vec<LogEntry>) -> Self {
        let mut log = SenderLog::new(n);
        for e in entries {
            log.insert(e);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dst: u32, idx: u64) -> LogEntry {
        LogEntry {
            dst,
            send_index: idx,
            tag: 0,
            piggyback: vec![1, 2],
            data: Bytes::from(vec![0u8; 8]),
        }
    }

    #[test]
    fn insert_then_resend_in_order() {
        let mut log = SenderLog::new(3);
        log.insert(entry(1, 2));
        log.insert(entry(1, 1));
        log.insert(entry(2, 1));
        let resend: Vec<u64> = log.entries_after(1, 0).map(|e| e.send_index).collect();
        assert_eq!(resend, vec![1, 2]);
        let resend: Vec<u64> = log.entries_after(1, 1).map(|e| e.send_index).collect();
        assert_eq!(resend, vec![2]);
    }

    #[test]
    fn release_garbage_collects() {
        let mut log = SenderLog::new(2);
        for i in 1..=5 {
            log.insert(entry(1, i));
        }
        assert_eq!(log.len(), 5);
        log.release(1, 3);
        assert_eq!(log.len(), 2);
        let left: Vec<u64> = log.entries_after(1, 0).map(|e| e.send_index).collect();
        assert_eq!(left, vec![4, 5]);
        // Releasing again with a smaller bound is a no-op.
        log.release(1, 2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn bytes_accounts_payload_and_piggyback() {
        let mut log = SenderLog::new(2);
        log.insert(entry(0, 1));
        assert_eq!(log.bytes(), 10);
        assert!(!log.is_empty());
        // Replacing the same identity must not double-count…
        log.insert(entry(0, 1));
        assert_eq!(log.bytes(), 10);
        // …and the running counter tracks release exactly.
        log.insert(entry(0, 2));
        log.insert(entry(1, 1));
        assert_eq!(log.bytes(), 30);
        log.release(0, 1);
        assert_eq!(log.bytes(), 20);
        log.release(0, 5);
        log.release(1, 5);
        assert_eq!(log.bytes(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut log = SenderLog::new(3);
        log.insert(entry(1, 1));
        log.insert(entry(2, 4));
        let entries = log.to_entries();
        let rebuilt = SenderLog::from_entries(3, entries);
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(
            rebuilt.entries_after(2, 0).map(|e| e.send_index).collect::<Vec<_>>(),
            vec![4]
        );
    }
}
