//! The sender-based message log (Algorithm 1 line 12).
//!
//! Every sent application message is retained — payload, tag, and the
//! protocol piggyback it originally carried — keyed by destination and
//! per-destination send index. Entries are:
//!
//! * **resent** when the destination's incarnation broadcasts
//!   `ROLLBACK` (lines 49–51), re-attaching the *logged* piggyback so
//!   the recovering process learns each message's dependency exactly
//!   as in normal operation;
//! * **released** when a `CHECKPOINT_ADVANCE` proves the destination's
//!   checkpoint covers them (line 39);
//! * **checkpointed** with the rest of the sender's state, because the
//!   sender itself may fail and its incarnation must still serve
//!   peers' recoveries from the restored log.
//!
//! ## Zero-copy ownership
//!
//! A [`LogEntry`] owns one refcounted handle on the message's
//! **already-encoded wire form** (the `WireMsg::App` bytes that went
//! into the frame), plus refcounted handles for the piggyback and
//! payload. On the steady-state send path the wire handle is a window
//! into the very frame the transport built — the log, the transport's
//! unacked map, and the in-flight envelope share one allocation —
//! while `piggyback`/`data` move in from the send call itself (no
//! decode pass). On checkpoint restore they are instead zero-copy
//! windows decoded out of `wire`. Resends hand [`LogEntry::to_wire`]
//! straight back to the transport with **zero payload copies**; the
//! resent message carries its original `needs_ack` flag, which is
//! safe because rendezvous acknowledgements are idempotent (the
//! receiver's ack counter is a monotonic max).

use crate::message::{AppWire, WireMsg};
use bytes::Bytes;
use lclog_core::Rank;
use lclog_wire::{decode_from_bytes, encode_to_bytes, Decode, Encode, Reader, WireError};

/// One logged send: decoded header fields plus the shared encoded
/// wire buffer they are windows into.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Destination rank.
    pub dst: u32,
    /// Per-destination send order number, starting at 1.
    pub send_index: u64,
    /// Application tag.
    pub tag: u32,
    /// Whether the original send requested a rendezvous ack.
    pub needs_ack: bool,
    /// The piggyback the message originally carried (window into the
    /// wire buffer, or a handle on the protocol's vector).
    pub piggyback: Bytes,
    /// Application payload (same sharing).
    pub data: Bytes,
    /// The encoded `WireMsg::App`, exactly as framed; private so every
    /// entry is guaranteed consistent with its decoded fields.
    wire: Bytes,
}

impl LogEntry {
    /// Build an entry by encoding the message once (the only
    /// allocation; used for suppressed sends that are logged without
    /// being transmitted). `piggyback` and `data` handles are
    /// refcount-shared with the caller.
    pub fn new(
        dst: u32,
        send_index: u64,
        tag: u32,
        piggyback: Bytes,
        needs_ack: bool,
        data: Bytes,
    ) -> Self {
        let wire = encode_to_bytes(&WireMsg::App(AppWire {
            tag,
            send_index,
            piggyback: piggyback.clone(),
            needs_ack,
            data: data.clone(),
        }));
        LogEntry {
            dst,
            send_index,
            tag,
            needs_ack,
            piggyback,
            data,
            wire,
        }
    }

    /// Build an entry on the send hot path from the [`AppWire`] that
    /// was just encoded and the encoded-message window the transport
    /// returned — no decode pass, no refcount churn: the header
    /// fields and the `piggyback`/`data` handles move straight in.
    /// The caller guarantees `wire` is the encoding of `w` (debug
    /// builds verify).
    pub(crate) fn from_parts(dst: u32, w: AppWire, wire: Bytes) -> Self {
        debug_assert_eq!(
            decode_from_bytes::<WireMsg>(&wire).ok().as_ref(),
            Some(&WireMsg::App(w.clone())),
            "from_parts wire bytes must encode exactly the given AppWire"
        );
        LogEntry {
            dst,
            send_index: w.send_index,
            tag: w.tag,
            needs_ack: w.needs_ack,
            piggyback: w.piggyback,
            data: w.data,
            wire,
        }
    }

    /// Build an entry from already-encoded `WireMsg::App` bytes (the
    /// inner window the transport returned when it framed the send).
    /// Decoding is zero-copy: `piggyback` and `data` become windows
    /// into `wire`. Errors if `wire` is not a well-formed `App`
    /// message.
    pub fn from_wire(dst: u32, wire: Bytes) -> Result<Self, WireError> {
        match decode_from_bytes::<WireMsg>(&wire)? {
            WireMsg::App(w) => Ok(LogEntry {
                dst,
                send_index: w.send_index,
                tag: w.tag,
                needs_ack: w.needs_ack,
                piggyback: w.piggyback,
                data: w.data,
                wire,
            }),
            other => Err(WireError::InvalidTag {
                type_name: "LogEntry (expected WireMsg::App)",
                tag: match other {
                    WireMsg::Ack(_) => 1,
                    WireMsg::Rollback(_) => 2,
                    WireMsg::Response(_) => 3,
                    WireMsg::CkptAdvance(_) => 4,
                    WireMsg::LogDets(_) => 5,
                    WireMsg::LogAck(_) => 6,
                    WireMsg::LogQuery(_) => 7,
                    WireMsg::LogQueryResp(_) => 8,
                    WireMsg::Suspect(_) => 9,
                    WireMsg::Membership(_) => 10,
                    WireMsg::ResyncReq(_) => 11,
                    WireMsg::ResyncSnap(_) => 12,
                    WireMsg::App(_) => unreachable!("matched above"),
                },
            }),
        }
    }

    /// The encoded `WireMsg::App` for resending — a refcount bump, no
    /// re-encoding. This is the single construction point for every
    /// resend path (rollback replay, response-driven regeneration,
    /// rendezvous retry).
    pub fn to_wire(&self) -> Bytes {
        self.wire.clone()
    }
}

/// Checkpoints persist only `(dst, wire)`; the decoded fields are
/// rebuilt zero-copy on restore, so the image stores each message
/// once.
impl Encode for LogEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.dst.encode(buf);
        self.wire.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.dst.encoded_len() + self.wire.encoded_len()
    }
}

impl Decode for LogEntry {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let dst = u32::decode(reader)?;
        let wire = Bytes::decode(reader)?;
        LogEntry::from_wire(dst, wire)
    }
}

/// Per-sender volatile message log.
#[derive(Debug, Clone, Default)]
pub struct SenderLog {
    /// `by_dst[d]` maps send_index → entry, ordered so resends walk in
    /// index order.
    by_dst: Vec<std::collections::BTreeMap<u64, LogEntry>>,
    /// Running payload + piggyback byte total, so the send hot path's
    /// peak-pressure bookkeeping doesn't walk the whole log.
    bytes: usize,
}

impl SenderLog {
    /// Empty log for an `n`-process system.
    pub fn new(n: usize) -> Self {
        SenderLog {
            by_dst: vec![Default::default(); n],
            bytes: 0,
        }
    }

    fn entry_bytes(entry: &LogEntry) -> usize {
        entry.data.len() + entry.piggyback.len()
    }

    /// Record a send.
    pub fn insert(&mut self, entry: LogEntry) {
        self.bytes += Self::entry_bytes(&entry);
        if let Some(old) = self.by_dst[entry.dst as Rank].insert(entry.send_index, entry) {
            self.bytes -= Self::entry_bytes(&old);
        }
    }

    /// Release entries for `dst` with `send_index <= upto`
    /// (`CHECKPOINT_ADVANCE` GC).
    pub fn release(&mut self, dst: Rank, upto: u64) {
        let kept = self.by_dst[dst].split_off(&(upto + 1));
        let removed = std::mem::replace(&mut self.by_dst[dst], kept);
        for e in removed.values() {
            self.bytes -= Self::entry_bytes(e);
        }
    }

    /// Entries destined to `dst` with `send_index > after`, in index
    /// order (the rollback resend set).
    pub fn entries_after(&self, dst: Rank, after: u64) -> impl Iterator<Item = &LogEntry> {
        self.by_dst[dst].range(after + 1..).map(|(_, e)| e)
    }

    /// Total retained entries.
    pub fn len(&self) -> usize {
        self.by_dst.iter().map(|m| m.len()).sum()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total retained payload + piggyback bytes (log memory pressure,
    /// reported by benchmarks). O(1): maintained incrementally by
    /// `insert`/`release` — this sits on the send hot path.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Flatten for checkpointing (refcount bumps, not buffer copies).
    pub fn to_entries(&self) -> Vec<LogEntry> {
        self.by_dst
            .iter()
            .flat_map(|m| m.values().cloned())
            .collect()
    }

    /// Rebuild from checkpointed entries.
    pub fn from_entries(n: usize, entries: Vec<LogEntry>) -> Self {
        let mut log = SenderLog::new(n);
        for e in entries {
            log.insert(e);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_wire::{decode_from_slice, encode_to_vec};

    fn entry(dst: u32, idx: u64) -> LogEntry {
        LogEntry::new(
            dst,
            idx,
            0,
            Bytes::from(vec![1, 2]),
            false,
            Bytes::from(vec![0u8; 8]),
        )
    }

    #[test]
    fn insert_then_resend_in_order() {
        let mut log = SenderLog::new(3);
        log.insert(entry(1, 2));
        log.insert(entry(1, 1));
        log.insert(entry(2, 1));
        let resend: Vec<u64> = log.entries_after(1, 0).map(|e| e.send_index).collect();
        assert_eq!(resend, vec![1, 2]);
        let resend: Vec<u64> = log.entries_after(1, 1).map(|e| e.send_index).collect();
        assert_eq!(resend, vec![2]);
    }

    #[test]
    fn release_garbage_collects() {
        let mut log = SenderLog::new(2);
        for i in 1..=5 {
            log.insert(entry(1, i));
        }
        assert_eq!(log.len(), 5);
        log.release(1, 3);
        assert_eq!(log.len(), 2);
        let left: Vec<u64> = log.entries_after(1, 0).map(|e| e.send_index).collect();
        assert_eq!(left, vec![4, 5]);
        // Releasing again with a smaller bound is a no-op.
        log.release(1, 2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn bytes_accounts_payload_and_piggyback() {
        let mut log = SenderLog::new(2);
        log.insert(entry(0, 1));
        assert_eq!(log.bytes(), 10);
        assert!(!log.is_empty());
        // Replacing the same identity must not double-count…
        log.insert(entry(0, 1));
        assert_eq!(log.bytes(), 10);
        // …and the running counter tracks release exactly.
        log.insert(entry(0, 2));
        log.insert(entry(1, 1));
        assert_eq!(log.bytes(), 30);
        log.release(0, 1);
        assert_eq!(log.bytes(), 20);
        log.release(0, 5);
        log.release(1, 5);
        assert_eq!(log.bytes(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut log = SenderLog::new(3);
        log.insert(entry(1, 1));
        log.insert(entry(2, 4));
        let entries = log.to_entries();
        let rebuilt = SenderLog::from_entries(3, entries);
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(
            rebuilt.entries_after(2, 0).map(|e| e.send_index).collect::<Vec<_>>(),
            vec![4]
        );
    }

    #[test]
    fn entry_wire_roundtrip_and_consistency() {
        let e = LogEntry::new(
            3,
            7,
            9,
            Bytes::from(vec![4, 5, 6]),
            true,
            Bytes::from(b"payload".to_vec()),
        );
        // Encode/decode (the checkpoint path) rebuilds identical
        // decoded fields from the stored wire form.
        let bytes = encode_to_vec(&e);
        assert_eq!(bytes.len(), e.encoded_len());
        let back: LogEntry = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, e);
        assert!(back.needs_ack);
        assert_eq!(back.tag, 9);
        // from_wire of to_wire is the identity on decoded fields and
        // shares the wire allocation (refcount, not copy).
        let w = e.to_wire();
        let again = LogEntry::from_wire(3, w.clone()).unwrap();
        assert_eq!(again, e);
        assert!(again.to_wire().shares_allocation(&w));
        assert!(again.data.shares_allocation(&w), "payload is a window into wire");
    }

    #[test]
    fn from_wire_rejects_non_app_messages() {
        let wire = lclog_wire::encode_to_bytes(&WireMsg::Ack(9));
        assert!(LogEntry::from_wire(0, wire).is_err());
    }
}
