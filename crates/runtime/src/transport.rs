//! The reliability layer between the kernel and the fabric.
//!
//! The simulated fabric is allowed to turn adversarial (see
//! `lclog_simnet::ChaosConfig`): it may drop, duplicate, bit-flip, or
//! stall envelopes. This module restores the abstraction the
//! rollback-recovery layer was written against — reliable, FIFO,
//! exactly-once channels between live incarnations — the same way a
//! real MPI stack rides on TCP or a reliable RDMA verb layer:
//!
//! * every outbound wire message is framed with a **CRC-32 trailer**
//!   and a per-destination **transport sequence number**;
//! * receivers discard duplicates below the application layer, detect
//!   corruption, and answer with cumulative ACKs (or a NACK on a CRC
//!   mismatch, short-circuiting the retransmission timeout);
//! * senders buffer unacknowledged frames and retransmit on a capped
//!   exponential backoff; a retransmit budget turns a permanently
//!   silent peer into [`crate::Fault::Unreachable`] instead of an
//!   infinite hang.
//!
//! ## Per-peer shards
//!
//! The endpoint is sharded per peer: each channel's sender and
//! receiver state lives behind its own small mutex
//! ([`PeerShard`]), and everything cross-channel (epoch, fence
//! floors, liveness bits, byte accounting) is atomic. No two channels
//! share a lock, so concurrent sends to different destinations — and a
//! send racing an ingest on a *different* channel — proceed without
//! contention, and every method takes `&self`. The kernel embeds the
//! transport directly (no `Mutex<Reliability>` leaf lock any more).
//!
//! ## Batched acknowledgements
//!
//! Receiving a data frame no longer transmits an ack inline. It marks
//! the channel ack-pending and enqueues the peer on a lock-free
//! [`SeqRing`]; [`Transport::flush_acks`] — called once per ingest
//! batch by the kernel, and by the tick — drains that ring and sends
//! one **cumulative** ack per dirty peer. A batch of k frames from one
//! peer costs one ack frame instead of k. NACKs (corruption reports)
//! still go out immediately: they short-circuit a retransmission
//! timeout, so latency matters.
//!
//! Incarnations are disambiguated by an **epoch** (the rank's
//! incarnation number) carried in every data frame: a receiver that
//! sees a higher epoch resets its channel state, and stale frames or
//! acknowledgements from an earlier incarnation are ignored. The
//! `hint` field (the sender's lowest outstanding sequence number)
//! lets a freshly respawned receiver skip the prefix of the sequence
//! space that was acknowledged to — and therefore delivered by — the
//! previous incarnation; the rollback protocol above regenerates
//! whatever of that prefix still matters.
//!
//! ## Zero-copy data plane
//!
//! A data frame is built **once**, in a single pass, into one
//! allocation:
//!
//! ```text
//! [ crc32 (4, LE) | tag=Data (1) | epoch (8) | seq (8) | hint (8)
//!   | varint inner_len | encoded WireMsg ... ]
//! ```
//!
//! [`Transport::send_msg`] encodes header and payload into a
//! `BytesMut`, freezes it, stores the whole frame in the unacked map,
//! hands it to the fabric, and returns the *inner* region as a
//! zero-copy window for the sender log. Retransmission resends the
//! stored frame verbatim — no re-encode, no re-CRC. (The stored `hint`
//! may be stale, which is safe: a hint only tells the receiver that
//! everything below it was acknowledged, and acknowledgements never
//! regress.)
//!
//! [`Transport::send_encoded`] covers recovery resends: the inner
//! encoding already lives in the sender log, so only a ~30-byte header
//! segment is built fresh and the logged bytes travel as the second
//! segment of a two-segment [`Envelope`] — zero payload copies. The
//! concatenation of the two segments is byte-identical to a contiguous
//! frame ([`lclog_wire::crc32_concat`] checksums them as one buffer).
//!
//! [`DataPlaneStats`] counts frame allocations, framed bytes, and
//! payload copies; under `debug_assertions` every send path asserts a
//! copy *budget* against the thread-local [`bytes::audit`] counters,
//! so an accidental deep copy panics in CI instead of silently
//! regressing the hot path.

use crate::clock::Clock;
use crate::events::{EventKind, EventSink};
use crate::ring::SeqRing;
use bytes::{Bytes, BytesMut};
use lclog_core::Rank;
use lclog_simnet::{Envelope, SimNet};
use lclog_wire::{
    crc32, crc32_concat, decode_from_bytes, impl_wire_enum, impl_wire_struct, varint, Decode,
    Encode, Reader, WireError,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Assert that the wrapped expression performs at most `$budget`
/// copying `Bytes` constructions on this thread (debug builds only).
macro_rules! with_copy_budget {
    ($budget:expr, $what:expr, $body:expr) => {{
        #[cfg(debug_assertions)]
        let __copies_before = bytes::audit::copies();
        let out = $body;
        #[cfg(debug_assertions)]
        {
            let used = bytes::audit::copies() - __copies_before;
            assert!(
                used <= $budget,
                "data-plane copy budget exceeded in {}: {} Bytes copies (budget {})",
                $what,
                used,
                $budget,
            );
        }
        out
    }};
}

/// A sequenced, CRC-protected data frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DataFrame {
    /// Sender incarnation number.
    pub epoch: u64,
    /// Per-(sender, destination) transport sequence number (1-based).
    pub seq: u64,
    /// The sender's lowest unacknowledged sequence number at transmit
    /// time: everything below it was acknowledged, so a state-less
    /// (respawned) receiver may treat it as its cumulative floor.
    pub hint: u64,
    /// The encoded [`crate::message::WireMsg`].
    pub inner: Bytes,
}

impl_wire_struct!(DataFrame { epoch, seq, hint, inner });

/// Cumulative acknowledgement state echoed back to a data sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AckFrame {
    /// The data sender's epoch this acknowledgement refers to.
    pub epoch: u64,
    /// Highest contiguously received sequence number.
    pub floor: u64,
}

impl_wire_struct!(AckFrame { epoch, floor });

/// Fencing notice: the sender of this frame applied a membership view
/// under which the recipient's incarnation is declared dead. The
/// recipient compares `floor` against its own incarnation: if its
/// incarnation is below the floor, it has been fenced and must drop
/// volatile state and rejoin through the rollback path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FencedFrame {
    /// Membership epoch of the view that fenced the incarnation.
    pub epoch: u64,
    /// The recipient rank's lowest live incarnation per that view.
    pub floor: u64,
}

impl_wire_struct!(FencedFrame { epoch, floor });

/// Transport frame: what actually rides inside a fabric envelope,
/// prefixed by a 4-byte little-endian CRC-32 of the encoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Frame {
    /// Sequenced payload.
    Data(DataFrame),
    /// Cumulative acknowledgement (fire-and-forget, unsequenced).
    Ack(AckFrame),
    /// Corruption report: "resend everything above `floor`".
    Nack(AckFrame),
    /// Idle liveness beacon carrying the sender's incarnation — feeds
    /// the accrual failure detector when no data is flowing.
    Heartbeat(u64),
    /// Fencing notice to a stale incarnation.
    Fenced(FencedFrame),
}

impl_wire_enum!(Frame {
    0 => Data(f),
    1 => Ack(f),
    2 => Nack(f),
    3 => Heartbeat(epoch),
    4 => Fenced(f)
});

/// Wire tag of [`Frame::Data`]; the single-pass header writer must
/// stay byte-identical to the `impl_wire_enum!` encoding above.
const DATA_TAG: u8 = 0;
/// Length of the CRC-32 prefix.
const CRC_LEN: usize = 4;

/// Whether a raw fabric payload is a sequenced *data* frame (it
/// carries an encoded [`WireMsg`](crate::message::WireMsg)) rather
/// than pure transport control traffic (ack / nack / heartbeat /
/// fencing notice).
///
/// The deterministic schedule explorer uses this to branch only on
/// releases that can change application-visible behavior: control
/// frames are flushed eagerly, data frames become choice points.
pub fn payload_is_data_frame(payload: &[u8]) -> bool {
    payload.len() > CRC_LEN && payload[CRC_LEN] == DATA_TAG
}

/// Whether a raw fabric payload is a sequenced data frame whose inner
/// message is an **application send** (`WireMsg::App`), as opposed to
/// kernel-to-kernel protocol traffic that merely rides the sequenced
/// stream (acks, checkpoint advances, rollback/response recovery
/// frames, membership views, resync traffic).
///
/// The deterministic schedule explorer branches only on these:
/// application frames are the payloads whose arrival order the
/// order-insensitivity claim quantifies over, while protocol frames
/// are flushed eagerly — with virtual time frozen their relative
/// order is already forced, and branching on them would pad the
/// schedule tree without changing application-visible behavior.
pub fn payload_is_app_frame(payload: &[u8]) -> bool {
    if !payload_is_data_frame(payload) {
        return false;
    }
    // Skip CRC, DATA tag, epoch, seq, hint, then the varint length
    // prefix; the next byte is the inner WireMsg discriminant
    // (`0` = App — see `impl_wire_enum!` in message.rs).
    let mut idx = CRC_LEN + 1 + 24;
    loop {
        match payload.get(idx) {
            Some(b) => {
                idx += 1;
                if b & 0x80 == 0 {
                    break;
                }
            }
            None => return false,
        }
    }
    payload.get(idx) == Some(&0)
}

/// Bytes the data-frame header occupies after the CRC prefix for an
/// inner payload of `inner_len` bytes.
fn data_header_len(inner_len: usize) -> usize {
    1 + 8 + 8 + 8 + varint::len_u64(inner_len as u64)
}

/// Append the data-frame header (tag, epoch, seq, hint, inner length
/// prefix) — the single-pass mirror of `Frame::Data` encoding.
fn write_data_header(buf: &mut Vec<u8>, epoch: u64, seq: u64, hint: u64, inner_len: usize) {
    buf.push(DATA_TAG);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&hint.to_le_bytes());
    varint::write_u64(buf, inner_len as u64);
}

/// An already-built frame as it rides the fabric: `head` is the
/// CRC + header (plus, for contiguous frames, the payload); `body` is
/// the optional zero-copy payload segment. Cloning bumps refcounts.
#[derive(Debug, Clone)]
struct FrameBuf {
    head: Bytes,
    body: Bytes,
}

/// Byte-accounting for the zero-copy data plane, kept per transport
/// endpoint (i.e. per rank) and surfaced through
/// [`crate::KernelSnapshot`] and the bench tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataPlaneStats {
    /// Frame buffers allocated (one per `send_msg`/`send_encoded`/
    /// control frame; retransmissions allocate none).
    pub frames_built: u64,
    /// Total bytes written into freshly built frame buffers.
    pub bytes_framed: u64,
    /// Payload encoding passes (payload bytes written into a frame).
    /// Exactly one per `send_msg`; zero for resends.
    pub payload_copies: u64,
    /// Payload bytes written by those passes.
    pub payload_bytes_copied: u64,
    /// Sends that reused an already-encoded payload from the sender
    /// log (recovery / rendezvous resends) — zero payload copies.
    pub zero_copy_resends: u64,
    /// Frames resent verbatim from the unacked map (timeout or NACK) —
    /// zero allocations, zero copies.
    pub retransmit_frames: u64,
    /// Data frames whose acknowledgement rode a coalesced cumulative
    /// ack instead of a dedicated frame.
    pub acks_coalesced: u64,
    /// Cumulative ack frames actually sent by `flush_acks`; the
    /// coalescing win is `acks_coalesced / (acks_coalesced +
    /// ack_frames)` fewer control frames than ack-per-data-frame.
    pub ack_frames: u64,
}

impl DataPlaneStats {
    /// Accumulate another endpoint's counters (for cluster-wide
    /// totals).
    pub fn merge(&mut self, other: &DataPlaneStats) {
        self.frames_built += other.frames_built;
        self.bytes_framed += other.bytes_framed;
        self.payload_copies += other.payload_copies;
        self.payload_bytes_copied += other.payload_bytes_copied;
        self.zero_copy_resends += other.zero_copy_resends;
        self.retransmit_frames += other.retransmit_frames;
        self.acks_coalesced += other.acks_coalesced;
        self.ack_frames += other.ack_frames;
    }
}

/// Lock-free mirror of [`DataPlaneStats`] — shared across the peer
/// shards, snapshotted on demand.
#[derive(Default)]
struct DpCounters {
    frames_built: AtomicU64,
    bytes_framed: AtomicU64,
    payload_copies: AtomicU64,
    payload_bytes_copied: AtomicU64,
    zero_copy_resends: AtomicU64,
    retransmit_frames: AtomicU64,
    acks_coalesced: AtomicU64,
    ack_frames: AtomicU64,
}

impl DpCounters {
    fn snapshot(&self) -> DataPlaneStats {
        DataPlaneStats {
            frames_built: self.frames_built.load(Ordering::Relaxed),
            bytes_framed: self.bytes_framed.load(Ordering::Relaxed),
            payload_copies: self.payload_copies.load(Ordering::Relaxed),
            payload_bytes_copied: self.payload_bytes_copied.load(Ordering::Relaxed),
            zero_copy_resends: self.zero_copy_resends.load(Ordering::Relaxed),
            retransmit_frames: self.retransmit_frames.load(Ordering::Relaxed),
            acks_coalesced: self.acks_coalesced.load(Ordering::Relaxed),
            ack_frames: self.ack_frames.load(Ordering::Relaxed),
        }
    }
}

/// Retransmission tuning (from `RunConfig`).
#[derive(Debug, Clone)]
pub(crate) struct TransportConfig {
    /// Initial retransmission timeout.
    pub timeout: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Consecutive no-progress retransmission rounds before the peer
    /// is declared unreachable.
    pub budget: u32,
    /// Time source for retry deadlines (virtual under deterministic
    /// simulation — backoff then advances only when the scheduler
    /// advances the clock).
    pub clock: Clock,
}

/// Sender side of one channel.
struct TxChannel {
    next_seq: u64,
    /// Unacknowledged **built frames** by sequence number: the exact
    /// bytes that went out, resent verbatim on timeout or NACK.
    unacked: BTreeMap<u64, FrameBuf>,
    /// Consecutive retransmission rounds without an ack advancing.
    attempts: u32,
    backoff: Duration,
    next_retry: Instant,
}

impl TxChannel {
    /// Allocate the next sequence number, restarting the retry clock
    /// when the outstanding window was empty. Returns `(seq, hint)`
    /// where `hint` is the lowest outstanding seq *including* the new
    /// frame.
    fn begin_send(&mut self, timeout: Duration, now: Instant) -> (u64, u64) {
        self.next_seq += 1;
        let seq = self.next_seq;
        if self.unacked.is_empty() {
            // Fresh outstanding window: restart the retry clock (and
            // give a previously written-off peer another budget).
            self.attempts = 0;
            self.backoff = timeout;
            self.next_retry = now + self.backoff;
        }
        let hint = self.unacked.keys().next().copied().unwrap_or(seq);
        (seq, hint)
    }
}

/// Receiver side of one channel.
struct RxChannel {
    /// Highest sender epoch seen.
    epoch: u64,
    /// Highest contiguously received sequence number.
    floor: u64,
    /// Received sequence numbers above the floor (out-of-order or
    /// post-gap arrivals, kept only for duplicate detection — frames
    /// are handed up immediately; FIFO ordering is the app layer's
    /// concern and the fabric is per-pair FIFO anyway).
    above: BTreeSet<u64>,
}

/// Both directions of one channel, guarded by the shard mutex.
struct PeerChan {
    tx: TxChannel,
    rx: RxChannel,
    /// Set when a data frame arrived and its cumulative ack has not
    /// been flushed yet (the peer sits on the ack queue).
    ack_pending: bool,
}

/// One peer's shard: the locked channel state plus the lock-free
/// verdict bits read on hot paths (`peer_unreachable` is polled every
/// rendezvous spin).
struct PeerShard {
    chan: Mutex<PeerChan>,
    /// Set when the retransmit budget was exhausted; cleared the
    /// moment any valid frame arrives from the peer.
    unreachable: AtomicBool,
    /// Suspicion mode: the budget was exhausted and the peer was
    /// queued for the failure detector; avoids re-reporting every
    /// tick. Cleared on any sign of life.
    suspect_flagged: AtomicBool,
}

/// Per-incarnation reliability endpoint. One per kernel (and one for
/// the event-logger service), channels sized to the whole fabric
/// (`n + 1` slots, so the logger participates). Sharded per peer —
/// every method takes `&self`, and operations on different channels
/// never contend.
pub(crate) struct Transport {
    me: Rank,
    /// This incarnation's epoch (= incarnation number).
    epoch: AtomicU64,
    net: SimNet,
    cfg: TransportConfig,
    peers: Vec<PeerShard>,
    /// Peers with an unflushed cumulative ack (dirty list; the
    /// `ack_pending` flag dedups entries).
    ack_queue: SeqRing<Rank>,
    /// Duplicates discarded below the app layer (observability).
    dup_discarded: AtomicU64,
    /// CRC mismatches detected (observability).
    corrupt_detected: AtomicU64,
    /// Zero-copy byte accounting for this endpoint.
    dp: DpCounters,
    /// Timeline collector (disabled by default).
    events: EventSink,
    /// Per-rank lowest live incarnation per the newest applied
    /// membership view. Starts at 1 everywhere — the first incarnation
    /// alive, nothing fenced — matching `MembershipView::initial`, so
    /// only a genuine death declaration counts as a floor advance.
    /// Monotone, so lock-free readers are safe; writes serialize on
    /// `view_lock`.
    fence_floor: Vec<AtomicU64>,
    /// Epoch of the newest applied membership view.
    fence_epoch: AtomicU64,
    /// Serializes membership-view application (the only multi-word
    /// fence update).
    view_lock: Mutex<()>,
    /// Set when a membership view (or a `Fenced` notice) declared
    /// *this* incarnation dead.
    self_fenced: AtomicBool,
    /// Frames rejected because they came from a fenced incarnation.
    fenced_rejected: AtomicU64,
    /// Ranks heard from (intact, non-fenced frame) since the last
    /// [`Transport::take_heard`] — the detector's liveness feed.
    heard: Vec<AtomicBool>,
    /// Fast check for `heard` being all-false.
    any_heard: AtomicBool,
    /// When true, budget exhaustion queues the peer as a suspicion
    /// input instead of issuing a unilateral `unreachable` verdict.
    suspicion_mode: AtomicBool,
    /// Peers whose budget ran out in suspicion mode, awaiting pickup
    /// by the failure detector.
    pending_suspects: Mutex<Vec<Rank>>,
    /// Highest incarnation heard per rank (data frames + heartbeats).
    peer_inc: Vec<AtomicU64>,
}

impl Transport {
    pub(crate) fn new(me: Rank, slots: usize, net: SimNet, cfg: TransportConfig) -> Self {
        let now = cfg.clock.now();
        let backoff = cfg.timeout;
        Transport {
            me,
            epoch: AtomicU64::new(1),
            net,
            cfg,
            peers: (0..slots)
                .map(|_| PeerShard {
                    chan: Mutex::new(PeerChan {
                        tx: TxChannel {
                            next_seq: 0,
                            unacked: BTreeMap::new(),
                            attempts: 0,
                            backoff,
                            next_retry: now,
                        },
                        rx: RxChannel {
                            epoch: 0,
                            floor: 0,
                            above: BTreeSet::new(),
                        },
                        ack_pending: false,
                    }),
                    unreachable: AtomicBool::new(false),
                    suspect_flagged: AtomicBool::new(false),
                })
                .collect(),
            ack_queue: SeqRing::with_capacity(slots.max(8) * 2),
            dup_discarded: AtomicU64::new(0),
            corrupt_detected: AtomicU64::new(0),
            dp: DpCounters::default(),
            events: EventSink::disabled(),
            fence_floor: (0..slots).map(|_| AtomicU64::new(1)).collect(),
            fence_epoch: AtomicU64::new(0),
            view_lock: Mutex::new(()),
            self_fenced: AtomicBool::new(false),
            fenced_rejected: AtomicU64::new(0),
            heard: (0..slots).map(|_| AtomicBool::new(false)).collect(),
            any_heard: AtomicBool::new(false),
            suspicion_mode: AtomicBool::new(false),
            pending_suspects: Mutex::new(Vec::new()),
            peer_inc: (0..slots).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The transport's time source (shared with everything downstream
    /// of the kernel that needs "now" — e.g. the detector feed).
    pub(crate) fn clock(&self) -> &Clock {
        &self.cfg.clock
    }

    /// Attach a timeline collector (peer write-offs are timeline
    /// events).
    pub(crate) fn set_event_sink(&mut self, sink: EventSink) {
        self.events = sink;
    }

    /// Set this endpoint's epoch (the rank's incarnation number).
    /// Must be called before any traffic when the incarnation is not
    /// the first; receivers use it to reset stale channel state.
    pub(crate) fn set_epoch(&self, epoch: u64) {
        debug_assert!(epoch >= 1, "epochs are 1-based");
        self.epoch.store(epoch, Ordering::Release);
    }

    /// True when `dst` exhausted its retransmit budget and has not
    /// been heard from since (lock-free).
    pub(crate) fn peer_unreachable(&self, dst: Rank) -> bool {
        self.peers[dst].unreachable.load(Ordering::Acquire)
    }

    /// Enable suspicion mode: budget exhaustion is reported through
    /// [`Transport::take_pending_suspects`] for the failure detector
    /// instead of producing a unilateral `unreachable` verdict.
    pub(crate) fn set_suspicion_mode(&self, on: bool) {
        self.suspicion_mode.store(on, Ordering::Release);
    }

    /// True when a membership view or `Fenced` notice declared this
    /// incarnation dead.
    pub(crate) fn is_self_fenced(&self) -> bool {
        self.self_fenced.load(Ordering::Acquire)
    }

    /// Frames rejected for coming from a fenced incarnation.
    pub(crate) fn fenced_rejected(&self) -> u64 {
        self.fenced_rejected.load(Ordering::Relaxed)
    }

    /// Membership epoch of the newest view this endpoint applied.
    pub(crate) fn fence_epoch(&self) -> u64 {
        self.fence_epoch.load(Ordering::Acquire)
    }

    /// Apply a certified membership view: raise per-rank fence floors
    /// and detect self-fencing. Returns the ranks whose floor advanced
    /// when the view was newer than the one already applied, `None`
    /// for a stale view. Serialized on `view_lock`; readers of the
    /// individual floors stay lock-free (floors are monotone).
    pub(crate) fn apply_fence_floors(&self, epoch: u64, floor: &[u64]) -> Option<Vec<Rank>> {
        let _guard = self.view_lock.lock();
        if epoch <= self.fence_epoch.load(Ordering::Acquire) {
            return None;
        }
        self.fence_epoch.store(epoch, Ordering::Release);
        let mut advanced = Vec::new();
        for (rank, &f) in floor.iter().enumerate() {
            if rank < self.fence_floor.len() && f > self.fence_floor[rank].load(Ordering::Acquire)
            {
                self.fence_floor[rank].store(f, Ordering::Release);
                advanced.push(rank);
            }
        }
        let own_floor = self
            .fence_floor
            .get(self.me)
            .map(|f| f.load(Ordering::Acquire))
            .unwrap_or(0);
        if own_floor > self.epoch.load(Ordering::Acquire)
            && !self.self_fenced.swap(true, Ordering::AcqRel)
        {
            self.events.emit(self.me, EventKind::SelfFenced { epoch });
        }
        Some(advanced)
    }

    /// The lowest live incarnation of `rank` per the newest applied
    /// view (0 when no view fenced anything yet).
    pub(crate) fn fence_floor(&self, rank: Rank) -> u64 {
        self.fence_floor[rank].load(Ordering::Acquire)
    }

    /// The highest incarnation of `rank` this endpoint has heard from
    /// (via data frames or heartbeats); 0 when never heard.
    pub(crate) fn peer_incarnation(&self, rank: Rank) -> u64 {
        self.peer_inc[rank].load(Ordering::Acquire)
    }

    /// Drain the set of ranks heard from (intact, non-fenced frames)
    /// since the last call — the accrual detector's liveness feed.
    pub(crate) fn take_heard(&self, mut f: impl FnMut(Rank)) {
        if !self.any_heard.swap(false, Ordering::AcqRel) {
            return;
        }
        for rank in 0..self.heard.len() {
            if self.heard[rank].swap(false, Ordering::AcqRel) {
                f(rank);
            }
        }
    }

    /// Drain the peers whose retransmit budget ran out while suspicion
    /// mode was on.
    pub(crate) fn take_pending_suspects(&self) -> Vec<Rank> {
        std::mem::take(&mut *self.pending_suspects.lock())
    }

    /// Send an explicit liveness beacon to `dst` (used when no data
    /// traffic has flowed recently). A fenced incarnation stays silent:
    /// its beacons would only be rejected, and it is about to die.
    pub(crate) fn send_heartbeat(&self, dst: Rank) {
        if self.is_self_fenced() {
            return;
        }
        self.transmit_control(dst, &Frame::Heartbeat(self.epoch.load(Ordering::Acquire)));
    }

    /// Record evidence of life from `src`: an intact frame that is not
    /// from a fenced incarnation.
    fn note_heard(&self, src: Rank) {
        self.peers[src].unreachable.store(false, Ordering::Release);
        self.peers[src].suspect_flagged.store(false, Ordering::Release);
        self.heard[src].store(true, Ordering::Release);
        self.any_heard.store(true, Ordering::Release);
    }

    /// Duplicate frames discarded below the application layer.
    pub(crate) fn dup_discarded(&self) -> u64 {
        self.dup_discarded.load(Ordering::Relaxed)
    }

    /// CRC mismatches detected on receive.
    pub(crate) fn corrupt_detected(&self) -> u64 {
        self.corrupt_detected.load(Ordering::Relaxed)
    }

    /// Snapshot of this endpoint's data-plane byte accounting.
    pub(crate) fn data_plane(&self) -> DataPlaneStats {
        self.dp.snapshot()
    }

    /// One line per peer with traffic: `dst tx(next/unacked/attempts)
    /// rx(epoch/floor/above)` — for the stall dump.
    pub(crate) fn channel_summary(&self) -> Vec<String> {
        (0..self.peers.len())
            .filter_map(|p| {
                let ch = self.peers[p].chan.lock();
                if ch.tx.next_seq == 0 && ch.rx.epoch == 0 {
                    return None;
                }
                Some(format!(
                    "{}: tx seq {} unacked {:?} attempts {}{} | rx e{} floor {} above {:?}{}",
                    p,
                    ch.tx.next_seq,
                    ch.tx.unacked.keys().collect::<Vec<_>>(),
                    ch.tx.attempts,
                    if self.peers[p].unreachable.load(Ordering::Relaxed) {
                        " UNREACHABLE"
                    } else {
                        ""
                    },
                    ch.rx.epoch,
                    ch.rx.floor,
                    ch.rx.above,
                    if ch.ack_pending { " ack-pending" } else { "" },
                ))
            })
            .collect()
    }

    /// Hand a built frame to the fabric (refcount bumps only). Sends
    /// to dead ranks are dropped by the fabric — exactly the paper's
    /// model; retransmission (and, above it, recovery resends) cover
    /// the loss.
    fn transmit_frame(&self, dst: Rank, fb: &FrameBuf) {
        let _ = self
            .net
            .send_parts(self.me, dst, fb.head.clone(), fb.body.clone());
    }

    /// Build and send an unsequenced control frame (ack/nack) in one
    /// pass, one allocation.
    fn transmit_control(&self, dst: Rank, frame: &Frame) {
        let body_len = frame.encoded_len();
        let mut buf = BytesMut::with_capacity(CRC_LEN + body_len);
        let v = buf.as_mut_vec();
        v.extend_from_slice(&[0u8; CRC_LEN]);
        frame.encode(v);
        let crc = crc32(&v[CRC_LEN..]).to_le_bytes();
        v[..CRC_LEN].copy_from_slice(&crc);
        let head = buf.freeze();
        self.dp.frames_built.fetch_add(1, Ordering::Relaxed);
        self.dp
            .bytes_framed
            .fetch_add(head.len() as u64, Ordering::Relaxed);
        let _ = self.net.send(self.me, dst, head);
    }

    /// Send one wire message reliably to `dst`, building the frame
    /// (CRC + header + encoded payload) in a **single pass into a
    /// single allocation**. Returns the inner (encoded-message) region
    /// of that frame as a zero-copy window — the caller logs it; the
    /// unacked map holds the whole frame; the fabric carries another
    /// window. Copy budget: one encoding pass, zero `Bytes` copies.
    /// Locks only `dst`'s shard.
    pub(crate) fn send_msg<M: Encode>(&self, dst: Rank, msg: &M) -> Bytes {
        with_copy_budget!(0, "Transport::send_msg", {
            let mut ch = self.peers[dst].chan.lock();
            let (seq, hint) = ch.tx.begin_send(self.cfg.timeout, self.cfg.clock.now());
            let inner_len = msg.encoded_len();
            let header_len = CRC_LEN + data_header_len(inner_len);
            let mut buf = BytesMut::with_capacity(header_len + inner_len);
            let v = buf.as_mut_vec();
            v.extend_from_slice(&[0u8; CRC_LEN]);
            write_data_header(v, self.epoch.load(Ordering::Acquire), seq, hint, inner_len);
            msg.encode(v);
            debug_assert_eq!(v.len(), header_len + inner_len, "encoded_len mismatch");
            let crc = crc32(&v[CRC_LEN..]).to_le_bytes();
            v[..CRC_LEN].copy_from_slice(&crc);
            let frame = buf.freeze();
            let inner = frame.slice(header_len..);
            self.dp.frames_built.fetch_add(1, Ordering::Relaxed);
            self.dp
                .bytes_framed
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
            self.dp.payload_copies.fetch_add(1, Ordering::Relaxed);
            self.dp
                .payload_bytes_copied
                .fetch_add(inner_len as u64, Ordering::Relaxed);
            let fb = FrameBuf {
                head: frame,
                body: Bytes::new(),
            };
            self.transmit_frame(dst, &fb);
            ch.tx.unacked.insert(seq, fb);
            inner
        })
    }

    /// Send an **already-encoded** wire message (a window into the
    /// sender log) reliably to `dst` with zero payload copies: only a
    /// small header segment is built fresh; the logged bytes ride as
    /// the second segment of a two-segment envelope whose
    /// concatenation is byte-identical to a contiguous frame.
    pub(crate) fn send_encoded(&self, dst: Rank, inner: Bytes) {
        with_copy_budget!(0, "Transport::send_encoded", {
            let mut ch = self.peers[dst].chan.lock();
            let (seq, hint) = ch.tx.begin_send(self.cfg.timeout, self.cfg.clock.now());
            let header_len = CRC_LEN + data_header_len(inner.len());
            let mut buf = BytesMut::with_capacity(header_len);
            let v = buf.as_mut_vec();
            v.extend_from_slice(&[0u8; CRC_LEN]);
            write_data_header(
                v,
                self.epoch.load(Ordering::Acquire),
                seq,
                hint,
                inner.len(),
            );
            let crc = crc32_concat(&v[CRC_LEN..], &inner).to_le_bytes();
            v[..CRC_LEN].copy_from_slice(&crc);
            let head = buf.freeze();
            self.dp.frames_built.fetch_add(1, Ordering::Relaxed);
            self.dp
                .bytes_framed
                .fetch_add(head.len() as u64, Ordering::Relaxed);
            self.dp.zero_copy_resends.fetch_add(1, Ordering::Relaxed);
            let fb = FrameBuf { head, body: inner };
            self.transmit_frame(dst, &fb);
            ch.tx.unacked.insert(seq, fb);
        })
    }

    /// Decode a two-segment frame: the head carries CRC + data header,
    /// the body *is* the inner payload. Only data frames are ever
    /// segmented.
    fn decode_segmented(env: &Envelope) -> Result<Frame, WireError> {
        let head = &env.payload[CRC_LEN..];
        let mut r = Reader::new(head);
        let tag = r.take_byte()?;
        if tag != DATA_TAG {
            return Err(WireError::InvalidTag {
                type_name: "Frame",
                tag: tag as u64,
            });
        }
        let epoch = u64::decode(&mut r)?;
        let seq = u64::decode(&mut r)?;
        let hint = u64::decode(&mut r)?;
        let inner_len = varint::read_u64(&mut r)?;
        r.finish()?;
        if inner_len != env.body.len() as u64 {
            return Err(WireError::LengthOverflow {
                declared: inner_len,
            });
        }
        Ok(Frame::Data(DataFrame {
            epoch,
            seq,
            hint,
            inner: env.body.clone(),
        }))
    }

    /// Process one raw envelope. Returns the inner payload to hand to
    /// the application layer (`None` for control frames, duplicates,
    /// and corrupt envelopes). The returned `Bytes` is a zero-copy
    /// window into the received frame.
    ///
    /// Data frames mark their channel ack-pending instead of
    /// transmitting an ack inline; callers finish the batch with
    /// [`Transport::flush_acks`].
    pub(crate) fn ingest(&self, env: Envelope) -> Option<Bytes> {
        let src = env.src;
        if env.payload.len() < CRC_LEN {
            self.corrupt_detected.fetch_add(1, Ordering::Relaxed);
            self.send_nack(src);
            return None;
        }
        let want = u32::from_le_bytes(env.payload[..CRC_LEN].try_into().expect("4 bytes"));
        // Checksum the logical frame across both segments without
        // joining them.
        if crc32_concat(&env.payload[CRC_LEN..], &env.body) != want {
            self.corrupt_detected.fetch_add(1, Ordering::Relaxed);
            self.send_nack(src);
            return None;
        }
        let decoded = if env.body.is_empty() {
            let buf = env.payload.slice(CRC_LEN..);
            decode_from_bytes::<Frame>(&buf)
        } else {
            Self::decode_segmented(&env)
        };
        let frame = match decoded {
            Ok(f) => f,
            Err(_) => {
                // A CRC-valid frame that fails to decode is a codec
                // bug, not line noise.
                debug_assert!(false, "CRC-valid frame from {src} failed to decode");
                return None;
            }
        };
        match frame {
            Frame::Data(d) => {
                let floor = self.fence_floor(src);
                if floor > d.epoch {
                    // A declared-dead incarnation is still talking: a
                    // false suspicion. Reject the frame and tell the
                    // zombie so it can drop volatile state and rejoin
                    // through the rollback path — accepting it would
                    // mix two incarnations' sends into one epoch.
                    self.fenced_rejected.fetch_add(1, Ordering::Relaxed);
                    self.events.emit(
                        self.me,
                        EventKind::StaleFenced {
                            peer: src,
                            incarnation: d.epoch,
                        },
                    );
                    self.send_fenced(src, floor);
                    return None;
                }
                // An intact, non-fenced frame proves the peer is alive.
                self.note_heard(src);
                self.peer_inc[src].fetch_max(d.epoch, Ordering::AcqRel);
                self.ingest_data(src, d)
            }
            Frame::Ack(a) => {
                self.note_heard(src);
                if a.epoch == self.epoch.load(Ordering::Acquire) {
                    self.on_ack(src, a.floor);
                }
                None
            }
            Frame::Nack(a) => {
                self.note_heard(src);
                if a.epoch == self.epoch.load(Ordering::Acquire) {
                    self.retransmit_above(src, a.floor);
                }
                None
            }
            Frame::Heartbeat(epoch) => {
                let floor = self.fence_floor(src);
                if floor > epoch {
                    self.fenced_rejected.fetch_add(1, Ordering::Relaxed);
                    self.send_fenced(src, floor);
                } else {
                    self.note_heard(src);
                    self.peer_inc[src].fetch_max(epoch, Ordering::AcqRel);
                }
                None
            }
            Frame::Fenced(f) => {
                // The peer's view declares some incarnation of us
                // dead; only act if it is *this* one.
                if f.floor > self.epoch.load(Ordering::Acquire)
                    && !self.self_fenced.swap(true, Ordering::AcqRel)
                {
                    self.events
                        .emit(self.me, EventKind::SelfFenced { epoch: f.epoch });
                }
                None
            }
        }
    }

    fn ingest_data(&self, src: Rank, d: DataFrame) -> Option<Bytes> {
        let mut ch = self.peers[src].chan.lock();
        let rx = &mut ch.rx;
        if d.epoch < rx.epoch {
            // Leftover from a dead incarnation; its in-flight traffic
            // is rolled back state, not data.
            return None;
        }
        if d.epoch > rx.epoch {
            rx.epoch = d.epoch;
            rx.floor = 0;
            rx.above.clear();
        }
        // Everything below `hint` was acknowledged to the sender — by
        // us or by our previous incarnation — so it can never be
        // outstanding again.
        if d.hint > 0 && d.hint - 1 > rx.floor {
            rx.floor = d.hint - 1;
            let kept: BTreeSet<u64> = rx.above.split_off(&(rx.floor + 1));
            rx.above = kept;
        }
        if d.seq <= rx.floor || rx.above.contains(&d.seq) {
            self.dup_discarded.fetch_add(1, Ordering::Relaxed);
            // Re-ack (batched): the duplicate usually means our ack
            // was lost.
            self.note_ack_pending(src, &mut ch);
            return None;
        }
        rx.above.insert(d.seq);
        while rx.above.remove(&(rx.floor + 1)) {
            rx.floor += 1;
        }
        self.note_ack_pending(src, &mut ch);
        Some(d.inner)
    }

    /// Mark `src`'s channel ack-pending and enqueue it on the dirty
    /// list (the flag dedups). If the queue is somehow full the ack
    /// goes out inline — correctness never depends on the batch.
    fn note_ack_pending(&self, src: Rank, ch: &mut PeerChan) {
        if ch.ack_pending {
            // This frame's ack rides the already-pending cumulative one.
            self.dp.acks_coalesced.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ch.ack_pending = true;
        if self.ack_queue.try_push(src).is_err() {
            ch.ack_pending = false;
            let ack = AckFrame {
                epoch: ch.rx.epoch,
                floor: ch.rx.floor,
            };
            self.dp.ack_frames.fetch_add(1, Ordering::Relaxed);
            self.transmit_control(src, &Frame::Ack(ack));
        }
    }

    /// Flush the coalesced cumulative acks: one ack frame per peer
    /// that received data since the last flush. Called by the kernel
    /// at the end of each ingest batch and from the tick.
    pub(crate) fn flush_acks(&self) {
        while let Some(src) = self.ack_queue.try_pop() {
            let ack = {
                let mut ch = self.peers[src].chan.lock();
                if !ch.ack_pending {
                    continue; // already flushed inline
                }
                ch.ack_pending = false;
                AckFrame {
                    epoch: ch.rx.epoch,
                    floor: ch.rx.floor,
                }
            };
            self.dp.ack_frames.fetch_add(1, Ordering::Relaxed);
            self.transmit_control(src, &Frame::Ack(ack));
        }
    }

    fn send_nack(&self, src: Rank) {
        let nack = {
            let ch = self.peers[src].chan.lock();
            AckFrame {
                epoch: ch.rx.epoch,
                floor: ch.rx.floor,
            }
        };
        self.transmit_control(src, &Frame::Nack(nack));
    }

    fn send_fenced(&self, src: Rank, floor: u64) {
        let notice = FencedFrame {
            epoch: self.fence_epoch.load(Ordering::Acquire),
            floor,
        };
        self.transmit_control(src, &Frame::Fenced(notice));
    }

    fn on_ack(&self, src: Rank, floor: u64) {
        let now = self.cfg.clock.now();
        let mut ch = self.peers[src].chan.lock();
        let timeout = self.cfg.timeout;
        let tx = &mut ch.tx;
        let pending = tx.unacked.split_off(&(floor + 1));
        let advanced = tx.unacked.len();
        tx.unacked = pending;
        if advanced > 0 {
            // Progress: reset the give-up countdown.
            tx.attempts = 0;
            tx.backoff = timeout;
            tx.next_retry = now + tx.backoff;
        }
    }

    /// NACK response: the peer saw a corrupt frame, so skip the
    /// timeout and resend everything it has not contiguously received.
    /// Stored frames go out verbatim — refcount bumps, no re-encoding.
    /// (Their `hint` may be stale, which is safe: hints only report
    /// what was already acknowledged, and acks never regress.)
    fn retransmit_above(&self, dst: Rank, floor: u64) {
        with_copy_budget!(0, "Transport::retransmit_above", {
            let ch = self.peers[dst].chan.lock();
            let mut sent = 0u64;
            for (_, fb) in ch.tx.unacked.range(floor + 1..) {
                self.transmit_frame(dst, fb);
                self.net.stats().record_retransmit();
                sent += 1;
            }
            self.dp.retransmit_frames.fetch_add(sent, Ordering::Relaxed);
        })
    }

    /// Drive timeouts: retransmit overdue frames with exponential
    /// backoff, and write off peers whose budget is exhausted.
    ///
    /// Channels are filtered by deadline *before* any buffer is
    /// touched: a poll where nothing is due does no per-frame work at
    /// all, and an overdue channel resends refcount bumps of its
    /// stored frames rather than rebuilding (or deep-copying) them.
    pub(crate) fn tick(&self) {
        let now = self.cfg.clock.now();
        for dst in 0..self.peers.len() {
            let mut ch = self.peers[dst].chan.lock();
            if ch.tx.unacked.is_empty() || now < ch.tx.next_retry {
                continue;
            }
            ch.tx.attempts += 1;
            if ch.tx.attempts > self.cfg.budget {
                if self.suspicion_mode.load(Ordering::Acquire) {
                    // Budget exhaustion is *evidence*, not a verdict:
                    // queue the peer for the failure detector and keep
                    // retransmitting at the capped backoff. If the
                    // peer is truly dead the detector will declare it;
                    // if it is merely slow the frames must still be
                    // there when it catches up.
                    if !self.peers[dst].suspect_flagged.swap(true, Ordering::AcqRel) {
                        self.pending_suspects.lock().push(dst);
                    }
                    let backoff = ch.tx.backoff;
                    ch.tx.next_retry = now + backoff;
                } else {
                    self.events.emit(
                        self.me,
                        EventKind::PeerWrittenOff {
                            peer: dst,
                            attempts: ch.tx.attempts,
                        },
                    );
                    // The peer has been silent across the whole
                    // budget: stop retrying so callers can surface
                    // `Fault::Unreachable` instead of hanging.
                    // Recovery regenerates anything that still
                    // matters if the peer ever comes back.
                    self.peers[dst].unreachable.store(true, Ordering::Release);
                    ch.tx.unacked.clear();
                    continue;
                }
            } else {
                ch.tx.backoff = (ch.tx.backoff * 2).min(self.cfg.cap);
                let backoff = ch.tx.backoff;
                ch.tx.next_retry = now + backoff;
            }
            with_copy_budget!(0, "Transport::tick retransmit", {
                let mut sent = 0u64;
                for (_, fb) in ch.tx.unacked.iter() {
                    self.transmit_frame(dst, fb);
                    self.net.stats().record_retransmit();
                    sent += 1;
                }
                self.dp.retransmit_frames.fetch_add(sent, Ordering::Relaxed);
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_simnet::{ChaosConfig, NetConfig};
    use lclog_wire::encode_to_vec;

    fn cfg() -> TransportConfig {
        TransportConfig {
            timeout: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            budget: 5,
            clock: Clock::Real,
        }
    }

    fn pair(
        net_cfg: NetConfig,
    ) -> (
        SimNet,
        Transport,
        Transport,
        lclog_simnet::Endpoint,
        lclog_simnet::Endpoint,
    ) {
        let net = SimNet::new(2, net_cfg);
        let ep0 = net.attach(0);
        let ep1 = net.attach(1);
        let t0 = Transport::new(0, 2, net.clone(), cfg());
        let t1 = Transport::new(1, 2, net.clone(), cfg());
        (net, t0, t1, ep0, ep1)
    }

    /// Drain `ep` into `t`, returning delivered payloads. Mirrors the
    /// kernel's batch shape: ingest everything, then flush the
    /// coalesced acks once.
    fn drain(t: &Transport, ep: &lclog_simnet::Endpoint) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Ok(env) = ep.try_recv() {
            out.extend(t.ingest(env));
        }
        t.flush_acks();
        out
    }

    /// Opaque payloads go through `send_msg` as raw `Bytes`; the
    /// receiver sees the same bytes re-encoded, so tests compare
    /// against the encoded form via this helper.
    fn send_blob(t: &Transport, dst: Rank, blob: &[u8]) {
        t.send_encoded(dst, Bytes::copy_from_slice(blob));
    }

    fn unacked_len(t: &Transport, dst: Rank) -> usize {
        t.peers[dst].chan.lock().tx.unacked.len()
    }

    #[test]
    fn roundtrip_and_ack_clears_window() {
        let (_net, t0, t1, ep0, ep1) = pair(NetConfig::direct());
        send_blob(&t0, 1, b"ping");
        let got = drain(&t1, &ep1);
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0][..], b"ping");
        // t0 ingests the ack; window empties.
        assert!(drain(&t0, &ep0).is_empty());
        assert_eq!(unacked_len(&t0, 1), 0);
    }

    #[test]
    fn acks_coalesce_across_a_batch() {
        // Three data frames drained in one batch produce one
        // cumulative ack frame, and it still clears the whole window.
        let (_net, t0, t1, ep0, ep1) = pair(NetConfig::direct());
        send_blob(&t0, 1, b"a");
        send_blob(&t0, 1, b"b");
        send_blob(&t0, 1, b"c");
        assert_eq!(drain(&t1, &ep1).len(), 3);
        // Exactly one ack envelope on the return path.
        let mut acks = 0;
        while let Ok(env) = ep0.try_recv() {
            let _ = t0.ingest(env);
            acks += 1;
        }
        t0.flush_acks();
        assert_eq!(acks, 1, "batched ingest coalesces to one cumulative ack");
        assert_eq!(unacked_len(&t0, 1), 0, "the single ack covered all three");
        // The receiver's accounting agrees: two of the three data
        // frames rode the pending cumulative ack, one frame went out.
        let dp = t1.data_plane();
        assert_eq!(dp.acks_coalesced, 2);
        assert_eq!(dp.ack_frames, 1);
    }

    #[test]
    fn single_pass_frame_shares_one_allocation() {
        let (_net, t0, t1, _ep0, ep1) = pair(NetConfig::direct());
        let msg = Bytes::from(vec![0xAB; 64]);
        let inner = t0.send_msg(1, &msg);
        // The returned window and the stored unacked frame are views
        // of the same allocation (frame built once).
        {
            let ch = t0.peers[1].chan.lock();
            let stored = &ch.tx.unacked[&1];
            assert!(inner.shares_allocation(&stored.head));
            assert!(stored.body.is_empty());
        }
        assert_eq!(t0.data_plane().frames_built, 1);
        assert_eq!(t0.data_plane().payload_copies, 1);
        // The receiver decodes the same logical bytes.
        let got = drain(&t1, &ep1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], Bytes::from(encode_to_vec(&msg)));
    }

    #[test]
    fn segmented_and_contiguous_frames_are_wire_identical() {
        // A send_encoded frame, joined into one buffer, must decode
        // exactly like a contiguous frame — the segmented path is a
        // transport optimization, not a second wire format.
        let (net, t0, _t1, _ep0, ep1) = pair(NetConfig::direct());
        let payload = b"identical on the wire".to_vec();
        send_blob(&t0, 1, &payload);
        let seg = ep1.try_recv().unwrap();
        assert!(!seg.body.is_empty(), "send_encoded frames are segmented");
        // The delivered payload is a zero-copy handle on the sender's
        // buffer (the fabric moves handles, not bytes).
        let t1b = Transport::new(1, 2, net.clone(), cfg());
        let joined = seg.contiguous();
        let got = t1b.ingest(seg).expect("segmented data frame delivers");
        assert_eq!(&got[..], &payload[..]);
        // And the contiguous join decodes identically through a fresh
        // receiver's single-buffer path.
        let t1c = Transport::new(1, 2, net.clone(), cfg());
        let env = Envelope {
            src: 0,
            dst: 1,
            seq: 1,
            payload: joined,
            body: Bytes::new(),
        };
        let got2 = t1c.ingest(env).expect("joined frame decodes contiguously");
        assert_eq!(got2, got);
    }

    #[test]
    fn retransmit_resends_stored_frame_without_rebuilding() {
        let chaos = ChaosConfig::seeded(11).with_drop(1.0);
        let (_net, t0, _t1, _ep0, _ep1) = pair(NetConfig::direct().with_chaos(chaos));
        send_blob(&t0, 1, b"lost");
        let built = t0.data_plane().frames_built;
        std::thread::sleep(Duration::from_millis(2));
        t0.tick();
        assert!(t0.data_plane().retransmit_frames >= 1);
        assert_eq!(
            t0.data_plane().frames_built,
            built,
            "retransmit allocates nothing"
        );
    }

    #[test]
    fn duplicate_frames_discarded_below_app_layer() {
        let chaos = ChaosConfig::seeded(7).with_duplicate(1.0);
        let (_net, t0, t1, _ep0, ep1) = pair(NetConfig::direct().with_chaos(chaos));
        send_blob(&t0, 1, b"once");
        let got = drain(&t1, &ep1);
        assert_eq!(got.len(), 1, "exactly one delivery despite duplication");
        assert_eq!(t1.dup_discarded(), 1);
    }

    #[test]
    fn corruption_detected_and_recovered_via_nack() {
        // Corrupt every frame: nothing corrupt may reach the app
        // layer, and every mangled frame must be detected.
        let chaos = ChaosConfig::seeded(3).with_corrupt(1.0);
        let (_net, t0, t1, _ep0, ep1) = pair(NetConfig::direct().with_chaos(chaos));
        send_blob(&t0, 1, b"garbled");
        let got = drain(&t1, &ep1);
        assert!(got.is_empty());
        assert!(t1.corrupt_detected() >= 1);
    }

    #[test]
    fn segmented_frame_corruption_detected_in_either_segment() {
        // With 100% corruption, chaos flips a bit somewhere in the
        // two-segment frame; the concat CRC must catch it wherever it
        // lands. Large body makes body-segment hits overwhelmingly
        // likely; several sends cover both segments across seeds.
        for seed in 0..8 {
            let chaos = ChaosConfig::seeded(seed).with_corrupt(1.0);
            let (_net, t0, t1, _ep0, ep1) = pair(NetConfig::direct().with_chaos(chaos));
            send_blob(&t0, 1, &vec![0x5A; 256]);
            assert!(
                drain(&t1, &ep1).is_empty(),
                "corrupt segmented frame must not deliver (seed {seed})"
            );
            assert!(t1.corrupt_detected() >= 1);
        }
    }

    #[test]
    fn timeout_retransmits_until_acked() {
        let chaos = ChaosConfig::seeded(11).with_drop(1.0);
        let (net, t0, t1, ep0, ep1) = pair(NetConfig::direct().with_chaos(chaos));
        send_blob(&t0, 1, b"lost");
        assert!(drain(&t1, &ep1).is_empty(), "chaos drops everything");
        std::thread::sleep(Duration::from_millis(2));
        t0.tick();
        assert!(net.stats().retransmits() >= 1);
        // Retransmissions are dropped too; after the budget the peer
        // is written off instead of hanging forever.
        for _ in 0..20 {
            std::thread::sleep(Duration::from_millis(5));
            t0.tick();
        }
        assert!(t0.peer_unreachable(1));
        drop((net, t1, ep0, ep1));
    }

    #[test]
    fn contact_from_peer_clears_unreachable_verdict() {
        let (_net, t0, t1, ep0, _ep1) = pair(NetConfig::direct());
        t0.peers[1].unreachable.store(true, Ordering::Release);
        send_blob(&t1, 0, b"hello");
        let got = drain(&t0, &ep0);
        assert_eq!(got.len(), 1);
        assert!(!t0.peer_unreachable(1));
    }

    #[test]
    fn respawned_receiver_skips_acknowledged_prefix() {
        let (net, t0, _t1, _ep0, ep1) = pair(NetConfig::direct());
        // Three frames delivered and acked to the original receiver.
        let t1 = Transport::new(1, 2, net.clone(), cfg());
        send_blob(&t0, 1, b"a");
        send_blob(&t0, 1, b"b");
        let _ = drain(&t1, &ep1);
        // t0 hasn't ingested the acks: simulate receiver death first.
        net.kill(1);
        let ep1b = net.respawn(1);
        let t1b = Transport::new(1, 2, net.clone(), cfg());
        // New data: seq 3 with hint 1 (nothing acked at t0 yet) — the
        // fresh receiver must accept it even though seqs 1–2 predate
        // it, then the retransmitted 1–2 are also accepted and
        // re-delivered (the app layer discards them as repetitive).
        send_blob(&t0, 1, b"c");
        std::thread::sleep(Duration::from_millis(2));
        t0.tick();
        let got = drain(&t1b, &ep1b);
        assert!(!got.is_empty());
    }

    #[test]
    fn fenced_incarnation_frames_rejected_and_zombie_notified() {
        let (_net, t0, t1, ep0, ep1) = pair(NetConfig::direct());
        // A membership view fences incarnation 1 of rank 0.
        assert_eq!(t1.apply_fence_floors(1, &[2, 1]), Some(vec![0]));
        assert_eq!(t1.fence_epoch(), 1);
        assert_eq!(t1.fence_floor(0), 2);
        // Stale application of an older view is a no-op.
        assert!(t1.apply_fence_floors(1, &[2, 1]).is_none());
        send_blob(&t0, 1, b"zombie");
        assert!(
            drain(&t1, &ep1).is_empty(),
            "fenced frame must not deliver"
        );
        assert_eq!(t1.fenced_rejected(), 1);
        // The zombie ingests the Fenced notice and learns it is dead.
        assert!(!t0.is_self_fenced());
        let _ = drain(&t0, &ep0);
        assert!(t0.is_self_fenced());
        // A fenced frame is not evidence of life.
        let mut heard = Vec::new();
        t1.take_heard(|r| heard.push(r));
        assert!(heard.is_empty());
        // The next incarnation (epoch 2) is above the floor: accepted.
        let net2 = t0.net.clone();
        let t0b = Transport::new(0, 2, net2, cfg());
        t0b.set_epoch(2);
        send_blob(&t0b, 1, b"reborn");
        let got = drain(&t1, &ep1);
        assert_eq!(got.len(), 1);
        t1.take_heard(|r| heard.push(r));
        assert_eq!(heard, vec![0]);
    }

    #[test]
    fn applying_view_that_fences_self_sets_flag() {
        let (_net, t0, _t1, _ep0, _ep1) = pair(NetConfig::direct());
        assert!(!t0.is_self_fenced());
        t0.apply_fence_floors(3, &[2, 1]);
        assert!(t0.is_self_fenced());
    }

    #[test]
    fn heartbeats_feed_liveness_and_stale_heartbeats_fence() {
        let (_net, t0, t1, ep0, ep1) = pair(NetConfig::direct());
        t0.send_heartbeat(1);
        let _ = drain(&t1, &ep1);
        let mut heard = Vec::new();
        t1.take_heard(|r| heard.push(r));
        assert_eq!(heard, vec![0]);
        // Fence rank 0's incarnation 1: its beacons now draw a notice.
        t1.apply_fence_floors(1, &[2, 1]);
        t0.send_heartbeat(1);
        let _ = drain(&t1, &ep1);
        heard.clear();
        t1.take_heard(|r| heard.push(r));
        assert!(heard.is_empty());
        let _ = drain(&t0, &ep0);
        assert!(t0.is_self_fenced());
        // Once fenced, the zombie goes silent.
        t0.send_heartbeat(1);
        assert!(ep1.try_recv().is_err(), "fenced sender must not beacon");
    }

    #[test]
    fn suspicion_mode_keeps_retransmitting_and_queues_suspect() {
        let chaos = ChaosConfig::seeded(11).with_drop(1.0);
        let (net, t0, _t1, _ep0, _ep1) = pair(NetConfig::direct().with_chaos(chaos));
        t0.set_suspicion_mode(true);
        send_blob(&t0, 1, b"lost");
        for _ in 0..20 {
            std::thread::sleep(Duration::from_millis(5));
            t0.tick();
        }
        // The budget is long gone, but the verdict is a suspicion, not
        // a write-off: the frame stays buffered and retransmissions
        // continue.
        assert!(!t0.peer_unreachable(1));
        assert!(unacked_len(&t0, 1) > 0);
        assert_eq!(t0.take_pending_suspects(), vec![1]);
        // Reported once, not every tick.
        assert!(t0.take_pending_suspects().is_empty());
        let before = net.stats().retransmits();
        std::thread::sleep(Duration::from_millis(5));
        t0.tick();
        assert!(net.stats().retransmits() > before, "still retransmitting");
    }

    #[test]
    fn respawned_sender_epoch_resets_receiver_state() {
        let (net, t0, t1, _ep0, ep1) = pair(NetConfig::direct());
        send_blob(&t0, 1, b"old-1");
        send_blob(&t0, 1, b"old-2");
        assert_eq!(drain(&t1, &ep1).len(), 2);
        // Sender dies and respawns: a fresh transport with epoch 2.
        let t0b = Transport::new(0, 2, net.clone(), cfg());
        t0b.set_epoch(2);
        send_blob(&t0b, 1, b"new-1");
        let got = drain(&t1, &ep1);
        assert_eq!(
            got.len(),
            1,
            "seq 1 of epoch 2 must not look like a duplicate"
        );
        assert_eq!(&got[0][..], b"new-1");
        // And stale frames from epoch 1 are now ignored.
        send_blob(&t0, 1, b"stale");
        assert!(drain(&t1, &ep1).is_empty());
    }

    #[test]
    fn app_frame_classifier_peeks_inner_discriminant() {
        use crate::message::{AppWire, CkptAdvanceWire, WireMsg};
        let (_net, t0, _t1, _ep0, ep1) = pair(NetConfig::direct());
        // A >127-byte piggyback forces a multi-byte inner length
        // varint, exercising the classifier's varint skip.
        let app = WireMsg::App(AppWire {
            tag: 7,
            send_index: 1,
            piggyback: Bytes::from(vec![0xAA; 200]),
            needs_ack: false,
            data: Bytes::from_static(b"x"),
        });
        let adv = WireMsg::CkptAdvance(CkptAdvanceWire {
            delivered_from_you: 3,
            total_delivered: 9,
        });
        for msg in [&app, &adv] {
            send_blob(&t0, 1, &encode_to_vec(msg));
        }
        t0.send_heartbeat(1);
        // Classify whole frames, the way the explorer sees them via
        // `SimNet::held_head` — `send_encoded` splits header and inner
        // message across the envelope's two segments.
        let mut frames = Vec::new();
        while let Ok(env) = ep1.try_recv() {
            frames.push([&env.payload[..], &env.body[..]].concat());
        }
        assert_eq!(frames.len(), 3);
        // App send: data frame and app frame.
        assert!(payload_is_data_frame(&frames[0]));
        assert!(payload_is_app_frame(&frames[0]));
        // Checkpoint advance: rides the sequenced stream but is
        // protocol traffic, not an application send.
        assert!(payload_is_data_frame(&frames[1]));
        assert!(!payload_is_app_frame(&frames[1]));
        // Heartbeat: pure transport control, neither.
        assert!(!payload_is_data_frame(&frames[2]));
        assert!(!payload_is_app_frame(&frames[2]));
    }

    // The membership-epoch safety property. Model the real lifecycle:
    // incarnation 1 talks for a while, the arbiter declares it dead
    // (one membership epoch bump), and from that point incarnation 2's
    // traffic races both the zombie's leftovers and the certified
    // view's arrival at the receiver. For every such interleaving:
    //
    // * accepted incarnations never regress (once a receiver accepts
    //   the successor, the zombie is never accepted again), and
    // * within membership epoch 1 — after the view is applied — only
    //   the above-floor incarnation is accepted, so no two
    //   incarnations of rank 0 both land frames in that epoch, and
    // * a zombie that keeps talking past the view is told it is dead.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 64,
            .. proptest::prelude::ProptestConfig::default()
        })]

        #[test]
        fn prop_no_two_incarnations_accepted_within_one_membership_epoch(
            pre in 0usize..10,
            post_ops in proptest::collection::vec(proptest::prelude::any::<bool>(), 1..16),
            view_frac in 0.0f64..1.0,
        ) {
            use proptest::prelude::prop_assert;
            let (net, t0, t1, ep0, ep1) = pair(NetConfig::direct());
            let t0b = Transport::new(0, 2, net.clone(), cfg());
            t0b.set_epoch(2);
            // (incarnation, membership epoch at acceptance time).
            let mut accepted: Vec<(u8, u64)> = Vec::new();
            let mut rejected_zombie = false;
            // Phase 1: only incarnation 1 exists.
            for _ in 0..pre {
                send_blob(&t0, 1, b"\x01payload");
            }
            for inner in drain(&t1, &ep1) {
                accepted.push((inner[0], t1.fence_epoch()));
            }
            // Phase 2: the arbiter has declared incarnation 1 dead.
            // The successor's frames, the zombie's leftovers, and the
            // view all race to the receiver.
            let view_at = (view_frac * post_ops.len() as f64) as usize;
            for (i, &second_inc) in post_ops.iter().enumerate() {
                if i == view_at {
                    t1.apply_fence_floors(1, &[2, 1]);
                }
                if second_inc {
                    send_blob(&t0b, 1, b"\x02payload");
                } else {
                    send_blob(&t0, 1, b"\x01payload");
                }
                let before = t1.fenced_rejected();
                for inner in drain(&t1, &ep1) {
                    accepted.push((inner[0], t1.fence_epoch()));
                }
                if t1.fenced_rejected() > before {
                    rejected_zombie = true;
                }
            }
            // Monotone: once a newer incarnation is accepted, an older
            // one never is again.
            for w in accepted.windows(2) {
                prop_assert!(w[0].0 <= w[1].0,
                    "incarnation regressed: {accepted:?}");
            }
            // Membership epoch 1 accepts at most one incarnation, and
            // never the fenced one.
            let post_view: std::collections::BTreeSet<u8> = accepted
                .iter()
                .filter(|(_, e)| *e >= 1)
                .map(|(inc, _)| *inc)
                .collect();
            prop_assert!(post_view.len() <= 1,
                "membership epoch 1 accepted incarnations {post_view:?}: {accepted:?}");
            prop_assert!(!post_view.contains(&1),
                "fenced incarnation accepted after the view: {accepted:?}");
            // A zombie that talked after the view was told it is dead.
            let _ = drain(&t0, &ep0);
            if rejected_zombie {
                prop_assert!(t0.is_self_fenced());
            }
        }
    }
}
