//! The reliability layer between the kernel and the fabric.
//!
//! The simulated fabric is allowed to turn adversarial (see
//! `lclog_simnet::ChaosConfig`): it may drop, duplicate, bit-flip, or
//! stall envelopes. This module restores the abstraction the
//! rollback-recovery layer was written against — reliable, FIFO,
//! exactly-once channels between live incarnations — the same way a
//! real MPI stack rides on TCP or a reliable RDMA verb layer:
//!
//! * every outbound wire message is framed with a **CRC-32 trailer**
//!   and a per-destination **transport sequence number**;
//! * receivers discard duplicates below the application layer, detect
//!   corruption, and answer with cumulative ACKs (or a NACK on a CRC
//!   mismatch, short-circuiting the retransmission timeout);
//! * senders buffer unacknowledged frames and retransmit on a capped
//!   exponential backoff; a retransmit budget turns a permanently
//!   silent peer into [`crate::Fault::Unreachable`] instead of an
//!   infinite hang.
//!
//! Incarnations are disambiguated by an **epoch** (the rank's
//! incarnation number) carried in every data frame: a receiver that
//! sees a higher epoch resets its channel state, and stale frames or
//! acknowledgements from an earlier incarnation are ignored. The
//! `hint` field (the sender's lowest outstanding sequence number)
//! lets a freshly respawned receiver skip the prefix of the sequence
//! space that was acknowledged to — and therefore delivered by — the
//! previous incarnation; the rollback protocol above regenerates
//! whatever of that prefix still matters.

use crate::events::{EventKind, EventSink};
use bytes::Bytes;
use lclog_core::Rank;
use lclog_simnet::{Envelope, SimNet};
use lclog_wire::{crc32, decode_from_slice, encode_to_vec, impl_wire_enum, impl_wire_struct};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// A sequenced, CRC-protected data frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DataFrame {
    /// Sender incarnation number.
    pub epoch: u64,
    /// Per-(sender, destination) transport sequence number (1-based).
    pub seq: u64,
    /// The sender's lowest unacknowledged sequence number at transmit
    /// time: everything below it was acknowledged, so a state-less
    /// (respawned) receiver may treat it as its cumulative floor.
    pub hint: u64,
    /// The encoded [`crate::message::WireMsg`].
    pub inner: Bytes,
}

impl_wire_struct!(DataFrame { epoch, seq, hint, inner });

/// Cumulative acknowledgement state echoed back to a data sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AckFrame {
    /// The data sender's epoch this acknowledgement refers to.
    pub epoch: u64,
    /// Highest contiguously received sequence number.
    pub floor: u64,
}

impl_wire_struct!(AckFrame { epoch, floor });

/// Transport frame: what actually rides inside a fabric envelope,
/// prefixed by a 4-byte little-endian CRC-32 of the encoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Frame {
    /// Sequenced payload.
    Data(DataFrame),
    /// Cumulative acknowledgement (fire-and-forget, unsequenced).
    Ack(AckFrame),
    /// Corruption report: "resend everything above `floor`".
    Nack(AckFrame),
}

impl_wire_enum!(Frame {
    0 => Data(f),
    1 => Ack(f),
    2 => Nack(f)
});

/// Retransmission tuning (from `RunConfig`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TransportConfig {
    /// Initial retransmission timeout.
    pub timeout: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Consecutive no-progress retransmission rounds before the peer
    /// is declared unreachable.
    pub budget: u32,
}

/// Sender side of one channel.
struct TxChannel {
    next_seq: u64,
    /// Unacknowledged payloads by sequence number.
    unacked: BTreeMap<u64, Bytes>,
    /// Consecutive retransmission rounds without an ack advancing.
    attempts: u32,
    backoff: Duration,
    next_retry: Instant,
    /// Set when the retransmit budget was exhausted; cleared the
    /// moment any valid frame arrives from the peer.
    unreachable: bool,
}

/// Receiver side of one channel.
struct RxChannel {
    /// Highest sender epoch seen.
    epoch: u64,
    /// Highest contiguously received sequence number.
    floor: u64,
    /// Received sequence numbers above the floor (out-of-order or
    /// post-gap arrivals, kept only for duplicate detection — frames
    /// are handed up immediately; FIFO ordering is the app layer's
    /// concern and the fabric is per-pair FIFO anyway).
    above: BTreeSet<u64>,
}

/// Per-incarnation reliability endpoint. One per kernel (and one for
/// the event-logger service), channels sized to the whole fabric
/// (`n + 1` slots, so the logger participates).
pub(crate) struct Transport {
    me: Rank,
    /// This incarnation's epoch (= incarnation number).
    epoch: u64,
    net: SimNet,
    cfg: TransportConfig,
    tx: Vec<TxChannel>,
    rx: Vec<RxChannel>,
    /// Duplicates discarded below the app layer (observability).
    dup_discarded: u64,
    /// CRC mismatches detected (observability).
    corrupt_detected: u64,
    /// Timeline collector (disabled by default).
    events: EventSink,
}

impl Transport {
    pub(crate) fn new(me: Rank, slots: usize, net: SimNet, cfg: TransportConfig) -> Self {
        let now = Instant::now();
        Transport {
            me,
            epoch: 1,
            net,
            cfg,
            tx: (0..slots)
                .map(|_| TxChannel {
                    next_seq: 0,
                    unacked: BTreeMap::new(),
                    attempts: 0,
                    backoff: cfg.timeout,
                    next_retry: now,
                    unreachable: false,
                })
                .collect(),
            rx: (0..slots)
                .map(|_| RxChannel {
                    epoch: 0,
                    floor: 0,
                    above: BTreeSet::new(),
                })
                .collect(),
            dup_discarded: 0,
            corrupt_detected: 0,
            events: EventSink::disabled(),
        }
    }

    /// Attach a timeline collector (peer write-offs are timeline
    /// events).
    pub(crate) fn set_event_sink(&mut self, sink: EventSink) {
        self.events = sink;
    }

    /// Set this endpoint's epoch (the rank's incarnation number).
    /// Must be called before any traffic when the incarnation is not
    /// the first; receivers use it to reset stale channel state.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        debug_assert!(epoch >= 1, "epochs are 1-based");
        self.epoch = epoch;
    }

    /// True when `dst` exhausted its retransmit budget and has not
    /// been heard from since.
    pub(crate) fn peer_unreachable(&self, dst: Rank) -> bool {
        self.tx[dst].unreachable
    }

    /// Duplicate frames discarded below the application layer.
    pub(crate) fn dup_discarded(&self) -> u64 {
        self.dup_discarded
    }

    /// CRC mismatches detected on receive.
    pub(crate) fn corrupt_detected(&self) -> u64 {
        self.corrupt_detected
    }

    /// One line per peer with traffic: `dst tx(next/unacked/attempts)
    /// rx(epoch/floor/above)` — for the stall dump.
    pub(crate) fn channel_summary(&self) -> Vec<String> {
        (0..self.tx.len())
            .filter(|&p| self.tx[p].next_seq > 0 || self.rx[p].epoch > 0)
            .map(|p| {
                let tx = &self.tx[p];
                let rx = &self.rx[p];
                format!(
                    "{}: tx seq {} unacked {:?} attempts {}{} | rx e{} floor {} above {:?}",
                    p,
                    tx.next_seq,
                    tx.unacked.keys().collect::<Vec<_>>(),
                    tx.attempts,
                    if tx.unreachable { " UNREACHABLE" } else { "" },
                    rx.epoch,
                    rx.floor,
                    rx.above,
                )
            })
            .collect()
    }

    fn transmit(&self, dst: Rank, frame: &Frame) {
        let body = encode_to_vec(frame);
        let mut payload = Vec::with_capacity(4 + body.len());
        payload.extend_from_slice(&crc32(&body).to_le_bytes());
        payload.extend_from_slice(&body);
        // Sends to dead ranks are dropped by the fabric — exactly the
        // paper's model; retransmission (and, above it, recovery
        // resends) cover the loss.
        let _ = self.net.send(self.me, dst, Bytes::from(payload));
    }

    /// Send one wire message reliably to `dst`.
    pub(crate) fn send(&mut self, dst: Rank, inner: Vec<u8>) {
        let inner = Bytes::from(inner);
        let now = Instant::now();
        let ch = &mut self.tx[dst];
        ch.next_seq += 1;
        let seq = ch.next_seq;
        if ch.unacked.is_empty() {
            // Fresh outstanding window: restart the retry clock (and
            // give a previously written-off peer another budget).
            ch.attempts = 0;
            ch.backoff = self.cfg.timeout;
            ch.next_retry = now + ch.backoff;
        }
        ch.unacked.insert(seq, inner.clone());
        let hint = *ch.unacked.keys().next().expect("just inserted");
        let frame = Frame::Data(DataFrame {
            epoch: self.epoch,
            seq,
            hint,
            inner,
        });
        self.transmit(dst, &frame);
    }

    /// Process one raw envelope. Returns the inner payload to hand to
    /// the application layer (`None` for control frames, duplicates,
    /// and corrupt envelopes).
    pub(crate) fn ingest(&mut self, env: Envelope) -> Option<Bytes> {
        let src = env.src;
        if env.payload.len() < 4 {
            self.corrupt_detected += 1;
            self.send_nack(src);
            return None;
        }
        let (crc_bytes, body) = env.payload.split_at(4);
        let want = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != want {
            self.corrupt_detected += 1;
            self.send_nack(src);
            return None;
        }
        let frame: Frame = match decode_from_slice(body) {
            Ok(f) => f,
            Err(_) => {
                // A CRC-valid frame that fails to decode is a codec
                // bug, not line noise.
                debug_assert!(false, "CRC-valid frame from {src} failed to decode");
                return None;
            }
        };
        // Any intact frame proves the peer (in some incarnation) is
        // alive again.
        self.tx[src].unreachable = false;
        match frame {
            Frame::Data(d) => self.ingest_data(src, d),
            Frame::Ack(a) => {
                if a.epoch == self.epoch {
                    self.on_ack(src, a.floor);
                }
                None
            }
            Frame::Nack(a) => {
                if a.epoch == self.epoch {
                    self.retransmit_above(src, a.floor);
                }
                None
            }
        }
    }

    fn ingest_data(&mut self, src: Rank, d: DataFrame) -> Option<Bytes> {
        let rx = &mut self.rx[src];
        if d.epoch < rx.epoch {
            // Leftover from a dead incarnation; its in-flight traffic
            // is rolled back state, not data.
            return None;
        }
        if d.epoch > rx.epoch {
            rx.epoch = d.epoch;
            rx.floor = 0;
            rx.above.clear();
        }
        // Everything below `hint` was acknowledged to the sender — by
        // us or by our previous incarnation — so it can never be
        // outstanding again.
        if d.hint > 0 && d.hint - 1 > rx.floor {
            rx.floor = d.hint - 1;
            let kept: BTreeSet<u64> = rx.above.split_off(&(rx.floor + 1));
            rx.above = kept;
        }
        if d.seq <= rx.floor || rx.above.contains(&d.seq) {
            self.dup_discarded += 1;
            // Re-ack: the duplicate usually means our ack was lost.
            self.send_ack(src);
            return None;
        }
        rx.above.insert(d.seq);
        while rx.above.remove(&(rx.floor + 1)) {
            rx.floor += 1;
        }
        self.send_ack(src);
        Some(d.inner)
    }

    fn send_ack(&mut self, src: Rank) {
        let ack = AckFrame {
            epoch: self.rx[src].epoch,
            floor: self.rx[src].floor,
        };
        self.transmit(src, &Frame::Ack(ack));
    }

    fn send_nack(&mut self, src: Rank) {
        let nack = AckFrame {
            epoch: self.rx[src].epoch,
            floor: self.rx[src].floor,
        };
        self.transmit(src, &Frame::Nack(nack));
    }

    fn on_ack(&mut self, src: Rank, floor: u64) {
        let ch = &mut self.tx[src];
        let pending = ch.unacked.split_off(&(floor + 1));
        let advanced = ch.unacked.len();
        ch.unacked = pending;
        if advanced > 0 {
            // Progress: reset the give-up countdown.
            ch.attempts = 0;
            ch.backoff = self.cfg.timeout;
            ch.next_retry = Instant::now() + ch.backoff;
        }
    }

    /// NACK response: the peer saw a corrupt frame, so skip the
    /// timeout and resend everything it has not contiguously received.
    fn retransmit_above(&mut self, dst: Rank, floor: u64) {
        let hint = match self.tx[dst].unacked.keys().next() {
            Some(&s) => s,
            None => return,
        };
        let frames: Vec<(u64, Bytes)> = self.tx[dst]
            .unacked
            .range(floor + 1..)
            .map(|(&s, b)| (s, b.clone()))
            .collect();
        for (seq, inner) in frames {
            self.transmit(
                dst,
                &Frame::Data(DataFrame {
                    epoch: self.epoch,
                    seq,
                    hint,
                    inner,
                }),
            );
            self.net.stats().record_retransmit();
        }
    }

    /// Drive timeouts: retransmit overdue frames with exponential
    /// backoff, and write off peers whose budget is exhausted.
    pub(crate) fn tick(&mut self) {
        let now = Instant::now();
        for dst in 0..self.tx.len() {
            {
                let ch = &mut self.tx[dst];
                if ch.unacked.is_empty() || now < ch.next_retry {
                    continue;
                }
                ch.attempts += 1;
                if ch.attempts > self.cfg.budget {
                    self.events.emit(
                        self.me,
                        EventKind::PeerWrittenOff {
                            peer: dst,
                            attempts: ch.attempts,
                        },
                    );
                    // The peer has been silent across the whole budget:
                    // stop retrying so callers can surface
                    // `Fault::Unreachable` instead of hanging. Recovery
                    // regenerates anything that still matters if the
                    // peer ever comes back.
                    ch.unreachable = true;
                    ch.unacked.clear();
                    continue;
                }
                ch.backoff = (ch.backoff * 2).min(self.cfg.cap);
                ch.next_retry = now + ch.backoff;
            }
            let hint = *self.tx[dst].unacked.keys().next().expect("non-empty");
            let frames: Vec<(u64, Bytes)> = self.tx[dst]
                .unacked
                .iter()
                .map(|(&s, b)| (s, b.clone()))
                .collect();
            for (seq, inner) in frames {
                self.transmit(
                    dst,
                    &Frame::Data(DataFrame {
                        epoch: self.epoch,
                        seq,
                        hint,
                        inner,
                    }),
                );
                self.net.stats().record_retransmit();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_simnet::{ChaosConfig, NetConfig};

    fn cfg() -> TransportConfig {
        TransportConfig {
            timeout: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            budget: 5,
        }
    }

    fn pair(net_cfg: NetConfig) -> (SimNet, Transport, Transport, lclog_simnet::Endpoint, lclog_simnet::Endpoint) {
        let net = SimNet::new(2, net_cfg);
        let ep0 = net.attach(0);
        let ep1 = net.attach(1);
        let t0 = Transport::new(0, 2, net.clone(), cfg());
        let t1 = Transport::new(1, 2, net.clone(), cfg());
        (net, t0, t1, ep0, ep1)
    }

    /// Drain `ep` into `t`, returning delivered payloads.
    fn drain(t: &mut Transport, ep: &lclog_simnet::Endpoint) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Ok(env) = ep.try_recv() {
            out.extend(t.ingest(env));
        }
        out
    }

    #[test]
    fn roundtrip_and_ack_clears_window() {
        let (_net, mut t0, mut t1, ep0, ep1) = pair(NetConfig::direct());
        t0.send(1, b"ping".to_vec());
        let got = drain(&mut t1, &ep1);
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0][..], b"ping");
        // t0 ingests the ack; window empties.
        assert!(drain(&mut t0, &ep0).is_empty());
        assert!(t0.tx[1].unacked.is_empty());
    }

    #[test]
    fn duplicate_frames_discarded_below_app_layer() {
        let chaos = ChaosConfig::seeded(7).with_duplicate(1.0);
        let (_net, mut t0, mut t1, _ep0, ep1) = pair(NetConfig::direct().with_chaos(chaos));
        t0.send(1, b"once".to_vec());
        let got = drain(&mut t1, &ep1);
        assert_eq!(got.len(), 1, "exactly one delivery despite duplication");
        assert_eq!(t1.dup_discarded(), 1);
    }

    #[test]
    fn corruption_detected_and_recovered_via_nack() {
        // Corrupt every frame: nothing corrupt may reach the app
        // layer, and every mangled frame must be detected.
        let chaos = ChaosConfig::seeded(3).with_corrupt(1.0);
        let (_net, mut t0, mut t1, _ep0, ep1) = pair(NetConfig::direct().with_chaos(chaos));
        t0.send(1, b"garbled".to_vec());
        let got = drain(&mut t1, &ep1);
        assert!(got.is_empty());
        assert!(t1.corrupt_detected() >= 1);
    }

    #[test]
    fn timeout_retransmits_until_acked() {
        let chaos = ChaosConfig::seeded(11).with_drop(1.0);
        let (net, mut t0, mut t1, ep0, ep1) = pair(NetConfig::direct().with_chaos(chaos));
        t0.send(1, b"lost".to_vec());
        assert!(drain(&mut t1, &ep1).is_empty(), "chaos drops everything");
        std::thread::sleep(Duration::from_millis(2));
        t0.tick();
        assert!(net.stats().retransmits() >= 1);
        // Retransmissions are dropped too; after the budget the peer
        // is written off instead of hanging forever.
        for _ in 0..20 {
            std::thread::sleep(Duration::from_millis(5));
            t0.tick();
        }
        assert!(t0.peer_unreachable(1));
        drop((net, t1, ep0, ep1));
    }

    #[test]
    fn contact_from_peer_clears_unreachable_verdict() {
        let (_net, mut t0, mut t1, ep0, _ep1) = pair(NetConfig::direct());
        t0.tx[1].unreachable = true;
        t1.send(0, b"hello".to_vec());
        let got = drain(&mut t0, &ep0);
        assert_eq!(got.len(), 1);
        assert!(!t0.peer_unreachable(1));
    }

    #[test]
    fn respawned_receiver_skips_acknowledged_prefix() {
        let (net, mut t0, _t1, _ep0, ep1) = pair(NetConfig::direct());
        // Three frames delivered and acked to the original receiver.
        let mut t1 = Transport::new(1, 2, net.clone(), cfg());
        t0.send(1, b"a".to_vec());
        t0.send(1, b"b".to_vec());
        let _ = drain(&mut t1, &ep1);
        // t0 hasn't ingested the acks: simulate receiver death first.
        net.kill(1);
        let ep1b = net.respawn(1);
        let mut t1b = Transport::new(1, 2, net.clone(), cfg());
        // New data: seq 3 with hint 1 (nothing acked at t0 yet) — the
        // fresh receiver must accept it even though seqs 1–2 predate
        // it, then the retransmitted 1–2 are also accepted and
        // re-delivered (the app layer discards them as repetitive).
        t0.send(1, b"c".to_vec());
        std::thread::sleep(Duration::from_millis(2));
        t0.tick();
        let got = drain(&mut t1b, &ep1b);
        assert!(!got.is_empty());
    }

    #[test]
    fn respawned_sender_epoch_resets_receiver_state() {
        let (net, mut t0, mut t1, _ep0, ep1) = pair(NetConfig::direct());
        t0.send(1, b"old-1".to_vec());
        t0.send(1, b"old-2".to_vec());
        assert_eq!(drain(&mut t1, &ep1).len(), 2);
        // Sender dies and respawns: a fresh transport with epoch 2.
        let mut t0b = Transport::new(0, 2, net.clone(), cfg());
        t0b.set_epoch(2);
        t0b.send(1, b"new-1".to_vec());
        let got = drain(&mut t1, &ep1);
        assert_eq!(got.len(), 1, "seq 1 of epoch 2 must not look like a duplicate");
        assert_eq!(&got[0][..], b"new-1");
        // And stale frames from epoch 1 are now ignored.
        t0.send(1, b"stale".to_vec());
        assert!(drain(&mut t1, &ep1).is_empty());
    }
}
