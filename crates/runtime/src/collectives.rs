//! Collective operations built over point-to-point messaging, like the
//! NPB codes use on top of MPI.
//!
//! Every collective takes a `tag` that must be **unique per
//! invocation** on each rank (derive it from the step counter). With
//! unique tags the gather sides can post genuinely non-deterministic
//! `ANY_SOURCE` receives — the §II.C situation ("suppose every process
//! sends its result to `P_0` to calculate their sum; any delivery
//! order does not impact its correct outcome") — while remaining
//! safely matched. Folds are made order-insensitive by collecting
//! first and combining in rank order, so results (and recovery
//! digests) are bit-identical no matter which arrival order TDI's
//! relaxed replay produces.

use crate::fault::Fault;
use crate::message::RecvSpec;
use crate::process::RankCtx;
use lclog_core::Rank;
use lclog_wire::{Decode, Encode};

/// Synchronize all ranks. Linear algorithm: everyone reports to rank
/// 0 (`ANY_SOURCE` gather), rank 0 releases everyone.
pub fn barrier(ctx: &mut RankCtx<'_>, tag: u32) -> Result<(), Fault> {
    let n = ctx.n();
    if n == 1 {
        return Ok(());
    }
    if ctx.rank() == 0 {
        for _ in 1..n {
            ctx.recv(RecvSpec::any_source(tag))?;
        }
        for dst in 1..n {
            ctx.send(dst, tag, &[])?;
        }
    } else {
        ctx.send(0, tag, &[])?;
        ctx.recv(RecvSpec::from(0, tag))?;
    }
    Ok(())
}

/// Broadcast `value` from `root` to every rank; returns the value
/// everywhere.
pub fn broadcast<T: Encode + Decode + Clone>(
    ctx: &mut RankCtx<'_>,
    root: Rank,
    tag: u32,
    value: Option<T>,
) -> Result<T, Fault> {
    if ctx.rank() == root {
        let v = value.expect("root must supply the broadcast value");
        for dst in 0..ctx.n() {
            if dst != root {
                ctx.send_value(dst, tag, &v)?;
            }
        }
        Ok(v)
    } else {
        let (_, v) = ctx.recv_value::<T>(RecvSpec::from(root, tag))?;
        Ok(v)
    }
}

/// Reduce values to `root` with a fold applied in **rank order**
/// (collect-then-combine keeps floating-point results identical across
/// arrival orders). Returns `Some(result)` at the root, `None`
/// elsewhere.
pub fn reduce<T, F>(
    ctx: &mut RankCtx<'_>,
    root: Rank,
    tag: u32,
    value: T,
    mut fold: F,
) -> Result<Option<T>, Fault>
where
    T: Encode + Decode + Clone,
    F: FnMut(T, T) -> T,
{
    let n = ctx.n();
    if ctx.rank() != root {
        ctx.send_value(root, tag, &value)?;
        return Ok(None);
    }
    let mut contributions: Vec<Option<T>> = (0..n).map(|_| None).collect();
    contributions[root] = Some(value);
    for _ in 0..n - 1 {
        // Non-deterministic delivery: take whichever rank's
        // contribution becomes deliverable first.
        let (src, v) = ctx.recv_value::<T>(RecvSpec::any_source(tag))?;
        debug_assert!(contributions[src].is_none(), "duplicate contribution");
        contributions[src] = Some(v);
    }
    let mut iter = contributions.into_iter().map(|c| c.expect("all ranks contributed"));
    let first = iter.next().expect("n >= 1");
    Ok(Some(iter.fold(first, &mut fold)))
}

/// Sum-reduce `f64` values to `root`.
pub fn reduce_sum_f64(
    ctx: &mut RankCtx<'_>,
    root: Rank,
    tag: u32,
    value: f64,
) -> Result<Option<f64>, Fault> {
    reduce(ctx, root, tag, value, |a, b| a + b)
}

/// All-ranks sum: reduce to rank 0, then broadcast. Uses `tag` and
/// `tag + 1`.
pub fn allreduce_sum_f64(ctx: &mut RankCtx<'_>, tag: u32, value: f64) -> Result<f64, Fault> {
    let total = reduce_sum_f64(ctx, 0, tag, value)?;
    broadcast(ctx, 0, tag + 1, total)
}

/// Gather one value per rank at `root` (in rank order). Returns
/// `Some(values)` at the root, `None` elsewhere.
pub fn gather<T: Encode + Decode + Clone>(
    ctx: &mut RankCtx<'_>,
    root: Rank,
    tag: u32,
    value: T,
) -> Result<Option<Vec<T>>, Fault> {
    let n = ctx.n();
    if ctx.rank() != root {
        ctx.send_value(root, tag, &value)?;
        return Ok(None);
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    slots[root] = Some(value);
    for _ in 0..n - 1 {
        let (src, v) = ctx.recv_value::<T>(RecvSpec::any_source(tag))?;
        slots[src] = Some(v);
    }
    Ok(Some(
        slots.into_iter().map(|s| s.expect("all ranks sent")).collect(),
    ))
}
