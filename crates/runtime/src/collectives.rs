//! Collective operations built over point-to-point messaging, like the
//! NPB codes use on top of MPI.
//!
//! Every collective takes a `tag` that must be **unique per
//! invocation** on each rank (derive it from the step counter). With
//! unique tags the gather sides can post genuinely non-deterministic
//! `ANY_SOURCE` receives — the §II.C situation ("suppose every process
//! sends its result to `P_0` to calculate their sum; any delivery
//! order does not impact its correct outcome") — while remaining
//! safely matched. Folds are made order-insensitive by collecting
//! first and combining in rank order, so results (and recovery
//! digests) are bit-identical no matter which arrival order TDI's
//! relaxed replay produces.

use crate::fault::Fault;
use crate::message::RecvSpec;
use crate::process::RankCtx;
use lclog_core::Rank;
use lclog_wire::{Decode, Encode};

/// Synchronize all ranks. Linear algorithm: everyone reports to rank
/// 0 (`ANY_SOURCE` gather), rank 0 releases everyone.
pub fn barrier(ctx: &mut RankCtx<'_>, tag: u32) -> Result<(), Fault> {
    let n = ctx.n();
    if n == 1 {
        return Ok(());
    }
    if ctx.rank() == 0 {
        for _ in 1..n {
            ctx.recv(RecvSpec::any_source(tag))?;
        }
        for dst in 1..n {
            ctx.send(dst, tag, &[])?;
        }
    } else {
        ctx.send(0, tag, &[])?;
        ctx.recv(RecvSpec::from(0, tag))?;
    }
    Ok(())
}

/// Broadcast `value` from `root` to every rank; returns the value
/// everywhere.
pub fn broadcast<T: Encode + Decode + Clone>(
    ctx: &mut RankCtx<'_>,
    root: Rank,
    tag: u32,
    value: Option<T>,
) -> Result<T, Fault> {
    if ctx.rank() == root {
        // A missing root value is an application-level contract
        // violation, but aborting the process would take every healthy
        // rank down with it — surface a fault on this rank only.
        let Some(v) = value else {
            return Err(Fault::Collective("root supplied no broadcast value"));
        };
        for dst in 0..ctx.n() {
            if dst != root {
                ctx.send_value(dst, tag, &v)?;
            }
        }
        Ok(v)
    } else {
        let (_, v) = ctx.recv_value::<T>(RecvSpec::from(root, tag))?;
        Ok(v)
    }
}

/// Reduce values to `root` with a fold applied in **rank order**
/// (collect-then-combine keeps floating-point results identical across
/// arrival orders). Returns `Some(result)` at the root, `None`
/// elsewhere.
pub fn reduce<T, F>(
    ctx: &mut RankCtx<'_>,
    root: Rank,
    tag: u32,
    value: T,
    mut fold: F,
) -> Result<Option<T>, Fault>
where
    T: Encode + Decode + Clone,
    F: FnMut(T, T) -> T,
{
    let n = ctx.n();
    if ctx.rank() != root {
        ctx.send_value(root, tag, &value)?;
        return Ok(None);
    }
    let mut contributions: Vec<Option<T>> = (0..n).map(|_| None).collect();
    contributions[root] = Some(value);
    let mut filled = 1;
    while filled < n {
        // Non-deterministic delivery: take whichever rank's
        // contribution becomes deliverable first. A dead contributor
        // surfaces here as a `Fault` from `recv_value` (unreachable /
        // detector-declared), which `?` propagates so the survivor
        // takes the normal recovery path instead of panicking.
        let (src, v) = ctx.recv_value::<T>(RecvSpec::any_source(tag))?;
        if contributions[src].is_some() {
            // A duplicate slipped past suppression (e.g. a re-executed
            // sender reusing this collective's tag). Folding it would
            // silently corrupt the result; fault this rank instead.
            return Err(Fault::Collective("duplicate contribution in reduce"));
        }
        contributions[src] = Some(v);
        filled += 1;
    }
    // `filled == n` and duplicates were rejected, so every slot is
    // occupied; fold in rank order for bit-identical results.
    let mut iter = contributions.into_iter().flatten();
    let first = iter.next().ok_or(Fault::Collective("empty reduce"))?;
    Ok(Some(iter.fold(first, &mut fold)))
}

/// Sum-reduce `f64` values to `root`.
pub fn reduce_sum_f64(
    ctx: &mut RankCtx<'_>,
    root: Rank,
    tag: u32,
    value: f64,
) -> Result<Option<f64>, Fault> {
    reduce(ctx, root, tag, value, |a, b| a + b)
}

/// All-ranks sum: reduce to rank 0, then broadcast. Uses `tag` and
/// `tag + 1`.
pub fn allreduce_sum_f64(ctx: &mut RankCtx<'_>, tag: u32, value: f64) -> Result<f64, Fault> {
    let total = reduce_sum_f64(ctx, 0, tag, value)?;
    broadcast(ctx, 0, tag + 1, total)
}

/// Gather one value per rank at `root` (in rank order). Returns
/// `Some(values)` at the root, `None` elsewhere.
pub fn gather<T: Encode + Decode + Clone>(
    ctx: &mut RankCtx<'_>,
    root: Rank,
    tag: u32,
    value: T,
) -> Result<Option<Vec<T>>, Fault> {
    let n = ctx.n();
    if ctx.rank() != root {
        ctx.send_value(root, tag, &value)?;
        return Ok(None);
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    slots[root] = Some(value);
    let mut filled = 1;
    while filled < n {
        let (src, v) = ctx.recv_value::<T>(RecvSpec::any_source(tag))?;
        if slots[src].is_some() {
            return Err(Fault::Collective("duplicate contribution in gather"));
        }
        slots[src] = Some(v);
        filled += 1;
    }
    // Every slot occupied (see `reduce`): collect in rank order.
    Ok(Some(slots.into_iter().flatten().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use crate::engine::Engine;
    use crate::kernel::Kernel;
    use lclog_core::ProtocolKind;
    use lclog_simnet::{NetConfig, SimNet};
    use lclog_stable::{CheckpointStore, MemStore};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// A real non-blocking engine per rank over a direct fabric — the
    /// smallest harness that can drive collectives outside a cluster.
    fn engines(n: usize) -> Vec<Engine> {
        let net = SimNet::new(n + 1, NetConfig::direct());
        let store = CheckpointStore::new(Arc::new(MemStore::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        (0..n)
            .map(|r| {
                let kernel = Kernel::new(
                    r,
                    n,
                    RunConfig::new(ProtocolKind::Tdi),
                    net.clone(),
                    store.clone(),
                );
                Engine::new(kernel, net.attach(r), Arc::clone(&shutdown))
            })
            .collect()
    }

    // Regression: `broadcast` with a root that supplies no value used
    // to hit `expect("root must supply...")` and abort the process.
    #[test]
    fn broadcast_root_without_value_faults_instead_of_panicking() {
        let engines = engines(1);
        let mut ctx = RankCtx::new(&engines[0], 0);
        let err = broadcast::<u64>(&mut ctx, 0, 7, None).unwrap_err();
        assert!(matches!(err, Fault::Collective(_)), "got {err}");
    }

    // Regression: a double contribution (same tag, same sender, fresh
    // send_index — so receiver dedup rightly passes both) used to leave
    // a `None` slot behind and abort in `expect("contribution recorded")`.
    // It must now surface as a single-rank `Fault::Collective`.
    #[test]
    fn duplicate_contribution_faults_reduce_root() {
        let engines = engines(3);
        let mut c1 = RankCtx::new(&engines[1], 0);
        c1.send_value(0, 9, &1.0f64).unwrap();
        c1.send_value(0, 9, &2.0f64).unwrap(); // illegal second contribution
        let mut c0 = RankCtx::new(&engines[0], 0);
        let err = reduce(&mut c0, 0, 9, 0.5f64, |a, b| a + b).unwrap_err();
        assert!(
            matches!(err, Fault::Collective(msg) if msg.contains("reduce")),
            "got {err}"
        );
    }

    #[test]
    fn duplicate_contribution_faults_gather_root() {
        let engines = engines(3);
        let mut c2 = RankCtx::new(&engines[2], 0);
        c2.send_value(0, 11, &7u64).unwrap();
        c2.send_value(0, 11, &8u64).unwrap();
        let mut c0 = RankCtx::new(&engines[0], 0);
        let err = gather(&mut c0, 0, 11, 1u64).unwrap_err();
        assert!(
            matches!(err, Fault::Collective(msg) if msg.contains("gather")),
            "got {err}"
        );
    }
}
