//! Backoff schedules shared by the runtime's polling loops and the
//! replicator's retry paths.
//!
//! Two flavours live here:
//!
//! * [`Backoff`] — a deterministic doubling schedule for *polling*:
//!   the engines and the event-logger service poll their endpoints
//!   tightly while traffic flows and cheaply while idle.
//! * [`RetryBackoff`] — capped exponential backoff with **full
//!   jitter** for *retrying failed operations* against a shared
//!   resource (the remote store): attempt `k` waits a uniformly
//!   random duration in `[0, min(cap, initial·2^k)]`, which
//!   de-synchronizes competing retriers far better than equal or
//!   half jitter.
//!
//! Both are **clock-free**: they never read wall time or global
//! entropy — `RetryBackoff`'s jitter is a pure function of its seed
//! and attempt counter. A schedule therefore replays identically
//! under `SimClock`-driven deterministic exploration (`crates/
//! explore`), where sampling a real clock would fork the schedule
//! space.

use std::time::Duration;

/// Exponential poll-interval schedule: `initial, 2·initial, …, cap`.
#[derive(Debug, Clone)]
pub struct Backoff {
    initial: Duration,
    cap: Duration,
    current: Duration,
}

impl Backoff {
    /// A schedule from `initial` up to `cap` (clamped to `initial`).
    pub fn new(initial: Duration, cap: Duration) -> Self {
        let cap = cap.max(initial);
        Backoff {
            initial,
            cap,
            current: initial,
        }
    }

    /// The next wait, doubling the one after it (up to the cap).
    pub fn next_wait(&mut self) -> Duration {
        let wait = self.current;
        self.current = (self.current * 2).min(self.cap);
        wait
    }

    /// Progress happened: start the schedule over.
    pub fn reset(&mut self) {
        self.current = self.initial;
    }
}

/// Capped exponential retry backoff with seeded full jitter.
///
/// The ceiling doubles per attempt from `initial` up to `cap`; each
/// wait is drawn uniformly from `[0, ceiling]` by hashing
/// `(seed, attempt)` — no RNG state, no clock reads, so two instances
/// with the same seed produce the *same* schedule and deterministic
/// harnesses stay deterministic.
#[derive(Debug, Clone)]
pub struct RetryBackoff {
    initial: Duration,
    cap: Duration,
    seed: u64,
    attempt: u32,
}

impl RetryBackoff {
    /// A schedule from `initial` up to `cap` (clamped to `initial`),
    /// jittered by `seed`.
    pub fn new(initial: Duration, cap: Duration, seed: u64) -> Self {
        RetryBackoff {
            initial,
            cap: cap.max(initial),
            seed,
            attempt: 0,
        }
    }

    /// Attempts drawn since construction or the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The exponential ceiling the next draw is bounded by.
    pub fn ceiling(&self) -> Duration {
        let doubled = self
            .initial
            .saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX));
        doubled.min(self.cap)
    }

    /// Draw the next wait: uniform in `[0, ceiling]`, then advance
    /// the attempt counter.
    pub fn next_wait(&mut self) -> Duration {
        let ceiling = self.ceiling();
        let unit = splitmix(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.attempt as u64),
        ) >> 11;
        let frac = unit as f64 / (1u64 << 53) as f64;
        self.attempt = self.attempt.saturating_add(1);
        ceiling.mul_f64(frac)
    }

    /// The operation succeeded: start the schedule over.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_to_cap_and_resets() {
        let mut b = Backoff::new(Duration::from_micros(10), Duration::from_micros(50));
        assert_eq!(b.next_wait(), Duration::from_micros(10));
        assert_eq!(b.next_wait(), Duration::from_micros(20));
        assert_eq!(b.next_wait(), Duration::from_micros(40));
        assert_eq!(b.next_wait(), Duration::from_micros(50));
        assert_eq!(b.next_wait(), Duration::from_micros(50));
        b.reset();
        assert_eq!(b.next_wait(), Duration::from_micros(10));
    }

    #[test]
    fn cap_clamped_to_initial() {
        let mut b = Backoff::new(Duration::from_millis(5), Duration::from_millis(1));
        assert_eq!(b.next_wait(), Duration::from_millis(5));
        assert_eq!(b.next_wait(), Duration::from_millis(5));
    }

    #[test]
    fn jittered_draws_stay_within_exponential_ceiling_and_cap() {
        let initial = Duration::from_millis(2);
        let cap = Duration::from_millis(40);
        let mut b = RetryBackoff::new(initial, cap, 0xFEED);
        for k in 0..24u32 {
            let ceiling = b.ceiling();
            let expect = initial
                .saturating_mul(1u32.checked_shl(k).unwrap_or(u32::MAX))
                .min(cap);
            assert_eq!(ceiling, expect, "attempt {k}");
            let wait = b.next_wait();
            assert!(wait <= ceiling, "attempt {k}: {wait:?} > {ceiling:?}");
            assert!(wait <= cap);
        }
        // Deep into the schedule the ceiling saturates at the cap.
        assert_eq!(b.ceiling(), cap);
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
        let mk = |seed| {
            let mut b = RetryBackoff::new(
                Duration::from_millis(1),
                Duration::from_millis(64),
                seed,
            );
            (0..10).map(|_| b.next_wait()).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7), "same seed replays the same schedule");
        assert_ne!(mk(7), mk(8), "different seed, different schedule");
    }

    #[test]
    fn jitter_actually_spreads_draws() {
        // Full jitter must not collapse onto the ceiling: across many
        // capped draws both the low and high half of [0, cap] appear.
        let cap = Duration::from_millis(10);
        let mut b = RetryBackoff::new(cap, cap, 42);
        let draws: Vec<Duration> = (0..200).map(|_| b.next_wait()).collect();
        assert!(draws.iter().any(|d| *d < cap / 2));
        assert!(draws.iter().any(|d| *d > cap / 2));
    }

    #[test]
    fn retry_reset_restarts_the_ceiling() {
        let mut b = RetryBackoff::new(Duration::from_millis(1), Duration::from_millis(64), 5);
        for _ in 0..5 {
            b.next_wait();
        }
        assert_eq!(b.attempt(), 5);
        assert!(b.ceiling() > Duration::from_millis(1));
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.ceiling(), Duration::from_millis(1));
    }
}
