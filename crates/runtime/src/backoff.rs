//! Capped exponential backoff for the runtime's polling loops.
//!
//! The engines and the event-logger service used to poll their
//! endpoints on a fixed interval, which either burns CPU (interval
//! too short) or adds latency (too long). [`Backoff`] starts short and
//! doubles up to a cap; callers reset it whenever they make progress,
//! so an active channel is polled tightly and an idle one cheaply.

use std::time::Duration;

/// Exponential poll-interval schedule: `initial, 2·initial, …, cap`.
#[derive(Debug, Clone)]
pub(crate) struct Backoff {
    initial: Duration,
    cap: Duration,
    current: Duration,
}

impl Backoff {
    /// A schedule from `initial` up to `cap` (clamped to `initial`).
    pub(crate) fn new(initial: Duration, cap: Duration) -> Self {
        let cap = cap.max(initial);
        Backoff {
            initial,
            cap,
            current: initial,
        }
    }

    /// The next wait, doubling the one after it (up to the cap).
    pub(crate) fn next_wait(&mut self) -> Duration {
        let wait = self.current;
        self.current = (self.current * 2).min(self.cap);
        wait
    }

    /// Progress happened: start the schedule over.
    pub(crate) fn reset(&mut self) {
        self.current = self.initial;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_to_cap_and_resets() {
        let mut b = Backoff::new(Duration::from_micros(10), Duration::from_micros(50));
        assert_eq!(b.next_wait(), Duration::from_micros(10));
        assert_eq!(b.next_wait(), Duration::from_micros(20));
        assert_eq!(b.next_wait(), Duration::from_micros(40));
        assert_eq!(b.next_wait(), Duration::from_micros(50));
        assert_eq!(b.next_wait(), Duration::from_micros(50));
        b.reset();
        assert_eq!(b.next_wait(), Duration::from_micros(10));
    }

    #[test]
    fn cap_clamped_to_initial() {
        let mut b = Backoff::new(Duration::from_millis(5), Duration::from_millis(1));
        assert_eq!(b.next_wait(), Duration::from_millis(5));
        assert_eq!(b.next_wait(), Duration::from_millis(5));
    }
}
