//! Debug-build lock-order auditor for the kernel's layer locks.
//!
//! The kernel's three layer mutexes have a fixed acquisition order —
//! `recovery → tracking → delivery` (any subset, never a back edge;
//! see the `kernel` module docs). The order used to
//! be enforced by review only; this module makes every acquisition
//! check it at runtime in debug builds. Each layer lock is wrapped so
//! that acquiring it registers the layer in a thread-local held-set
//! and asserts that no *higher* layer is already held by this thread.
//! Release builds compile the whole thing to nothing.
//!
//! The auditor is what keeps the `try_deliver` bugfix honest: the
//! delivery hot path is required to hold **at most one** layer lock at
//! a time, and [`assert_none_held`] pins that down at its phase
//! boundaries.

/// Layer indices in acquisition order. Lower acquires before higher.
pub const RECOVERY: u8 = 0;
/// See [`RECOVERY`].
pub const TRACKING: u8 = 1;
/// See [`RECOVERY`].
pub const DELIVERY: u8 = 2;

#[cfg(debug_assertions)]
mod imp {
    use std::cell::Cell;

    thread_local! {
        /// Bitmask of layer locks held by this thread.
        static HELD: Cell<u8> = const { Cell::new(0) };
    }

    /// RAII token for one held layer lock; dropping it clears the bit.
    #[must_use]
    pub struct Held {
        bit: u8,
    }

    /// Register `layer` as about-to-be-held and verify the order:
    /// acquiring layer `k` is legal only while no layer ≥ `k` is held
    /// (re-entry on the same layer is also a violation — parking_lot
    /// mutexes are not reentrant and would deadlock). Called *before*
    /// blocking on the mutex, so a violation asserts instead of
    /// deadlocking.
    pub fn acquire(layer: u8, name: &'static str) -> Held {
        HELD.with(|h| {
            let held = h.get();
            assert!(
                held >> layer == 0,
                "lock-order violation: acquiring `{name}` (layer {layer}) \
                 while holding mask {held:#05b} (order is recovery → tracking → delivery)"
            );
            h.set(held | 1 << layer);
        });
        Held { bit: 1 << layer }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|h| h.set(h.get() & !self.bit));
        }
    }

    /// Assert this thread holds no layer lock at all — the
    /// `try_deliver` phase-boundary invariant.
    pub fn assert_none_held(ctx: &'static str) {
        HELD.with(|h| {
            let held = h.get();
            assert!(
                held == 0,
                "{ctx}: expected no layer lock held, but mask is {held:#05b}"
            );
        });
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    /// Zero-sized in release builds.
    #[must_use]
    pub struct Held;

    /// No-op in release builds (auditing is debug-only).
    #[inline(always)]
    pub fn acquire(_layer: u8, _name: &'static str) -> Held {
        Held
    }

    /// No-op in release builds (auditing is debug-only).
    #[inline(always)]
    pub fn assert_none_held(_ctx: &'static str) {}
}

pub use imp::{acquire, assert_none_held, Held};

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn forward_order_is_legal() {
        let _r = acquire(RECOVERY, "recovery");
        let _t = acquire(TRACKING, "tracking");
        let _d = acquire(DELIVERY, "delivery");
    }

    #[test]
    fn gapped_subsets_are_legal() {
        {
            let _r = acquire(RECOVERY, "recovery");
            let _d = acquire(DELIVERY, "delivery");
        }
        assert_none_held("after drop");
        let _t = acquire(TRACKING, "tracking");
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn back_edge_asserts() {
        let _d = acquire(DELIVERY, "delivery");
        let _t = acquire(TRACKING, "tracking");
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn reentry_asserts() {
        let _t1 = acquire(TRACKING, "tracking");
        let _t2 = acquire(TRACKING, "tracking");
    }

    #[test]
    fn drop_releases_for_this_thread_only() {
        {
            let _d = acquire(DELIVERY, "delivery");
        }
        // A fresh forward acquisition succeeds after release.
        let _r = acquire(RECOVERY, "recovery");
        std::thread::spawn(|| {
            // Other threads have their own held-set.
            let _d = acquire(DELIVERY, "delivery");
        })
        .join()
        .unwrap();
    }
}
