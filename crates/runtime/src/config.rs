use crate::clock::Clock;
use crate::detector::DetectorConfig;
use lclog_core::ProtocolKind;
use std::time::Duration;

/// Which Fig. 4 communication architecture a rank uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    /// Fig. 4a: the application thread talks to the fabric directly.
    /// Sends larger than `eager_threshold` bytes wait for the
    /// receiver's runtime to acknowledge ingestion (a rendezvous, like
    /// MPICH's synchronous path when buffering is exhausted), and
    /// incoming traffic — including recovery requests from peers — is
    /// serviced only when the application enters a runtime call.
    Blocking {
        /// Payloads at or below this size are sent eagerly (no
        /// acknowledgement wait). The paper observes big BT messages
        /// block longest; this knob reproduces that.
        eager_threshold: usize,
    },
    /// Fig. 4b: buffered queues plus a dedicated communication thread;
    /// application sends return immediately and incoming traffic is
    /// serviced continuously.
    NonBlocking,
}

impl CommMode {
    /// Blocking mode with a 4 KiB eager threshold.
    pub fn blocking_default() -> Self {
        CommMode::Blocking {
            eager_threshold: 4 * 1024,
        }
    }
}

/// How rank state machines are mapped onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// One OS thread per rank (plus a communication thread each in
    /// non-blocking mode) — the faithful Fig. 4 arrangement. Fine to
    /// n ≈ 64; thread stacks and context switches dominate beyond.
    Threads,
    /// Ranks run as cooperative tasks multiplexed onto a small sharded
    /// worker pool over the held-delivery fabric and a virtual clock —
    /// how n ∈ {256, 512, 1024} runs in-process. Requires a
    /// [`crate::TaskApp`] workload (a poll-style state machine instead
    /// of a blocking run loop).
    Tasks {
        /// Worker threads sharing the rank population (ranks are
        /// sharded `rank % workers`). Clamped to at least 1.
        workers: usize,
    },
}

/// When a rank takes a checkpoint (always between application steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Every `k` application steps (deterministic; used by tests).
    EverySteps(u64),
    /// Whenever at least this much wall time elapsed since the last
    /// checkpoint (the paper's 180 s interval, scaled down).
    EveryElapsed(Duration),
    /// Only the implicit initial state; never checkpoint again.
    Never,
}

/// Per-run configuration of the rollback-recovery runtime.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Dependency-tracking protocol (TDI / TAG / TEL).
    pub protocol: ProtocolKind,
    /// Fig. 4 communication architecture.
    pub comm: CommMode,
    /// Checkpoint cadence.
    pub checkpoint: CheckpointPolicy,
    /// How long a blocked operation sleeps between queue polls.
    pub poll_interval: Duration,
    /// Resend cadence for unacknowledged rendezvous sends and for
    /// `ROLLBACK` rebroadcasts to unresponsive peers.
    pub retry_interval: Duration,
    /// Initial transport retransmission timeout (reliability layer).
    pub retransmit_timeout: Duration,
    /// Ceiling of the transport's exponential retransmission backoff.
    pub retransmit_cap: Duration,
    /// Consecutive no-progress retransmission rounds before a peer is
    /// declared [`crate::Fault::Unreachable`].
    ///
    /// With a detector configured, budget exhaustion is instead fed to
    /// the detector as a suspicion input and retransmission continues.
    pub retransmit_budget: u32,
    /// When `Some`, failures are *detected* instead of announced: the
    /// φ-accrual detector runs at every rank, the membership arbiter
    /// runs on the service slot, stale incarnations are fenced, and
    /// budget exhaustion becomes a suspicion input rather than a
    /// unilateral [`crate::Fault::Unreachable`] verdict.
    pub detector: Option<DetectorConfig>,
    /// Time source for the kernel stack. [`Clock::Real`] (the default)
    /// reads the wall clock; [`Clock::Sim`] pins every kernel-path
    /// timestamp to a scheduler-advanced virtual clock, making runs
    /// reproducible from `(topology, workload, schedule)`.
    pub clock: Clock,
    /// Lag sender-log garbage collection by one checkpoint generation:
    /// a `CHECKPOINT_ADVANCE` releases only the entries the *previous*
    /// advance from that peer covered. Costs one extra generation of
    /// log memory; required when checkpoints are replicated to a
    /// remote store, because a node-loss restore may fall back one
    /// generation past a corrupted upload and then needs survivors to
    /// replay messages the newest generation had already covered.
    /// [`crate::Cluster`] switches this on automatically whenever a
    /// [`crate::RemoteConfig`] is attached.
    pub log_gc_lag: bool,
    /// Ranks as OS threads (default) or as scheduler tasks on a worker
    /// pool (large n).
    pub engine: EngineMode,
}

impl RunConfig {
    /// A sensible default for `protocol`: non-blocking engine,
    /// checkpoint every 64 steps.
    pub fn new(protocol: ProtocolKind) -> Self {
        RunConfig {
            protocol,
            comm: CommMode::NonBlocking,
            checkpoint: CheckpointPolicy::EverySteps(64),
            poll_interval: Duration::from_micros(200),
            retry_interval: Duration::from_millis(25),
            retransmit_timeout: Duration::from_millis(2),
            retransmit_cap: Duration::from_millis(50),
            retransmit_budget: 40,
            detector: None,
            clock: Clock::Real,
            log_gc_lag: false,
            engine: EngineMode::Threads,
        }
    }

    /// Builder-style comm mode override.
    pub fn with_comm(mut self, comm: CommMode) -> Self {
        self.comm = comm;
        self
    }

    /// Builder-style checkpoint policy override.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }

    /// Builder-style detector enablement: switch from announced to
    /// detected failures.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = Some(detector);
        self
    }

    /// Builder-style clock override (virtual time for deterministic
    /// simulation).
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Builder-style sender-log GC lag (see [`RunConfig::log_gc_lag`]).
    pub fn with_log_gc_lag(mut self, lag: bool) -> Self {
        self.log_gc_lag = lag;
        self
    }

    /// Builder-style engine mode override (ranks as tasks for large n).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides() {
        let cfg = RunConfig::new(ProtocolKind::Tdi)
            .with_comm(CommMode::blocking_default())
            .with_checkpoint(CheckpointPolicy::Never);
        assert_eq!(cfg.protocol, ProtocolKind::Tdi);
        assert!(matches!(cfg.comm, CommMode::Blocking { eager_threshold } if eager_threshold == 4096));
        assert_eq!(cfg.checkpoint, CheckpointPolicy::Never);
    }
}
