//! The rollback-recovery kernel: the state machine of the paper's
//! Algorithm 1, shared by both communication engines and by every
//! dependency-tracking protocol.
//!
//! One kernel instance exists per rank incarnation. It owns the
//! protocol object, the sender-based message log, the Algorithm 1
//! counter vectors, the receiving queue, and the checkpoint plumbing.
//! Engines feed it raw envelopes ([`Kernel::ingest`]) and pull
//! deliverable application messages ([`Kernel::try_deliver`]).

use crate::config::{CheckpointPolicy, RunConfig};
use crate::events::{EventKind, EventSink};
use crate::log::{LogEntry, SenderLog};
use crate::message::{
    AppMsg, AppWire, CkptAdvanceWire, RecvSpec, ResponseWire, RollbackWire, WireMsg,
};
use crate::recvq::{Pending, RecvQueue};
use crate::transport::{Transport, TransportConfig};
use bytes::Bytes;
use lclog_core::{
    make_protocol, CounterVector, DeliveryVerdict, LoggingProtocol, Rank, TrackingStats,
};
use lclog_simnet::{Envelope, SimNet};
use lclog_stable::CheckpointStore;
use lclog_wire::{encode_to_vec, impl_wire_struct};
use std::time::Instant;

/// Everything a checkpoint durably captures (Algorithm 1 line 33:
/// image, log, and the counter vectors).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointImage {
    /// Application step the image was taken after.
    pub step: u64,
    /// Serialized application state.
    pub app_state: Vec<u8>,
    /// Serialized protocol state (`depend_interval` for TDI, graph for
    /// TAG, determinant window for TEL).
    pub protocol: Vec<u8>,
    /// `last_send_index` vector.
    pub last_send: CounterVector,
    /// `last_deliver_index` vector.
    pub last_deliver: CounterVector,
    /// The sender-based message log.
    pub log: Vec<LogEntry>,
}

impl_wire_struct!(CheckpointImage {
    step,
    app_state,
    protocol,
    last_send,
    last_deliver,
    log
});

/// Incarnation-side recovery bookkeeping: who has answered our
/// `ROLLBACK`, and when we last (re)broadcast it.
#[derive(Debug)]
struct RecoveryProgress {
    responded: Vec<bool>,
    logger_synced: bool,
    last_broadcast: Instant,
    started: Instant,
}

/// Per-rank rollback-recovery state machine.
pub struct Kernel {
    me: Rank,
    n: usize,
    cfg: RunConfig,
    net: SimNet,
    protocol: Box<dyn LoggingProtocol>,
    last_send_index: CounterVector,
    last_deliver_index: CounterVector,
    last_ckpt_deliver_index: CounterVector,
    /// Suppression bound from `RESPONSE`s (Algorithm 1 line 53): do
    /// not re-send message `k <= rollback_last_send_index[j]` to `j`.
    rollback_last_send_index: CounterVector,
    /// `last_send_index` as restored from the checkpoint (zero on a
    /// first incarnation). Sends at or below this bound happened
    /// before the checkpoint, so re-execution will never regenerate
    /// them — if one was still sitting in the dead incarnation's
    /// retransmission window, only the checkpointed sender log can
    /// resupply it (see `handle_response`).
    restored_send_index: CounterVector,
    log: SenderLog,
    queue: RecvQueue,
    stats: TrackingStats,
    /// Highest acknowledged rendezvous send per destination.
    acked: CounterVector,
    ckpt_store: CheckpointStore,
    ckpt_version: u64,
    last_ckpt_at: Instant,
    steps_at_ckpt: u64,
    recovery: Option<RecoveryProgress>,
    rollback_epoch: u64,
    /// TEL event-logger service rank (slot `n`), when the protocol
    /// uses one.
    logger: Option<Rank>,
    /// Reliability layer: CRC framing, transport sequencing, duplicate
    /// discard, ack/retransmit. Every wire message crosses it.
    transport: Transport,
    /// Structured timeline collector (disabled by default).
    events: EventSink,
}

impl Kernel {
    /// Fresh kernel for `me` of `n` (initial incarnation state).
    pub fn new(me: Rank, n: usize, cfg: RunConfig, net: SimNet, ckpt_store: CheckpointStore) -> Self {
        let protocol = make_protocol(cfg.protocol, me, n);
        let logger = protocol.wants_event_logger().then(|| crate::logger_rank(n));
        let transport = Transport::new(
            me,
            net.n(),
            net.clone(),
            TransportConfig {
                timeout: cfg.retransmit_timeout,
                cap: cfg.retransmit_cap,
                budget: cfg.retransmit_budget,
            },
        );
        Kernel {
            me,
            n,
            cfg,
            net,
            protocol,
            last_send_index: CounterVector::zeroed(n),
            last_deliver_index: CounterVector::zeroed(n),
            last_ckpt_deliver_index: CounterVector::zeroed(n),
            rollback_last_send_index: CounterVector::zeroed(n),
            restored_send_index: CounterVector::zeroed(n),
            log: SenderLog::new(n),
            queue: RecvQueue::new(),
            stats: TrackingStats::default(),
            acked: CounterVector::zeroed(n),
            ckpt_store,
            ckpt_version: 0,
            last_ckpt_at: Instant::now(),
            steps_at_ckpt: 0,
            recovery: None,
            rollback_epoch: 0,
            logger,
            transport,
            events: EventSink::disabled(),
        }
    }

    /// Tell the reliability layer which incarnation this kernel is:
    /// receivers use the epoch to distinguish a respawned sender's
    /// fresh sequence space from stale duplicates. Must be called
    /// before any traffic when the incarnation is not the first.
    pub fn set_incarnation(&mut self, incarnation: u64) {
        self.transport.set_epoch(incarnation);
    }

    /// True when the reliability layer has written `dst` off: it
    /// stayed silent across the whole retransmit budget.
    pub fn peer_unreachable(&self, dst: Rank) -> bool {
        self.transport.peer_unreachable(dst)
    }

    /// Attach a timeline collector (see [`crate::events`]).
    pub fn set_event_sink(&mut self, sink: EventSink) {
        self.events = sink;
    }

    /// This rank.
    pub fn me(&self) -> Rank {
        self.me
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Runtime configuration.
    pub fn cfg(&self) -> &RunConfig {
        &self.cfg
    }

    /// A clone of the fabric handle (for the engine's crash path).
    pub fn net_handle(&self) -> SimNet {
        self.net.clone()
    }

    /// Tracking statistics snapshot.
    pub fn stats(&self) -> &TrackingStats {
        &self.stats
    }

    /// Current retained log size in bytes (benchmark reporting).
    pub fn log_bytes(&self) -> usize {
        self.log.bytes()
    }

    /// Number of retained log entries.
    pub fn log_entries(&self) -> usize {
        self.log.len()
    }

    /// Highest acknowledged rendezvous send for `dst`.
    pub fn acked(&self, dst: Rank) -> u64 {
        self.acked.get(dst)
    }

    /// True while this incarnation is still collecting `RESPONSE`s.
    pub fn is_recovering(&self) -> bool {
        self.recovery.is_some()
    }

    /// Protocol send gate (pessimistic logging holds sends while
    /// determinants are unstable).
    pub fn send_ready(&self) -> bool {
        self.protocol.send_ready()
    }

    fn send_wire(&mut self, dst: Rank, msg: &WireMsg) {
        // Every wire message crosses the reliability layer: CRC
        // framing, sequencing, and ack/retransmit mask the chaos
        // fabric's drops, duplicates, and corruptions. Sends to dead
        // ranks are retransmitted until the peer's next incarnation
        // answers (or the budget writes it off); recovery resends
        // cover anything lost with the old incarnation.
        self.transport.send(dst, encode_to_vec(msg));
    }

    // ---------------------------------------------------------------
    // Sending (Algorithm 1 lines 8–12)
    // ---------------------------------------------------------------

    /// Application-level send. Logs the message, piggybacks protocol
    /// state, and transmits unless suppressed as already-delivered
    /// (roll-forward duplicate suppression, line 10).
    ///
    /// Returns `(send_index, transmitted)`; when `transmitted` and
    /// `needs_ack`, the blocking engine waits for [`WireMsg::Ack`].
    pub fn app_send(&mut self, dst: Rank, tag: u32, data: Bytes, needs_ack: bool) -> (u64, bool) {
        let send_index = self.last_send_index.bump(dst);
        let t0 = Instant::now();
        let artifacts = self.protocol.on_send(dst, send_index);
        self.stats.track_send_ns += t0.elapsed().as_nanos() as u64;
        self.stats.sends += 1;
        self.stats.piggyback_ids += artifacts.id_count;
        self.stats.piggyback_bytes += artifacts.piggyback.len() as u64;
        let entry = LogEntry {
            dst: dst as u32,
            send_index,
            tag,
            piggyback: artifacts.piggyback.clone(),
            data: data.clone(),
        };
        self.log.insert(entry);
        let retained = self.log.bytes() as u64;
        if retained > self.stats.log_bytes_peak {
            self.stats.log_bytes_peak = retained;
        }
        let transmit = send_index > self.rollback_last_send_index.get(dst);
        if transmit {
            self.send_wire(
                dst,
                &WireMsg::App(AppWire {
                    tag,
                    send_index,
                    piggyback: artifacts.piggyback,
                    needs_ack,
                    data,
                }),
            );
        }
        (send_index, transmit)
    }

    /// Retransmit a logged message whose rendezvous ack has not
    /// arrived (receiver may have failed and respawned meanwhile).
    pub fn resend_unacked(&mut self, dst: Rank, send_index: u64) {
        let wire = self.log.entries_after(dst, send_index - 1).next().and_then(|e| {
            (e.send_index == send_index).then(|| {
                WireMsg::App(AppWire {
                    tag: e.tag,
                    send_index: e.send_index,
                    piggyback: e.piggyback.clone(),
                    needs_ack: true,
                    data: e.data.clone(),
                })
            })
        });
        match wire {
            Some(msg) => self.send_wire(dst, &msg),
            None => {
                // The entry was released by a CHECKPOINT_ADVANCE: the
                // receiver durably consumed it — an implicit ack.
                self.note_consumed(dst, send_index);
            }
        }
    }

    /// Record proof that `peer` has consumed our messages up to
    /// `upto` — implicit acknowledgement for any pending rendezvous.
    fn note_consumed(&mut self, peer: Rank, upto: u64) {
        if upto > self.acked.get(peer) {
            self.acked.set(peer, upto);
        }
    }

    // ---------------------------------------------------------------
    // Ingestion and delivery (lines 13–31)
    // ---------------------------------------------------------------

    /// Process one raw envelope from the fabric. The reliability layer
    /// strips the transport frame first: corrupt envelopes are
    /// NACK'ed, duplicates discarded, and control frames consumed
    /// without ever reaching the dispatch below.
    pub fn ingest(&mut self, env: Envelope) {
        let src = env.src;
        let Some(inner) = self.transport.ingest(env) else {
            return;
        };
        let msg: WireMsg = match lclog_wire::decode_from_slice(&inner) {
            Ok(m) => m,
            Err(_) => {
                // The frame passed its CRC, so this is a codec bug,
                // not line noise.
                debug_assert!(false, "undecodable wire message from {src}");
                return;
            }
        };
        match msg {
            WireMsg::App(wire) => self.ingest_app(src, wire),
            WireMsg::Ack(idx) => {
                if idx > self.acked.get(src) {
                    self.acked.set(src, idx);
                }
            }
            WireMsg::Rollback(w) => self.handle_rollback(src, w),
            WireMsg::Response(w) => self.handle_response(src, w),
            WireMsg::CkptAdvance(w) => {
                self.log.release(src, w.delivered_from_you);
                // Checkpointed delivery counts double as acks.
                self.note_consumed(src, w.delivered_from_you);
                self.protocol.on_peer_checkpoint(src, w.total_delivered);
            }
            WireMsg::LogAck(upto) => self.protocol.on_logger_ack(upto),
            WireMsg::LogQueryResp(dets) => {
                self.protocol.install_recovery_info(dets);
                if let Some(rec) = &mut self.recovery {
                    rec.logger_synced = true;
                }
                self.finish_recovery_if_complete();
            }
            WireMsg::LogDets(_) | WireMsg::LogQuery(_) => {
                debug_assert!(false, "logger-bound message reached rank {}", self.me);
            }
        }
    }

    fn ingest_app(&mut self, src: Rank, wire: AppWire) {
        // Repetitive-message identification (§III.C.3): the original
        // was already consumed, so discard — and acknowledge, because
        // the sender may be blocked on this retransmission.
        if wire.send_index <= self.last_deliver_index.get(src) {
            if wire.needs_ack {
                self.send_wire(src, &WireMsg::Ack(wire.send_index));
            }
            return;
        }
        // A copy is already queued (recovery resend/retransmission
        // crossing): drop silently; the queued copy's delivery will
        // acknowledge.
        if self.queue.contains(src, wire.send_index) {
            return;
        }
        // Rendezvous sends are acknowledged at *delivery*, not
        // ingestion: §IV.B's observation that the communication
        // subsystem cannot buffer a whole large message, so the sender
        // stays blocked until the receiver transits from computing (or
        // recovering) to receiving.
        self.queue.push(Pending { src, wire });
    }

    /// Deliver the first queued message matching `spec` whose
    /// per-sender FIFO predecessor has been delivered and whose
    /// protocol dependency gate opens (lines 15–31).
    pub fn try_deliver(&mut self, spec: RecvSpec) -> Option<AppMsg> {
        // PWD protocols must not deliver against an incomplete replay
        // script; hold everything until every survivor (and the event
        // logger) has answered our ROLLBACK. TDI has no such wait —
        // each message carries its own complete delivery constraint.
        if self.recovery.is_some() && self.protocol.needs_full_recovery_info() {
            return None;
        }
        let protocol = &self.protocol;
        let ldi = &self.last_deliver_index;
        let taken = self.queue.take_first_matching(spec, |src, idx, piggyback| {
            idx == ldi.get(src) + 1
                && matches!(
                    protocol.deliverable(src, idx, piggyback),
                    DeliveryVerdict::Deliver
                )
        })?;
        let src = taken.src;
        let wire = taken.wire;
        if wire.needs_ack {
            self.send_wire(src, &WireMsg::Ack(wire.send_index));
        }
        let t0 = Instant::now();
        self.protocol
            .on_deliver(src, wire.send_index, &wire.piggyback)
            .expect("delivery gate approved this message");
        self.stats.track_deliver_ns += t0.elapsed().as_nanos() as u64;
        self.stats.delivers += 1;
        let upto = self.last_deliver_index.bump(src);
        // Stale duplicates of already-delivered messages (recovery
        // resend crossings) would otherwise linger in the queue
        // forever.
        self.queue.drop_repetitive(src, upto);
        self.ship_determinants();
        Some(AppMsg {
            src,
            tag: wire.tag,
            data: wire.data,
        })
    }

    /// Forward freshly created determinants to the TEL event logger.
    fn ship_determinants(&mut self) {
        if let Some(logger) = self.logger {
            let dets = self.protocol.drain_determinants_for_logger();
            if !dets.is_empty() {
                self.send_wire(logger, &WireMsg::LogDets(dets));
            }
        }
    }

    // ---------------------------------------------------------------
    // Checkpointing (lines 32–39)
    // ---------------------------------------------------------------

    /// Should a checkpoint be taken now (between steps)?
    pub fn checkpoint_due(&self, step: u64) -> bool {
        match self.cfg.checkpoint {
            CheckpointPolicy::EverySteps(k) => k > 0 && step >= self.steps_at_ckpt + k,
            CheckpointPolicy::EveryElapsed(d) => self.last_ckpt_at.elapsed() >= d,
            CheckpointPolicy::Never => false,
        }
    }

    /// Take a checkpoint of `app_state` after `step`.
    pub fn do_checkpoint(&mut self, app_state: Vec<u8>, step: u64) {
        let image = CheckpointImage {
            step,
            app_state,
            protocol: self.protocol.checkpoint_bytes(),
            last_send: self.last_send_index.clone(),
            last_deliver: self.last_deliver_index.clone(),
            log: self.log.to_entries(),
        };
        self.ckpt_version += 1;
        let encoded = encode_to_vec(&image);
        self.events.emit(
            self.me,
            EventKind::Checkpoint {
                step,
                bytes: encoded.len(),
            },
        );
        self.ckpt_store.save(self.me, self.ckpt_version, &encoded);
        self.protocol.on_local_checkpoint();
        let total = self.protocol.delivered_total();
        for k in 0..self.n {
            if k == self.me {
                continue;
            }
            // The paper notifies only senders whose messages the
            // checkpoint newly covers; we notify everyone so TAG/TEL
            // peers can also prune determinant state (`total_delivered`
            // is the GC horizon). Log release is idempotent.
            self.send_wire(
                k,
                &WireMsg::CkptAdvance(CkptAdvanceWire {
                    delivered_from_you: self.last_deliver_index.get(k),
                    total_delivered: total,
                }),
            );
            self.last_ckpt_deliver_index
                .set(k, self.last_deliver_index.get(k));
        }
        self.last_ckpt_at = Instant::now();
        self.steps_at_ckpt = step;
    }

    // ---------------------------------------------------------------
    // Recovery (lines 40–53)
    // ---------------------------------------------------------------

    /// Restore state from a checkpoint image (incarnation side,
    /// lines 41–45). Returns `(step, app_state)` for the application
    /// loop. (Algorithm 1's lines 43–44 restore every vector from
    /// `checkpoint.depend_interval` — an obvious typo we correct.)
    pub fn restore(&mut self, image: CheckpointImage) -> (u64, Vec<u8>) {
        self.protocol
            .restore_from_checkpoint(&image.protocol)
            .expect("checkpoint protocol state decodes");
        self.last_send_index = image.last_send.clone();
        self.restored_send_index = image.last_send;
        self.last_deliver_index = image.last_deliver.clone();
        self.last_ckpt_deliver_index = image.last_deliver;
        self.log = SenderLog::from_entries(self.n, image.log);
        self.stats.log_bytes_peak = self.stats.log_bytes_peak.max(self.log.bytes() as u64);
        self.ckpt_version = self
            .ckpt_store
            .latest_version(self.me)
            .unwrap_or(self.ckpt_version);
        self.steps_at_ckpt = image.step;
        self.last_ckpt_at = Instant::now();
        (image.step, image.app_state)
    }

    /// Load this rank's latest checkpoint image, if any.
    pub fn load_checkpoint(&self) -> Option<CheckpointImage> {
        let (_, bytes) = self.ckpt_store.load_latest(self.me)?;
        Some(lclog_wire::decode_from_slice(&bytes).expect("checkpoint image decodes"))
    }

    /// Begin incarnation recovery: broadcast `ROLLBACK` (line 46) and,
    /// under TEL, query the event logger for stable determinants.
    pub fn begin_recovery(&mut self) {
        let mut responded = vec![false; self.n];
        responded[self.me] = true;
        self.recovery = Some(RecoveryProgress {
            responded,
            logger_synced: self.logger.is_none(),
            last_broadcast: Instant::now(),
            started: Instant::now(),
        });
        self.broadcast_rollback();
    }

    fn broadcast_rollback(&mut self) {
        self.rollback_epoch += 1;
        let wire = RollbackWire {
            last_deliver_index: self.last_deliver_index.as_slice().to_vec(),
            epoch: self.rollback_epoch,
        };
        let targets: Vec<Rank> = match &self.recovery {
            Some(rec) => (0..self.n).filter(|&k| !rec.responded[k]).collect(),
            None => return,
        };
        self.events.emit(
            self.me,
            EventKind::RollbackBroadcast {
                epoch: self.rollback_epoch,
            },
        );
        for k in targets {
            self.send_wire(k, &WireMsg::Rollback(wire.clone()));
        }
        if let Some(logger) = self.logger {
            if !self.recovery.as_ref().is_none_or(|r| r.logger_synced) {
                self.send_wire(logger, &WireMsg::LogQuery(self.me as u32));
            }
        }
        if let Some(rec) = &mut self.recovery {
            rec.last_broadcast = Instant::now();
        }
    }

    /// Survivor side of `ROLLBACK` (lines 47–51): answer with our
    /// delivery count and determinant knowledge, then resend logged
    /// messages the failed process lost.
    fn handle_rollback(&mut self, src: Rank, w: RollbackWire) {
        // The rollback vector is the *authoritative* post-restore
        // delivery state of src's new incarnation. Anything we
        // believed beyond it — an ack, or a RESPONSE-based duplicate
        // suppression bound obtained from the pre-crash incarnation
        // moments before it died (the crossing-recoveries race of
        // Fig. 2) — describes deliveries that have been rolled back
        // and must be forgotten, or we would suppress regenerated
        // messages the incarnation still needs.
        if let Some(&upto) = w.last_deliver_index.get(self.me) {
            self.acked.set(src, upto);
            self.rollback_last_send_index.set(src, upto);
        }
        self.send_wire(
            src,
            &WireMsg::Response(ResponseWire {
                delivered_from_you: self.last_deliver_index.get(src),
                dets: self.protocol.determinants_for(src),
                epoch: w.epoch,
            }),
        );
        let lost_after = w.last_deliver_index.get(self.me).copied().unwrap_or(0);
        let resends: Vec<WireMsg> = self
            .log
            .entries_after(src, lost_after)
            .map(|e| {
                WireMsg::App(AppWire {
                    tag: e.tag,
                    send_index: e.send_index,
                    piggyback: e.piggyback.clone(),
                    needs_ack: false,
                    data: e.data.clone(),
                })
            })
            .collect();
        if !resends.is_empty() {
            self.events.emit(
                self.me,
                EventKind::LogResent {
                    to: src,
                    count: resends.len(),
                },
            );
        }
        for msg in resends {
            self.send_wire(src, &msg);
        }
        // Anything we had queued from the pre-failure incarnation will
        // be resent/regenerated with identical identities; keeping the
        // queued copies is both correct (dedup by send_index) and
        // faster.
    }

    /// Incarnation side of `RESPONSE` (lines 52–53).
    fn handle_response(&mut self, src: Rank, w: ResponseWire) {
        if w.delivered_from_you > self.rollback_last_send_index.get(src) {
            self.rollback_last_send_index
                .set(src, w.delivered_from_you);
        }
        self.note_consumed(src, w.delivered_from_you);
        // The dead incarnation's transport may have been holding sent-
        // but-undelivered messages for retransmission when it crashed;
        // on a lossy fabric those copies are gone for good. Any such
        // message predates the checkpoint (its index is within the
        // restored `last_send`), so re-execution will not regenerate
        // it either — the checkpointed sender log is its only
        // surviving copy. Resend that window; the receiver's dedup
        // absorbs whatever did arrive.
        let resends: Vec<WireMsg> = self
            .log
            .entries_after(src, w.delivered_from_you)
            .filter(|e| e.send_index <= self.restored_send_index.get(src))
            .map(|e| {
                WireMsg::App(AppWire {
                    tag: e.tag,
                    send_index: e.send_index,
                    piggyback: e.piggyback.clone(),
                    needs_ack: false,
                    data: e.data.clone(),
                })
            })
            .collect();
        if !resends.is_empty() {
            self.events.emit(
                self.me,
                EventKind::LogResent {
                    to: src,
                    count: resends.len(),
                },
            );
        }
        for msg in resends {
            self.send_wire(src, &msg);
        }
        if !w.dets.is_empty() {
            self.protocol.install_recovery_info(w.dets);
        }
        if let Some(rec) = &mut self.recovery {
            if !rec.responded[src] {
                rec.responded[src] = true;
                self.events
                    .emit(self.me, EventKind::ResponseReceived { from: src });
            }
        }
        self.finish_recovery_if_complete();
    }

    /// Clear recovery mode once every survivor has responded *and*
    /// the event logger (when used) has answered — whichever arrives
    /// last.
    fn finish_recovery_if_complete(&mut self) {
        if let Some(rec) = &self.recovery {
            if rec.logger_synced && rec.responded.iter().all(|&r| r) {
                let sync_ns = rec.started.elapsed().as_nanos() as u64;
                self.stats.recovery_sync_ns += sync_ns;
                self.events.emit(
                    self.me,
                    EventKind::RecoverySynced {
                        sync_us: sync_ns / 1_000,
                    },
                );
                self.recovery = None;
            }
        }
    }

    /// Periodic maintenance: drive the reliability layer's
    /// retransmission timers, and rebroadcast `ROLLBACK` to peers that
    /// have not responded (they may have been dead when the first
    /// broadcast went out — the multi-failure case of Fig. 2).
    pub fn tick(&mut self) {
        self.transport.tick();
        let due = match &self.recovery {
            Some(rec) => rec.last_broadcast.elapsed() >= self.cfg.retry_interval,
            None => false,
        };
        if due {
            self.broadcast_rollback();
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("protocol", &self.cfg.protocol)
            .field("queued_len", &self.queue.len())
            .field("queued", &self.queue.summary())
            .field("queue_empty", &self.queue.is_empty())
            .field("log_bytes", &self.log_bytes())
            .field("log_entries", &self.log_entries())
            .field("last_send", &self.last_send_index.as_slice())
            .field("last_deliver", &self.last_deliver_index.as_slice())
            .field("delivered_total", &self.protocol.delivered_total())
            .field("recovering", &self.is_recovering())
            .field("dup_discarded", &self.transport.dup_discarded())
            .field("corrupt_detected", &self.transport.corrupt_detected())
            .field("channels", &self.transport.channel_summary())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use lclog_core::ProtocolKind;
    use lclog_simnet::NetConfig;
    use lclog_stable::MemStore;
    use std::sync::Arc;
    use std::time::Duration;

    fn harness(n: usize, kind: ProtocolKind) -> (Vec<Kernel>, SimNet, Vec<lclog_simnet::Endpoint>) {
        let net = SimNet::new(n + 1, NetConfig::direct());
        let store = CheckpointStore::new(Arc::new(MemStore::new()));
        let endpoints: Vec<_> = (0..n).map(|r| net.attach(r)).collect();
        let kernels = (0..n)
            .map(|r| {
                Kernel::new(
                    r,
                    n,
                    RunConfig::new(kind),
                    net.clone(),
                    store.clone(),
                )
            })
            .collect();
        (kernels, net, endpoints)
    }

    /// Drain one endpoint fully into its kernel.
    fn pump(kernel: &mut Kernel, ep: &lclog_simnet::Endpoint) {
        while let Ok(env) = ep.try_recv() {
            kernel.ingest(env);
        }
    }

    #[test]
    fn send_deliver_roundtrip_updates_counters() {
        let (mut ks, _net, eps) = harness(2, ProtocolKind::Tdi);
        let (mut k0, mut k1) = {
            let mut it = ks.drain(..);
            (it.next().unwrap(), it.next().unwrap())
        };
        let (idx, sent) = k0.app_send(1, 7, Bytes::from_static(b"hello"), false);
        assert_eq!(idx, 1);
        assert!(sent);
        assert_eq!(k0.stats().sends, 1);
        assert_eq!(k0.stats().piggyback_ids, 2); // TDI: n identifiers
        pump(&mut k1, &eps[1]);
        let msg = k1.try_deliver(RecvSpec::any()).expect("deliverable");
        assert_eq!(msg.src, 0);
        assert_eq!(msg.tag, 7);
        assert_eq!(&msg.data[..], b"hello");
        assert_eq!(k1.stats().delivers, 1);
        assert!(k1.try_deliver(RecvSpec::any()).is_none());
    }

    #[test]
    fn fifo_gap_blocks_delivery_until_predecessor_arrives() {
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let mut k1 = ks.pop().unwrap();
        let mut k0 = ks.pop().unwrap();
        // Send two messages but drop the first on the floor by killing
        // and respawning rank 1's endpoint... simpler: send both, but
        // ingest only the second by swallowing the first envelope.
        k0.app_send(1, 0, Bytes::from_static(b"first"), false);
        k0.app_send(1, 0, Bytes::from_static(b"second"), false);
        let first = eps[1].try_recv().unwrap();
        let second = eps[1].try_recv().unwrap();
        k1.ingest(second);
        assert!(k1.try_deliver(RecvSpec::any()).is_none(), "gap must block");
        k1.ingest(first);
        assert_eq!(&k1.try_deliver(RecvSpec::any()).unwrap().data[..], b"first");
        assert_eq!(&k1.try_deliver(RecvSpec::any()).unwrap().data[..], b"second");
        drop(net);
    }

    #[test]
    fn repetitive_message_discarded_and_acked() {
        let (mut ks, _net, eps) = harness(2, ProtocolKind::Tdi);
        let mut k1 = ks.pop().unwrap();
        let mut k0 = ks.pop().unwrap();
        k0.app_send(1, 0, Bytes::from_static(b"m"), true);
        pump(&mut k1, &eps[1]);
        k1.try_deliver(RecvSpec::any()).unwrap();
        // Ack for the first transmission.
        pump(&mut k0, &eps[0]);
        assert_eq!(k0.acked(1), 1);
        // Re-transmit the same message (as a recovering sender would).
        k0.resend_unacked(1, 1);
        pump(&mut k1, &eps[1]);
        // Discarded as repetitive — not deliverable again…
        assert!(k1.try_deliver(RecvSpec::any()).is_none());
        // …but still acknowledged (Fig. 3's duplicate handling).
        pump(&mut k0, &eps[0]);
        assert_eq!(k0.acked(1), 1);
    }

    #[test]
    fn checkpoint_advance_releases_peer_log() {
        let (mut ks, _net, eps) = harness(2, ProtocolKind::Tdi);
        let mut k1 = ks.pop().unwrap();
        let mut k0 = ks.pop().unwrap();
        k0.app_send(1, 0, Bytes::from_static(b"a"), false);
        k0.app_send(1, 0, Bytes::from_static(b"b"), false);
        assert!(k0.log_bytes() > 0);
        pump(&mut k1, &eps[1]);
        k1.try_deliver(RecvSpec::any()).unwrap();
        k1.try_deliver(RecvSpec::any()).unwrap();
        // Rank 1 checkpoints: its CkptAdvance lets rank 0 GC both
        // entries.
        k1.do_checkpoint(vec![], 1);
        pump(&mut k0, &eps[0]);
        assert_eq!(k0.log_bytes(), 0);
    }

    #[test]
    fn rollback_resends_lost_messages_with_logged_piggyback() {
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let mut k1 = ks.pop().unwrap();
        let mut k0 = ks.pop().unwrap();
        // Rank 0 sends 3 messages; rank 1 delivers only the first,
        // checkpoints, then fails.
        for b in [&b"a"[..], b"b", b"c"] {
            k0.app_send(1, 0, Bytes::copy_from_slice(b), false);
        }
        pump(&mut k1, &eps[1]);
        k1.try_deliver(RecvSpec::any()).unwrap();
        k1.do_checkpoint(vec![], 1);
        pump(&mut k0, &eps[0]); // absorb CkptAdvance (releases "a")
        // Crash rank 1, respawn.
        net.kill(1);
        let ep1b = net.respawn(1);
        let store = CheckpointStore::new(k1_store(&k1));
        let mut k1b = Kernel::new(1, 2, RunConfig::new(ProtocolKind::Tdi), net.clone(), store);
        k1b.set_incarnation(2);
        let image = k1b.load_checkpoint().expect("checkpoint exists");
        let (step, _app) = k1b.restore(image);
        assert_eq!(step, 1);
        k1b.begin_recovery();
        assert!(k1b.is_recovering());
        // Rank 0 handles the rollback: responds + resends b, c.
        pump(&mut k0, &eps[0]);
        // Incarnation ingests the response and resends.
        while let Ok(env) = ep1b.try_recv() {
            k1b.ingest(env);
        }
        assert!(!k1b.is_recovering(), "response received");
        let m = k1b.try_deliver(RecvSpec::any()).unwrap();
        assert_eq!(&m.data[..], b"b");
        let m = k1b.try_deliver(RecvSpec::any()).unwrap();
        assert_eq!(&m.data[..], b"c");
    }

    /// Grab the same backing store a kernel checkpointed into.
    fn k1_store(k: &Kernel) -> Arc<dyn lclog_stable::StableStorage> {
        Arc::clone(k.ckpt_store.storage())
    }

    #[test]
    fn recovering_sender_suppresses_already_delivered_sends() {
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let mut k1 = ks.pop().unwrap();
        let mut k0 = ks.pop().unwrap();
        // Rank 0 sends two messages; rank 1 delivers both. Rank 0 then
        // fails before checkpointing.
        k0.app_send(1, 0, Bytes::from_static(b"x"), false);
        k0.app_send(1, 0, Bytes::from_static(b"y"), false);
        pump(&mut k1, &eps[1]);
        k1.try_deliver(RecvSpec::any()).unwrap();
        k1.try_deliver(RecvSpec::any()).unwrap();
        net.kill(0);
        let ep0b = net.respawn(0);
        let store = CheckpointStore::new(k1_store(&k0));
        let mut k0b = Kernel::new(0, 2, RunConfig::new(ProtocolKind::Tdi), net.clone(), store);
        k0b.set_incarnation(2);
        // No checkpoint: fresh state, recover from scratch.
        assert!(k0b.load_checkpoint().is_none());
        k0b.begin_recovery();
        pump(&mut k1, &eps[1]); // rank 1 responds: delivered 2 from you
        while let Ok(env) = ep0b.try_recv() {
            k0b.ingest(env);
        }
        // Roll-forward: rank 0 re-executes both sends; both must be
        // suppressed (logged but not transmitted).
        let (_, sent) = k0b.app_send(1, 0, Bytes::from_static(b"x"), false);
        assert!(!sent, "send 1 suppressed by RESPONSE");
        let (_, sent) = k0b.app_send(1, 0, Bytes::from_static(b"y"), false);
        assert!(!sent, "send 2 suppressed by RESPONSE");
        let (_, sent) = k0b.app_send(1, 0, Bytes::from_static(b"z"), false);
        assert!(sent, "new send transmitted");
        // Log was rebuilt for all three.
        assert_eq!(k0b.log_entries(), 3);
    }

    #[test]
    fn recovering_sender_resupplies_in_flight_sends_from_checkpointed_log() {
        // The dual of the suppression test: rank 0 sends two messages
        // whose frames are lost on the wire, checkpoints (recording
        // them in last_send and in the sender log), then dies. Its old
        // transport's retransmission window dies with it, and the new
        // incarnation re-executes from *after* the sends — so the only
        // surviving copies are in the checkpointed log, and the
        // RESPONSE (delivered 0 from you) must trigger their resend.
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let mut k1 = ks.pop().unwrap();
        let mut k0 = ks.pop().unwrap();
        k0.app_send(1, 0, Bytes::from_static(b"a"), false);
        k0.app_send(1, 0, Bytes::from_static(b"b"), false);
        // The fabric eats both frames (chaos drop) — and the
        // checkpoint's CkptAdvance with them.
        k0.do_checkpoint(vec![], 1);
        while eps[1].try_recv().is_ok() {}
        net.kill(0);
        let ep0b = net.respawn(0);
        let store = CheckpointStore::new(k1_store(&k0));
        let mut k0b = Kernel::new(0, 2, RunConfig::new(ProtocolKind::Tdi), net.clone(), store);
        k0b.set_incarnation(2);
        let image = k0b.load_checkpoint().expect("checkpoint exists");
        k0b.restore(image);
        k0b.begin_recovery();
        pump(&mut k1, &eps[1]); // ROLLBACK in, RESPONSE (delivered 0) out
        while let Ok(env) = ep0b.try_recv() {
            k0b.ingest(env);
        }
        assert!(!k0b.is_recovering());
        // The RESPONSE resupplied both logged sends.
        pump(&mut k1, &eps[1]);
        assert_eq!(&k1.try_deliver(RecvSpec::any()).unwrap().data[..], b"a");
        assert_eq!(&k1.try_deliver(RecvSpec::any()).unwrap().data[..], b"b");
    }

    #[test]
    fn rollback_rebroadcast_reaches_late_incarnations() {
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        drop(k1);
        // Both ranks die "simultaneously"; rank 0 recovers first and
        // broadcasts while rank 1 is still dead.
        net.kill(0);
        net.kill(1);
        let ep0b = net.respawn(0);
        let store = CheckpointStore::new(k1_store(&k0));
        let mut cfg = RunConfig::new(ProtocolKind::Tdi);
        cfg.retry_interval = Duration::from_millis(1);
        let mut k0b = Kernel::new(0, 2, cfg.clone(), net.clone(), store.clone());
        k0b.set_incarnation(2);
        k0b.begin_recovery();
        // The first broadcast is dropped (rank 1 dead).
        std::thread::sleep(Duration::from_millis(2));
        let ep1b = net.respawn(1);
        let mut k1b = Kernel::new(1, 2, cfg, net.clone(), store);
        k1b.set_incarnation(2);
        k1b.begin_recovery();
        // k0's tick rebroadcasts; k1 (now alive) answers.
        k0b.tick();
        while let Ok(env) = ep1b.try_recv() {
            k1b.ingest(env);
        }
        while let Ok(env) = ep0b.try_recv() {
            k0b.ingest(env);
        }
        // One more round so k1's own rollback (sent before k0's
        // rebroadcast reached it) also completes.
        k1b.tick();
        while let Ok(env) = ep0b.try_recv() {
            k0b.ingest(env);
        }
        while let Ok(env) = ep1b.try_recv() {
            k1b.ingest(env);
        }
        assert!(!k0b.is_recovering());
        assert!(!k1b.is_recovering());
        drop(eps);
    }
}
