//! The rollback-recovery kernel: a thin, `Sync` facade over three
//! separately-locked layers plus a lock-free data plane, together
//! implementing the paper's Algorithm 1.
//!
//! One kernel instance exists per rank incarnation. Engines feed it
//! raw envelopes ([`Kernel::ingest_batch`], comm thread) and pull
//! deliverable application messages ([`Kernel::try_deliver`], app
//! thread) **concurrently** — there is no whole-kernel lock. Each
//! layer owns exactly the state its operations touch:
//!
//! | layer                          | lock     | owns                                             | Algorithm 1 |
//! |--------------------------------|----------|--------------------------------------------------|-------------|
//! | [`recovery`](crate::recovery)  | `recovery` | state machine, sender log, checkpoints         | 8–9, 12, 32–53 |
//! | [`tracking`](crate::tracking)  | `tracking` | `LoggingProtocol` box, piggyback merge, stats   | 10–11, 15–31 |
//! | [`delivery`](crate::delivery)  | `delivery` | receiving queue, `last_deliver_index`           | 13–17 |
//!
//! The old fourth layer — a `Mutex<Reliability>` serializing every
//! transmit and every frame-strip — is gone. The reliability layer is
//! embedded **lock-free**: the transport shards its channel state per
//! peer (no two channels share a lock), the rendezvous-ack and send
//! counters are [`AtomicCounters`], and the sender-log/ingress
//! bookkeeping that used to ride under the `recovery`/`delivery` locks
//! on every frame is staged in per-channel [`SeqRing`]s and drained in
//! batches (see *Batching epochs* below).
//!
//! # Lock ordering
//!
//! Locks are always acquired in the fixed order
//!
//! ```text
//! recovery  →  tracking  →  delivery
//! ```
//!
//! (any contiguous-or-gapped subset, never a back edge). Below the
//! hierarchy sit only terminal leaves that never acquire anything:
//! the transport's per-peer channel shards, the resync pacer, and the
//! failure detector's own small mutex. Sends are legal from under any
//! layer lock. In debug builds the order is machine-checked: every
//! layer acquisition goes through [`crate::lockcheck`], which keeps a
//! thread-local held-set and asserts on any back edge before the
//! mutex can deadlock.
//!
//! The send hot path is **tracking-only**: `app_send` takes the
//! tracking lock for the protocol piggyback, bumps the atomic send
//! counter, transmits through the destination's channel shard, and
//! stages the log entry in that destination's ring — it touches
//! neither the `recovery` nor the `delivery` lock. The ingest hot
//! path (`App` frames) is **delivery-only** and batched: frames are
//! staged per source and admitted under one `delivery` acquisition
//! per batch. The deliver hot path holds **at most one** layer lock
//! at a time: `try_deliver` snapshots FIFO-eligible candidates under
//! `delivery`, gates and merges under `tracking`, then extracts the
//! winner under `delivery` again — the comm thread's ingest batches
//! and the app thread's protocol merges never contend on a combined
//! critical section (see the method docs for why the phase split is
//! race-free).
//!
//! # Batching epochs
//!
//! Three kinds of per-frame bookkeeping are deferred into rings and
//! consumed in bulk:
//!
//! * **staged sender-log entries** (`log_stage[dst]`) — drained into
//!   the locked [`SenderLog`] by `drain_log_rings`, which runs at the
//!   top of *every* recovery-lock section (checkpoint, rollback,
//!   response, GC, snapshot) and opportunistically from [`Kernel::tick`]
//!   via `try_lock`. Any observer holding the recovery lock therefore
//!   sees a complete log; between drains the entries live in the rings,
//!   which are part of this incarnation's volatile state exactly like
//!   the log itself.
//! * **staged inbound app wires** (`ingress[src]`) — drained into the
//!   receive queue by `drain_ingress` under one `delivery` acquisition,
//!   at the end of each ingest batch and at the top of `try_deliver`.
//! * **coalesced cumulative acks** — the transport marks channels
//!   dirty and [`Kernel::ingest_batch`] flushes one cumulative ack per
//!   peer per batch instead of one frame per frame.
//!
//! # Crash-drain
//!
//! Rings are volatile, so a crash loses staged entries exactly as it
//! loses the locked log — nothing new. What recovery *requires* is
//! that every survivor answering a `ROLLBACK` resends its complete
//! retained log: `handle_rollback` drains the rings under the
//! recovery lock before computing the resend window, so staged
//! entries are never invisible to a recovering peer. Checkpoints
//! drain before imaging for the same reason.
//!
//! Lock-free fast paths keep `try_deliver` off the cold locks: the
//! `recovering` flag is an `AtomicBool` (Release-stored only after
//! recovery info is installed under `tracking`, so an Acquire-load of
//! `false` plus the `tracking` lock acquisition observes the installed
//! state), and `needs_full_recovery_info` is cached at construction
//! (the [`LoggingProtocol`] contract requires it constant). The
//! duplicate-suppression bound (`rollback_last_send_index`) is read
//! lock-free on the send fast path; every *write* happens under the
//! recovery lock, and a send that observes a stale bound errs toward
//! transmitting — safe, because receivers discard repetitive
//! send-indexes and re-ack them (§III.C.3). A send that observes the
//! bound *suppressing* it re-checks under the recovery lock, making
//! the suppression decision authoritative.

use crate::backoff::RetryBackoff;
use crate::config::RunConfig;
use crate::delivery::{Admit, Delivery};
use crate::detector::Detector;
use crate::events::{EventKind, EventSink};
use crate::fault::Fault;
use crate::lockcheck;
use crate::log::{LogEntry, SenderLog};
use crate::message::{
    AppMsg, AppWire, CkptAdvanceWire, RecvSpec, ResponseWire, RollbackWire, SuspectWire, WireMsg,
};
use crate::recovery::{RecoveryLayer, RecoveryPhase, Transition};
use crate::reliability::Reliability;
use crate::ring::{AtomicCounters, SeqRing};
use crate::tracking::Tracking;
use crate::transport::{DataPlaneStats, Transport, TransportConfig};
use bytes::Bytes;
use lclog_core::{make_protocol, CounterVector, DeliveryVerdict, MembershipView, Rank, TrackingStats};
use lclog_simnet::{Envelope, SimNet};
use lclog_stable::CheckpointStore;
use lclog_wire::{encode_to_vec, impl_wire_struct};
use parking_lot::Mutex;
use std::time::Duration;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Slots per staging ring (sender-log entries per destination,
/// inbound app wires per source). Rings are lazily allocated per
/// active channel, so idle channels in a 1024-rank system cost one
/// empty `OnceLock` each. A full ring falls back to the locked slow
/// path — correctness never depends on capacity.
const STAGE_SLOTS: usize = 256;

/// Everything a checkpoint durably captures (Algorithm 1 line 33:
/// image, log, and the counter vectors).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointImage {
    /// Application step the image was taken after.
    pub step: u64,
    /// Serialized application state.
    pub app_state: Vec<u8>,
    /// Serialized protocol state (`depend_interval` for TDI, graph for
    /// TAG, determinant window for TEL).
    pub protocol: Vec<u8>,
    /// `last_send_index` vector.
    pub last_send: CounterVector,
    /// `last_deliver_index` vector.
    pub last_deliver: CounterVector,
    /// The sender-based message log.
    pub log: Vec<LogEntry>,
}

impl_wire_struct!(CheckpointImage {
    step,
    app_state,
    protocol,
    last_send,
    last_deliver,
    log
});

/// One-lock-round-trip view of everything the harnesses report about
/// a kernel: tracking statistics, log pressure, rendezvous acks,
/// transport counters, and the recovery phase.
#[derive(Debug, Clone)]
pub struct KernelSnapshot {
    /// Tracking statistics (piggyback cost, send/deliver counts…).
    pub stats: TrackingStats,
    /// Retained sender-log payload + piggyback bytes.
    pub log_bytes: usize,
    /// Retained sender-log entries.
    pub log_entries: usize,
    /// Highest acknowledged rendezvous send per destination.
    pub acked: CounterVector,
    /// Where the recovery state machine stands.
    pub recovery_phase: RecoveryPhase,
    /// Messages queued but not yet delivered.
    pub queued: usize,
    /// Duplicate frames the transport discarded.
    pub dup_discarded: u64,
    /// Corrupt frames the transport detected.
    pub corrupt_detected: u64,
    /// Frames rejected (and answered with `FENCED`) because they came
    /// from a below-floor incarnation.
    pub fenced_rejected: u64,
    /// Data-plane byte accounting: frames built, bytes framed, payload
    /// copies, zero-copy resends.
    pub data_plane: DataPlaneStats,
}

/// Per-rank rollback-recovery kernel: three locked layers plus a
/// lock-free data plane behind `&self` methods (see the module docs
/// for the lock hierarchy and the batching-epoch protocol).
pub struct Kernel {
    me: Rank,
    n: usize,
    cfg: RunConfig,
    net: SimNet,
    /// TEL event-logger service rank (slot `n`), when the protocol
    /// uses one. Constant per protocol kind.
    logger: Option<Rank>,
    /// Cached `LoggingProtocol::needs_full_recovery_info` — constant
    /// per protocol instance, so `try_deliver` can consult it without
    /// the tracking lock.
    holds_delivery_in_recovery: bool,
    /// Lock-free mirror of "the state machine is in Logging or
    /// Replaying". Stored with Release only after recovery info is
    /// installed under the tracking lock.
    recovering: AtomicBool,
    /// Lock-free mirror of the transport's self-fenced flag: a
    /// membership view (or a peer's `Fenced` notice) declared this
    /// incarnation dead. Engines poll it in `check_live` and surface
    /// [`crate::Fault::Fenced`].
    fenced: AtomicBool,
    /// Set when the tracking merge rejected a gate-approved message:
    /// the protocol state can no longer be trusted. Engines poll it in
    /// `check_live` and surface [`crate::Fault::Desync`] so the rank
    /// rebuilds through the rollback path instead of aborting the
    /// process.
    desynced: AtomicBool,
    /// `last_send_index[dst]`: bumped lock-free on the send fast path
    /// (under the tracking lock, so per-destination protocol state and
    /// index order agree), snapshotted into checkpoints.
    last_send_index: AtomicCounters,
    /// Duplicate-suppression bound per destination (§III.C.3): sends
    /// with `send_index <= bound` were delivered by the peer before
    /// our crash and are logged without transmitting. Read lock-free
    /// on the fast path; written only under the recovery lock.
    rollback_last_send_index: AtomicCounters,
    /// Staged sender-log entries per destination, drained into
    /// `recovery.log` by `drain_log_rings`.
    log_stage: Vec<OnceLock<SeqRing<LogEntry>>>,
    /// Staged inbound app wires per source, drained into the receive
    /// queue by `drain_ingress`.
    ingress: Vec<OnceLock<SeqRing<AppWire>>>,
    /// Dirty flag: some `log_stage` ring may be non-empty.
    log_staged: AtomicBool,
    /// Dirty flag: some `ingress` ring may be non-empty.
    ingress_pending: AtomicBool,
    /// High-water mark of retained log bytes, maintained at drain
    /// points (the locked-era code updated it per send).
    log_bytes_peak: AtomicU64,
    recovery: Mutex<RecoveryLayer>,
    tracking: Mutex<Tracking>,
    delivery: Mutex<Delivery>,
    /// Lock-free: per-peer transport shards + atomic rendezvous acks.
    reliability: Reliability,
    /// Full-jitter pacing of outgoing `RESYNC_REQ` frames (TDI-S): the
    /// protocol re-queues a request on *every* gate check while a
    /// channel is parked behind an undecodable frame, so without
    /// pacing each kernel tick re-sends the request and a slow or lost
    /// `RESYNC_SNAP` turns into a request storm.
    resync_pacer: Mutex<ResyncPacer>,
    /// Structured timeline collector (disabled by default).
    events: EventSink,
}

/// A layer-lock guard that carries its debug-build lock-order token:
/// acquiring one registers the layer with [`crate::lockcheck`] (so a
/// back-edge acquisition asserts instead of deadlocking), dropping
/// one releases the mutex and then clears the thread's held-bit.
/// Derefs to the layer state, so guard-based call sites read exactly
/// like raw `MutexGuard` ones.
struct LayerGuard<'a, T> {
    guard: parking_lot::MutexGuard<'a, T>,
    /// Declared after `guard`: fields drop in declaration order, so
    /// the mutex is released before the held-bit clears — the audit
    /// window covers the whole critical section.
    _held: lockcheck::Held,
}

impl<T> std::ops::Deref for LayerGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for LayerGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl Kernel {
    /// Acquire the `recovery` layer (order-audited). All kernel code
    /// goes through these helpers rather than locking the fields
    /// directly, so every acquisition is checked in debug builds.
    fn lock_recovery(&self) -> LayerGuard<'_, RecoveryLayer> {
        let held = lockcheck::acquire(lockcheck::RECOVERY, "recovery");
        LayerGuard {
            guard: self.recovery.lock(),
            _held: held,
        }
    }

    /// Acquire the `tracking` layer (order-audited).
    fn lock_tracking(&self) -> LayerGuard<'_, Tracking> {
        let held = lockcheck::acquire(lockcheck::TRACKING, "tracking");
        LayerGuard {
            guard: self.tracking.lock(),
            _held: held,
        }
    }

    /// Acquire the `delivery` layer (order-audited).
    fn lock_delivery(&self) -> LayerGuard<'_, Delivery> {
        let held = lockcheck::acquire(lockcheck::DELIVERY, "delivery");
        LayerGuard {
            guard: self.delivery.lock(),
            _held: held,
        }
    }

    /// Try-acquire the `recovery` layer (order-audited on success; a
    /// try-lock cannot deadlock, but a back-edge try-acquire is still
    /// an ordering bug worth catching).
    fn try_lock_recovery(&self) -> Option<LayerGuard<'_, RecoveryLayer>> {
        let guard = self.recovery.try_lock()?;
        let held = lockcheck::acquire(lockcheck::RECOVERY, "recovery(try)");
        Some(LayerGuard {
            guard,
            _held: held,
        })
    }
}

impl Kernel {
    /// Fresh kernel for `me` of `n` (initial incarnation state).
    pub fn new(me: Rank, n: usize, cfg: RunConfig, net: SimNet, ckpt_store: CheckpointStore) -> Self {
        let protocol = make_protocol(cfg.protocol, me, n);
        let logger = protocol.wants_event_logger().then(|| crate::logger_rank(n));
        let holds_delivery_in_recovery = protocol.needs_full_recovery_info();
        let transport = Transport::new(
            me,
            net.n(),
            net.clone(),
            TransportConfig {
                timeout: cfg.retransmit_timeout,
                cap: cfg.retransmit_cap,
                budget: cfg.retransmit_budget,
                clock: cfg.clock.clone(),
            },
        );
        let clock = cfg.clock.clone();
        let now = clock.now();
        let mut reliability = Reliability::new(transport, n);
        if let Some(dcfg) = cfg.detector {
            reliability.set_detector(Detector::new(me, n, dcfg, now));
        }
        let slots = net.n();
        let resync_pacer = Mutex::new(ResyncPacer::new(me, n, &cfg));
        Kernel {
            me,
            n,
            cfg,
            net,
            logger,
            holds_delivery_in_recovery,
            recovering: AtomicBool::new(false),
            fenced: AtomicBool::new(false),
            desynced: AtomicBool::new(false),
            last_send_index: AtomicCounters::zeroed(n),
            rollback_last_send_index: AtomicCounters::zeroed(n),
            log_stage: (0..slots).map(|_| OnceLock::new()).collect(),
            ingress: (0..slots).map(|_| OnceLock::new()).collect(),
            log_staged: AtomicBool::new(false),
            ingress_pending: AtomicBool::new(false),
            log_bytes_peak: AtomicU64::new(0),
            recovery: Mutex::new(RecoveryLayer::new(n, ckpt_store, now)),
            tracking: Mutex::new(Tracking::new(protocol, clock)),
            delivery: Mutex::new(Delivery::new(n)),
            reliability,
            resync_pacer,
            events: EventSink::disabled(),
        }
    }

    /// Tell the reliability layer which incarnation this kernel is:
    /// receivers use the epoch to distinguish a respawned sender's
    /// fresh sequence space from stale duplicates. Must be called
    /// before any traffic when the incarnation is not the first.
    pub fn set_incarnation(&mut self, incarnation: u64) {
        self.reliability.transport.set_epoch(incarnation);
    }

    /// True when the reliability layer has written `dst` off: it
    /// stayed silent across the whole retransmit budget. Lock-free.
    pub fn peer_unreachable(&self, dst: Rank) -> bool {
        self.reliability.transport.peer_unreachable(dst)
    }

    /// Lock-free read of the blocking engine's rendezvous state for
    /// `dst`: `(highest acked send_index, peer written off)`.
    pub fn rendezvous_progress(&self, dst: Rank) -> (u64, bool) {
        (
            self.reliability.acked.get(dst),
            self.reliability.transport.peer_unreachable(dst),
        )
    }

    /// Attach a timeline collector (see [`crate::events`]). Call
    /// before the kernel is shared with the engine.
    pub fn set_event_sink(&mut self, sink: EventSink) {
        self.reliability.transport.set_event_sink(sink.clone());
        self.events = sink;
    }

    /// This rank.
    pub fn me(&self) -> Rank {
        self.me
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Runtime configuration.
    pub fn cfg(&self) -> &RunConfig {
        &self.cfg
    }

    /// A clone of the fabric handle (for the engine's crash path).
    pub fn net_handle(&self) -> SimNet {
        self.net.clone()
    }

    /// Consistent cross-layer snapshot for reporting — replaces the
    /// old `stats()` / `log_bytes()` / `log_entries()` / `acked()`
    /// accessor pile with one locked round-trip.
    pub fn snapshot(&self) -> KernelSnapshot {
        // Settle the batched planes first so the locked reads see a
        // complete picture, then canonical lock order:
        // recovery → tracking → delivery.
        self.drain_ingress();
        let mut rec = self.lock_recovery();
        self.drain_log_rings(&mut rec);
        let trk = self.lock_tracking();
        let del = self.lock_delivery();
        let mut stats = trk.snapshot_stats();
        stats.log_bytes_peak = stats
            .log_bytes_peak
            .max(self.log_bytes_peak.load(Ordering::Relaxed));
        KernelSnapshot {
            stats,
            log_bytes: rec.log.bytes(),
            log_entries: rec.log.len(),
            acked: self.reliability.acked.snapshot(),
            recovery_phase: rec.machine.phase().clone(),
            queued: del.queue.len(),
            dup_discarded: self.reliability.transport.dup_discarded(),
            corrupt_detected: self.reliability.transport.corrupt_detected(),
            fenced_rejected: self.reliability.transport.fenced_rejected(),
            data_plane: self.reliability.transport.data_plane(),
        }
    }

    /// Where the recovery state machine stands.
    pub fn recovery_phase(&self) -> RecoveryPhase {
        self.lock_recovery().machine.phase().clone()
    }

    /// True while this incarnation is still collecting recovery
    /// information (lock-free).
    pub fn is_recovering(&self) -> bool {
        self.recovering.load(Ordering::Acquire)
    }

    /// True once a membership view (or a peer's `FENCED` notice)
    /// declared this very incarnation dead (lock-free). Engines must
    /// stop the application with [`crate::Fault::Fenced`]: volatile
    /// state is forfeit, the successor rejoins via `ROLLBACK`.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    /// True once the tracking merge rejected a gate-approved message
    /// (lock-free). Engines must stop the application with
    /// [`crate::Fault::Desync`]: the protocol state is untrusted, the
    /// successor rebuilds via `ROLLBACK`.
    pub fn is_desynced(&self) -> bool {
        self.desynced.load(Ordering::Acquire)
    }

    /// The protocol's dependency-interval vector (`depend_interval[n]`
    /// for TDI), when the protocol tracks one. This is the invariant
    /// half of the schedule explorer's order-insensitivity check
    /// (§III.E): every legal delivery schedule must converge to the
    /// same vector.
    pub fn interval_vector(&self) -> Option<Vec<u64>> {
        self.lock_tracking().protocol.interval_vector()
    }

    /// Protocol send gate (pessimistic logging holds sends while
    /// determinants are unstable).
    pub fn send_ready(&self) -> bool {
        self.lock_tracking().protocol.send_ready()
    }

    fn send_wire(&self, dst: Rank, msg: &WireMsg) {
        self.reliability.send_wire(dst, msg);
    }

    fn emit_transition(&self, tr: Option<Transition>) {
        if let Some((from, to)) = tr {
            self.events
                .emit(self.me, EventKind::RecoveryTransition { from, to });
        }
    }

    /// Book the `→ Synced` edge: account the sync time, lift the
    /// lock-free recovery barrier, and emit the timeline events. The
    /// `&mut Tracking` parameter is deliberate — it proves the caller
    /// holds the tracking lock, so every `install_recovery_info` is
    /// complete before the Release store makes `recovering == false`
    /// visible to the app thread's Acquire load.
    fn finish_sync(&self, trk: &mut Tracking, done: (u64, Transition)) {
        let (sync_ns, tr) = done;
        trk.stats.recovery_sync_ns += sync_ns;
        self.recovering.store(false, Ordering::Release);
        self.emit_transition(Some(tr));
        self.events.emit(
            self.me,
            EventKind::RecoverySynced {
                sync_us: sync_ns / 1_000,
            },
        );
    }

    // ---------------------------------------------------------------
    // Sending (Algorithm 1 lines 8–12)
    // ---------------------------------------------------------------

    /// Application-level send. Logs the message, piggybacks protocol
    /// state, and transmits unless suppressed as already-delivered
    /// (roll-forward duplicate suppression, line 10).
    ///
    /// Returns `(send_index, transmitted)`; when `transmitted` and
    /// `needs_ack`, the blocking engine waits for [`WireMsg::Ack`].
    ///
    /// Locks: **tracking only** on the fast path. The send counter is
    /// bumped (under the tracking lock, so per-destination protocol
    /// state and index order agree), the suppression bound is read
    /// lock-free, the frame goes out through the destination's
    /// channel shard, and the log entry is staged in the
    /// destination's ring. A stale bound read can only err toward
    /// transmitting a send a concurrent `RESPONSE` would have
    /// suppressed — safe, because the receiver discards repetitive
    /// send-indexes and re-acks them. When the bound *does* suppress,
    /// the slow path re-checks under the recovery lock (which
    /// serializes all bound writes), making suppression
    /// authoritative; a concurrent `ROLLBACK` either sees the entry
    /// in the drained log (and resends it) or has already clamped the
    /// bound this send is checked against.
    ///
    /// ## Zero-copy budget
    ///
    /// A transmitted send performs **exactly one frame allocation**:
    /// the transport encodes `[crc | header | WireMsg::App]` in a
    /// single pass and hands back the encoded-message region as a
    /// zero-copy window, which the sender-log entry stores for
    /// verbatim resends — the log entry, the transport's unacked
    /// slot, and the in-flight envelope are all refcounted handles on
    /// that one buffer, and the entry's `piggyback`/`data` handles
    /// move in from the send without a decode pass. A suppressed send
    /// encodes once into the log and transmits nothing.
    pub fn app_send(&self, dst: Rank, tag: u32, data: Bytes, needs_ack: bool) -> (u64, bool) {
        let mut trk = self.lock_tracking();
        let send_index = self.last_send_index.bump(dst);
        let artifacts = trk.on_send(dst, send_index);
        drop(trk);
        let piggyback = Bytes::from(artifacts.piggyback);
        if send_index > self.rollback_last_send_index.get(dst) {
            let msg = WireMsg::App(AppWire {
                tag,
                send_index,
                piggyback,
                needs_ack,
                data,
            });
            let inner = self.reliability.send_wire(dst, &msg);
            let WireMsg::App(w) = msg else { unreachable!() };
            self.stage_log_entry(dst, LogEntry::from_parts(dst as u32, w, inner));
            return (send_index, true);
        }
        // Suppression slow path: the bound says this send was already
        // delivered by the peer's pre-crash observation of us. Confirm
        // under the recovery lock, where all bound writes serialize.
        let mut rec = self.lock_recovery();
        self.drain_log_rings(&mut rec);
        let transmit = send_index > self.rollback_last_send_index.get(dst);
        let entry = if transmit {
            let msg = WireMsg::App(AppWire {
                tag,
                send_index,
                piggyback,
                needs_ack,
                data,
            });
            let inner = self.reliability.send_wire(dst, &msg);
            let WireMsg::App(w) = msg else { unreachable!() };
            LogEntry::from_parts(dst as u32, w, inner)
        } else {
            LogEntry::new(dst as u32, send_index, tag, piggyback, needs_ack, data)
        };
        rec.log.insert(entry);
        self.note_log_peak(&rec);
        (send_index, transmit)
    }

    /// Stage a log entry in `dst`'s ring for the next batched drain.
    /// A full ring degrades to the locked slow path (drain + insert),
    /// so capacity is a performance knob, never a correctness one.
    fn stage_log_entry(&self, dst: Rank, entry: LogEntry) {
        let ring = self.log_stage[dst].get_or_init(|| SeqRing::with_capacity(STAGE_SLOTS));
        match ring.try_push(entry) {
            Ok(()) => self.log_staged.store(true, Ordering::Release),
            Err(entry) => {
                let mut rec = self.lock_recovery();
                self.drain_log_rings(&mut rec);
                rec.log.insert(entry);
                self.note_log_peak(&rec);
            }
        }
    }

    /// Consume every staged log entry into the locked sender log.
    /// Runs at the top of every recovery-lock section, so any code
    /// holding the lock observes a complete log. Entries land in the
    /// per-destination `BTreeMap` keyed by send_index, so concurrent
    /// producers' interleaving across the ring is irrelevant.
    fn drain_log_rings(&self, rec: &mut RecoveryLayer) {
        if !self.log_staged.swap(false, Ordering::AcqRel) {
            return;
        }
        for slot in &self.log_stage {
            if let Some(ring) = slot.get() {
                while let Some(entry) = ring.try_pop() {
                    rec.log.insert(entry);
                }
            }
        }
        self.note_log_peak(rec);
    }

    fn note_log_peak(&self, rec: &RecoveryLayer) {
        self.log_bytes_peak
            .fetch_max(rec.log.bytes() as u64, Ordering::Relaxed);
    }

    /// Retransmit a logged message whose rendezvous ack has not
    /// arrived (receiver may have failed and respawned meanwhile).
    /// The logged wire form is resent verbatim ([`LogEntry::to_wire`],
    /// zero payload copies); it carries `needs_ack`, because only
    /// rendezvous sends are ever waited on.
    pub fn resend_unacked(&self, dst: Rank, send_index: u64) {
        let wire = {
            let mut rec = self.lock_recovery();
            self.drain_log_rings(&mut rec);
            let found = rec
                .log
                .entries_after(dst, send_index - 1)
                .next()
                .and_then(|e| (e.send_index == send_index).then(|| e.to_wire()));
            found
        };
        match wire {
            Some(inner) => self.reliability.send_encoded(dst, inner),
            None => {
                // The entry was released by a CHECKPOINT_ADVANCE: the
                // receiver durably consumed it — an implicit ack.
                self.reliability.note_consumed(dst, send_index);
            }
        }
    }

    // ---------------------------------------------------------------
    // Ingestion and delivery (lines 13–31)
    // ---------------------------------------------------------------

    /// Process one raw envelope from the fabric, then close the batch
    /// (drain staged app wires, flush coalesced acks). Engines that
    /// hold several envelopes should prefer [`Kernel::ingest_batch`],
    /// which pays the batch close once.
    pub fn ingest(&self, env: Envelope) {
        self.ingest_env(env);
        self.finish_batch();
    }

    /// Process a batch of raw envelopes, then close the batch once:
    /// one `delivery` acquisition admits every staged app wire, and
    /// one cumulative ack per dirty peer replaces per-frame acks.
    pub fn ingest_batch(&self, envs: impl IntoIterator<Item = Envelope>) {
        for env in envs {
            self.ingest_env(env);
        }
        self.finish_batch();
    }

    /// Close an ingest batch: admit staged app wires under one
    /// delivery acquisition and flush the transport's coalesced acks.
    /// Also opportunistically retires staged sender-log entries so a
    /// send burst between recovery-lock sections cannot fill the
    /// stage rings and push `app_send` onto its locked slow path (the
    /// comm thread closes a batch far more often than checkpoint
    /// advances arrive).
    fn finish_batch(&self) {
        self.drain_ingress();
        if self.log_staged.load(Ordering::Acquire) {
            if let Some(mut rec) = self.try_lock_recovery() {
                self.drain_log_rings(&mut rec);
            }
        }
        self.reliability.flush_acks();
    }

    /// Process one raw envelope without closing the batch. The
    /// transport strips its frame first — corrupt envelopes are
    /// NACK'ed, duplicates discarded, and control frames consumed
    /// without ever reaching the dispatch below (all inside the
    /// source's channel shard) — then the inner message is routed to
    /// the layer that owns it.
    fn ingest_env(&self, env: Envelope) {
        let src = env.src;
        let inner = self.reliability.ingest(env);
        // A `FENCED` notice from a peer lands entirely inside the
        // transport; mirror its verdict.
        if self.reliability.transport.is_self_fenced() {
            self.fenced.store(true, Ordering::Release);
        }
        let Some(inner) = inner else {
            return;
        };
        // Zero-copy decode: `App` payload and piggyback come out as
        // windows into the ingested frame, not fresh allocations.
        let msg: WireMsg = match lclog_wire::decode_from_bytes(&inner) {
            Ok(m) => m,
            Err(_) => {
                // The frame passed its CRC, so this is a codec bug,
                // not line noise.
                debug_assert!(false, "undecodable wire message from {src}");
                return;
            }
        };
        match msg {
            WireMsg::App(wire) => self.ingest_app(src, wire),
            WireMsg::Ack(idx) => self.reliability.note_consumed(src, idx),
            WireMsg::Rollback(w) => self.handle_rollback(src, w),
            WireMsg::Response(w) => self.handle_response(src, w),
            WireMsg::CkptAdvance(w) => {
                {
                    let mut rec = self.lock_recovery();
                    // Staged entries must be in the locked log before
                    // the release pass, or covered entries could
                    // outlive their GC horizon.
                    self.drain_log_rings(&mut rec);
                    let horizon = if self.cfg.log_gc_lag {
                        // Release only what the *previous* advance
                        // covered: one extra generation of entries
                        // stays resendable, so a node-loss restore
                        // that falls back a generation can still be
                        // rolled forward. `min` guards against
                        // reordered advances shrinking the horizon.
                        let prev = rec.peer_ckpt_advance.get(src);
                        prev.min(w.delivered_from_you)
                    } else {
                        w.delivered_from_you
                    };
                    if w.delivered_from_you > rec.peer_ckpt_advance.get(src) {
                        rec.peer_ckpt_advance.set(src, w.delivered_from_you);
                    }
                    rec.log.release(src, horizon);
                }
                self.lock_tracking()
                    .protocol
                    .on_peer_checkpoint(src, w.total_delivered);
                // Checkpointed delivery counts double as acks.
                self.reliability.note_consumed(src, w.delivered_from_you);
            }
            WireMsg::LogAck(upto) => self.lock_tracking().protocol.on_logger_ack(upto),
            WireMsg::LogQueryResp(dets) => self.handle_logger_sync(dets),
            WireMsg::Membership(view) => self.handle_membership(view),
            WireMsg::ResyncReq(who) => {
                debug_assert_eq!(who as Rank, src, "resync request must name its sender");
                let snap = self.lock_tracking().protocol.resync_snapshot(src);
                if let Some(bytes) = snap {
                    self.send_wire(src, &WireMsg::ResyncSnap(bytes.into()));
                }
            }
            WireMsg::ResyncSnap(bytes) => {
                // A corrupt snapshot is no worse than a lost one: the
                // next undecodable frame re-requests, so the error is
                // dropped rather than faulting the rank. Either way the
                // round-trip completed, so the request pacer restarts
                // its schedule for this source.
                let _ = self.lock_tracking().protocol.install_resync(src, &bytes);
                self.resync_pacer.lock().settle(src);
            }
            WireMsg::LogDets(_) | WireMsg::LogQuery(_) | WireMsg::Suspect(_) => {
                debug_assert!(false, "service-bound message reached rank {}", self.me);
            }
        }
    }

    /// Stage one inbound app wire in `src`'s ingress ring; the next
    /// `drain_ingress` admits it under the batch's single delivery
    /// acquisition. A full ring drains first and retries; if a racing
    /// drain already refilled it, the wire is admitted inline (the
    /// receive queue is arrival-order independent, so out-of-order
    /// admission is harmless).
    fn ingest_app(&self, src: Rank, wire: AppWire) {
        let ring = self.ingress[src].get_or_init(|| SeqRing::with_capacity(STAGE_SLOTS));
        let wire = match ring.try_push(wire) {
            Ok(()) => {
                self.ingress_pending.store(true, Ordering::Release);
                return;
            }
            Err(wire) => wire,
        };
        self.drain_ingress();
        match ring.try_push(wire) {
            Ok(()) => self.ingress_pending.store(true, Ordering::Release),
            Err(wire) => {
                let verdict = self.lock_delivery().admit(src, wire);
                if let Admit::Repetitive {
                    needs_ack: true,
                    send_index,
                } = verdict
                {
                    self.send_wire(src, &WireMsg::Ack(send_index));
                }
            }
        }
    }

    /// Admit every staged inbound app wire under one `delivery`
    /// acquisition, then send the re-acks owed to repetitive
    /// rendezvous duplicates (outside the lock).
    fn drain_ingress(&self) {
        if !self.ingress_pending.swap(false, Ordering::AcqRel) {
            return;
        }
        let mut reacks: Vec<(Rank, u64)> = Vec::new();
        {
            let mut del = self.lock_delivery();
            for (src, slot) in self.ingress.iter().enumerate() {
                if let Some(ring) = slot.get() {
                    while let Some(wire) = ring.try_pop() {
                        if let Admit::Repetitive {
                            needs_ack: true,
                            send_index,
                        } = del.admit(src, wire)
                        {
                            reacks.push((src, send_index));
                        }
                    }
                }
            }
        }
        for (src, send_index) in reacks {
            self.send_wire(src, &WireMsg::Ack(send_index));
        }
    }

    /// Deliver the first queued message matching `spec` whose
    /// per-sender FIFO predecessor has been delivered and whose
    /// protocol dependency gate opens (lines 15–31). App thread.
    ///
    /// Locks: **at most one layer at a time** — never `recovery`
    /// (whose role here is played by the lock-free `recovering`
    /// flag), and never `tracking` and `delivery` together. The old
    /// combined critical section made every protocol gate + merge
    /// contend with the comm thread's batched ingress admissions;
    /// now the two planes only touch through three short
    /// single-lock phases:
    ///
    /// 1. **`delivery`** — drain staged ingress, then snapshot each
    ///    lane's FIFO-next candidate (`(src, send_index, piggyback)`;
    ///    the piggyback is a refcounted clone, so nothing borrows the
    ///    queue).
    /// 2. **`tracking`** — walk the snapshot in arrival order, gate
    ///    each candidate against the protocol, and merge the winner's
    ///    piggyback under the *same* acquisition (gate and merge must
    ///    see one consistent protocol state).
    /// 3. **`delivery`** — extract the winner by identity and bump
    ///    the FIFO counter.
    ///
    /// The split is race-free because delivery is single-threaded by
    /// contract: only the app thread extracts entries or bumps
    /// `last_deliver_index`, so a phase-1 candidate is still queued
    /// and still FIFO-next at phase 3. The comm thread's concurrent
    /// admissions only *add* entries, with later arrival stamps; its
    /// dedup (`Admit`) keys on the queue, which holds the candidate
    /// until phase 3 removes it. In debug builds the at-most-one
    /// invariant is pinned by [`lockcheck::assert_none_held`] at
    /// every phase boundary.
    pub fn try_deliver(&self, spec: RecvSpec) -> Option<AppMsg> {
        // PWD protocols must not deliver against an incomplete replay
        // script; hold everything until every survivor (and the event
        // logger) has answered our ROLLBACK. TDI has no such wait —
        // each message carries its own complete delivery constraint.
        if self.holds_delivery_in_recovery && self.recovering.load(Ordering::Acquire) {
            return None;
        }
        lockcheck::assert_none_held("try_deliver entry");
        // Phase 1: delivery only. At most one entry per lane can be
        // FIFO-next (send indexes are unique per sender), so the
        // FIFO-only snapshot finds exactly the candidates the old
        // combined gate could have matched.
        self.drain_ingress();
        let candidates = {
            let del = self.lock_delivery();
            let last_deliver_index = &del.last_deliver_index;
            del.queue
                .candidate_heads(spec, |src, idx, _| idx == last_deliver_index.get(src) + 1)
        };
        if candidates.is_empty() {
            return None;
        }
        lockcheck::assert_none_held("try_deliver phase 1 → 2");
        // Phase 2: tracking only. First candidate (in arrival order)
        // whose dependency gate opens wins — identical pick to the
        // old single-section scan, which also took the arrival-first
        // candidate passing FIFO + protocol.
        let (src, send_index, merged) = {
            let mut trk = self.lock_tracking();
            let (src, send_index, piggyback) = candidates.into_iter().find(|(src, idx, pb)| {
                matches!(
                    trk.protocol.deliverable(*src, *idx, pb),
                    DeliveryVerdict::Deliver
                )
            })?;
            let merged = trk.on_deliver(src, send_index, &piggyback).is_ok();
            let dets = if merged && self.logger.is_some() {
                trk.protocol.drain_determinants_for_logger()
            } else {
                Vec::new()
            };
            (src, send_index, merged.then_some(dets))
        };
        lockcheck::assert_none_held("try_deliver phase 2 → 3");
        // Phase 3: delivery only. Extract by identity.
        let taken = {
            let mut del = self.lock_delivery();
            let taken = del.queue.take_exact(src, send_index);
            if taken.is_some() && merged.is_some() {
                del.note_delivered(src);
            }
            taken
        };
        let Some(dets) = merged else {
            // Gate and merge disagreed (poisoned/stale piggyback): the
            // message is discarded *without* bumping the delivery
            // counter, and the rank is marked desynchronized so its
            // engine faults it (single-rank recovery, not a process
            // abort). No ack either — as far as the sender can tell,
            // the message was never consumed.
            self.events
                .emit(self.me, EventKind::TrackingDesync { src, send_index });
            self.desynced.store(true, Ordering::Release);
            return None;
        };
        let Some(taken) = taken else {
            // Unreachable while the single-deliverer contract holds
            // (only this thread removes queue entries): the merge has
            // consumed a message the app will never see, so treat the
            // broken contract as a desync rather than diverge quietly.
            debug_assert!(false, "phase-1 candidate vanished before phase-3 extraction");
            self.desynced.store(true, Ordering::Release);
            return None;
        };
        let wire = taken.wire;
        // Rendezvous ack at delivery time (§IV.B), then freshly created
        // determinants to the TEL event logger.
        if wire.needs_ack {
            self.send_wire(src, &WireMsg::Ack(wire.send_index));
        }
        if let Some(logger) = self.logger {
            if !dets.is_empty() {
                self.send_wire(logger, &WireMsg::LogDets(dets));
            }
        }
        Some(AppMsg {
            src,
            tag: wire.tag,
            data: wire.data,
        })
    }

    /// Senders with a queued message that `spec` + the FIFO counter +
    /// the protocol gate would allow delivering *right now*, ordered
    /// by arrival (index 0 is what [`Kernel::try_deliver`] would
    /// take). Each element is a legal alternative next delivery — the
    /// schedule explorer's choice-point set (§III.E: any such order is
    /// supposed to converge). Read-only. Unlike [`Kernel::try_deliver`]
    /// this *does* hold `tracking` + `delivery` together — it is an
    /// explorer/diagnostic path, not the hot path, and a combined
    /// section is the cheapest way to get one consistent eligible-set
    /// cut. The order is the legal forward one.
    pub fn deliverable_sources(&self, spec: RecvSpec) -> Vec<Rank> {
        if self.holds_delivery_in_recovery && self.recovering.load(Ordering::Acquire) {
            return Vec::new();
        }
        self.drain_ingress();
        let trk = self.lock_tracking();
        let del = self.lock_delivery();
        let protocol = &trk.protocol;
        let last_deliver_index = &del.last_deliver_index;
        del.queue.eligible_sources(spec, |src, idx, piggyback| {
            idx == last_deliver_index.get(src) + 1
                && matches!(
                    protocol.deliverable(src, idx, piggyback),
                    DeliveryVerdict::Deliver
                )
        })
    }

    // ---------------------------------------------------------------
    // Checkpointing (lines 32–39)
    // ---------------------------------------------------------------

    /// Should a checkpoint be taken now (between steps)?
    pub fn checkpoint_due(&self, step: u64) -> bool {
        self.lock_recovery()
            .checkpoint_due(self.cfg.checkpoint, step, self.cfg.clock.now())
    }

    /// Take a checkpoint of `app_state` after `step`.
    ///
    /// Locks: `recovery` + `tracking` + `delivery` held together while
    /// the image is assembled — the one operation that genuinely needs
    /// a cross-layer-consistent cut — with the staged log drained
    /// first so the image's log is complete. The `CHECKPOINT_ADVANCE`
    /// broadcast goes out lock-free after all three are released.
    /// `last_send` is snapshotted under the tracking lock, which is
    /// consistent because only the application thread both sends and
    /// checkpoints.
    pub fn do_checkpoint(&self, app_state: Vec<u8>, step: u64) {
        let mut rec = self.lock_recovery();
        self.drain_log_rings(&mut rec);
        let mut trk = self.lock_tracking();
        let del = self.lock_delivery();
        let image = CheckpointImage {
            step,
            app_state,
            protocol: trk.protocol.checkpoint_bytes(),
            last_send: self.last_send_index.snapshot(),
            last_deliver: del.last_deliver_index.clone(),
            log: rec.log.to_entries(),
        };
        rec.ckpt_version += 1;
        let encoded = encode_to_vec(&image);
        self.events.emit(
            self.me,
            EventKind::Checkpoint {
                step,
                bytes: encoded.len(),
            },
        );
        rec.ckpt_store.save(self.me, rec.ckpt_version, &encoded);
        trk.protocol.on_local_checkpoint();
        let total = trk.protocol.delivered_total();
        let mut advances = Vec::with_capacity(self.n.saturating_sub(1));
        for k in 0..self.n {
            if k == self.me {
                continue;
            }
            let delivered = del.last_deliver_index.get(k);
            advances.push((
                k,
                CkptAdvanceWire {
                    delivered_from_you: delivered,
                    total_delivered: total,
                },
            ));
            rec.last_ckpt_deliver_index.set(k, delivered);
        }
        rec.last_ckpt_at = self.cfg.clock.now();
        rec.steps_at_ckpt = step;
        drop(del);
        drop(trk);
        drop(rec);
        // The paper notifies only senders whose messages the
        // checkpoint newly covers; we notify everyone so TAG/TEL peers
        // can also prune determinant state (`total_delivered` is the
        // GC horizon). Log release is idempotent.
        for (k, w) in advances {
            self.send_wire(k, &WireMsg::CkptAdvance(w));
        }
    }

    // ---------------------------------------------------------------
    // Recovery (lines 40–53)
    // ---------------------------------------------------------------

    /// Restore state from a checkpoint image (incarnation side,
    /// lines 41–45). Returns `(step, app_state)` for the application
    /// loop, or [`Fault::Desync`] when the image's protocol snapshot
    /// does not decode — a CRC-intact blob whose contents are not a
    /// protocol state (format drift, a hostile store). On error
    /// nothing was mutated (every protocol decodes before
    /// installing), so the caller may fall back to the initial state
    /// and roll forward through normal recovery instead of aborting
    /// the process. (Algorithm 1's lines 43–44 restore every vector
    /// from `checkpoint.depend_interval` — an obvious typo we
    /// correct.)
    pub fn restore(&self, image: CheckpointImage) -> Result<(u64, Vec<u8>), Fault> {
        let mut rec = self.lock_recovery();
        let mut trk = self.lock_tracking();
        let mut del = self.lock_delivery();
        trk.protocol
            .restore_from_checkpoint(&image.protocol)
            .map_err(|_| Fault::Desync)?;
        self.last_send_index.load_from(&image.last_send);
        rec.restored_send_index = image.last_send;
        del.last_deliver_index = image.last_deliver.clone();
        rec.last_ckpt_deliver_index = image.last_deliver;
        rec.log = SenderLog::from_entries(self.n, image.log);
        self.note_log_peak(&rec);
        rec.ckpt_version = rec
            .ckpt_store
            .latest_version(self.me)
            .unwrap_or(rec.ckpt_version);
        rec.steps_at_ckpt = image.step;
        rec.last_ckpt_at = self.cfg.clock.now();
        Ok((image.step, image.app_state))
    }

    /// Load this rank's latest checkpoint image, if any. A stored blob
    /// that passes its CRC seal but does not decode as an image
    /// (format drift, wrong contents under the key) is as unusable as
    /// a torn one and reads as "no checkpoint" — the incarnation then
    /// restarts from the initial state and rolls forward through
    /// recovery instead of aborting the process.
    pub fn load_checkpoint(&self) -> Option<CheckpointImage> {
        let (_, bytes) = self.lock_recovery().ckpt_store.load_latest(self.me)?;
        lclog_wire::decode_from_slice(&bytes).ok()
    }

    /// Begin incarnation recovery: drive the state machine
    /// `Running → Logging`, broadcast `ROLLBACK` (line 46) and, under
    /// TEL, query the event logger for stable determinants.
    ///
    /// # Panics
    ///
    /// If called twice on one incarnation (the state machine rejects
    /// `begin` outside `Running`).
    pub fn begin_recovery(&self) {
        let mut rec = self.lock_recovery();
        let tr = rec
            .machine
            .begin(self.me, self.logger.is_some(), self.cfg.clock.now());
        self.recovering.store(true, Ordering::Release);
        self.emit_transition(Some(tr));
        self.broadcast_rollback(&mut rec);
        // Degenerate single-rank system: nothing to collect.
        if let Some(done) = rec.machine.try_complete(self.cfg.clock.now()) {
            let mut trk = self.lock_tracking();
            self.finish_sync(&mut trk, done);
        }
    }

    /// Locks: caller holds `recovery`; takes `delivery` briefly for
    /// the counter snapshot. The broadcast itself is lock-free.
    fn broadcast_rollback(&self, rec: &mut RecoveryLayer) {
        rec.rollback_epoch += 1;
        let wire = RollbackWire {
            last_deliver_index: self.lock_delivery().last_deliver_index.as_slice().to_vec(),
            epoch: rec.rollback_epoch,
        };
        let targets = rec.machine.pending_targets();
        self.events.emit(
            self.me,
            EventKind::RollbackBroadcast {
                epoch: rec.rollback_epoch,
            },
        );
        for k in targets {
            self.reliability.send_wire(k, &WireMsg::Rollback(wire.clone()));
        }
        if let Some(logger) = self.logger {
            if rec.machine.needs_logger_sync() {
                self.reliability
                    .send_wire(logger, &WireMsg::LogQuery(self.me as u32));
            }
        }
        rec.machine.note_broadcast(self.cfg.clock.now());
    }

    /// Survivor side of `ROLLBACK` (lines 47–51): answer with our
    /// delivery count and determinant knowledge, then resend logged
    /// messages the failed process lost.
    ///
    /// Locks: `recovery` (staged log drained on entry, so the resend
    /// window is complete) → `tracking` → `delivery`, all released
    /// before the lock-free answer goes out.
    fn handle_rollback(&self, src: Rank, w: RollbackWire) {
        // The rollback vector is the *authoritative* post-restore
        // delivery state of src's new incarnation. Anything we
        // believed beyond it — an ack, or a RESPONSE-based duplicate
        // suppression bound obtained from the pre-crash incarnation
        // moments before it died (the crossing-recoveries race of
        // Fig. 2) — describes deliveries that have been rolled back
        // and must be forgotten, or we would suppress regenerated
        // messages the incarnation still needs.
        let upto = w.last_deliver_index.get(self.me).copied();
        let mut rec = self.lock_recovery();
        self.drain_log_rings(&mut rec);
        if let Some(upto) = upto {
            self.rollback_last_send_index.set(src, upto);
        }
        let lost_after = upto.unwrap_or(0);
        // Logged wire bytes are resent verbatim — refcount bumps, zero
        // payload copies; the original piggyback (and `needs_ack`,
        // which is safe: rendezvous acks are idempotent) ride along
        // exactly as first framed.
        let mut resends: Vec<Bytes> = rec
            .log
            .entries_after(src, lost_after)
            .map(|e| e.to_wire())
            .collect();
        let dets = self.lock_tracking().protocol.determinants_for(src);
        let delivered_from_you = self.lock_delivery().last_deliver_index.get(src);
        drop(rec);
        if !resends.is_empty() {
            self.events.emit(
                self.me,
                EventKind::LogResent {
                    to: src,
                    count: resends.len(),
                },
            );
        }
        if let Some(upto) = upto {
            self.reliability.acked.set(src, upto);
        }
        self.reliability.send_wire(
            src,
            &WireMsg::Response(ResponseWire {
                delivered_from_you,
                dets,
                epoch: w.epoch,
            }),
        );
        for inner in resends.drain(..) {
            self.reliability.send_encoded(src, inner);
        }
        // Anything we had queued from the pre-failure incarnation will
        // be resent/regenerated with identical identities; keeping the
        // queued copies is both correct (dedup by send_index) and
        // faster.
    }

    /// Incarnation side of `RESPONSE` (lines 52–53).
    ///
    /// Locks: `recovery` → `tracking` (recovery info installed and the
    /// barrier possibly lifted with both held); the resupply resends
    /// go out lock-free afterwards.
    fn handle_response(&self, src: Rank, w: ResponseWire) {
        let mut rec = self.lock_recovery();
        self.drain_log_rings(&mut rec);
        self.rollback_last_send_index
            .max_up(src, w.delivered_from_you);
        // The dead incarnation's transport may have been holding sent-
        // but-undelivered messages for retransmission when it crashed;
        // on a lossy fabric those copies are gone for good. Any such
        // message predates the checkpoint (its index is within the
        // restored `last_send`), so re-execution will not regenerate
        // it either — the checkpointed sender log is its only
        // surviving copy. Resend that window; the receiver's dedup
        // absorbs whatever did arrive.
        let resends: Vec<Bytes> = rec
            .log
            .entries_after(src, w.delivered_from_you)
            .filter(|e| e.send_index <= rec.restored_send_index.get(src))
            .map(|e| e.to_wire())
            .collect();
        let (newly, tr) = rec.machine.note_response(src);
        self.emit_transition(tr);
        if newly {
            self.events
                .emit(self.me, EventKind::ResponseReceived { from: src });
        }
        let done = rec.machine.try_complete(self.cfg.clock.now());
        {
            let mut trk = self.lock_tracking();
            if !w.dets.is_empty() {
                trk.protocol.install_recovery_info(w.dets);
            }
            if let Some(done) = done {
                self.finish_sync(&mut trk, done);
            }
        }
        drop(rec);
        if !resends.is_empty() {
            self.events.emit(
                self.me,
                EventKind::LogResent {
                    to: src,
                    count: resends.len(),
                },
            );
        }
        self.reliability.note_consumed(src, w.delivered_from_you);
        for inner in resends {
            self.reliability.send_encoded(src, inner);
        }
    }

    /// The event logger answered our `LOG_QUERY` with the failed
    /// incarnation's stable determinants.
    fn handle_logger_sync(&self, dets: Vec<lclog_core::Determinant>) {
        let mut rec = self.lock_recovery();
        let (_, tr) = rec.machine.note_logger_synced();
        self.emit_transition(tr);
        let done = rec.machine.try_complete(self.cfg.clock.now());
        let mut trk = self.lock_tracking();
        trk.protocol.install_recovery_info(dets);
        if let Some(done) = done {
            self.finish_sync(&mut trk, done);
        }
    }

    /// A certified membership view from the arbiter. Three duties:
    ///
    /// 1. Raise the transport's fence floors, so below-floor
    ///    incarnations are rejected (and notified) from here on — and
    ///    mirror the verdict if the view fences *us*.
    /// 2. Reset the detector's book on every newly-declared rank: the
    ///    successor incarnation starts with a clean silence clock and
    ///    an unlatched suspicion.
    /// 3. **Supervised recovery**: if we are mid-recovery and a rank
    ///    we are still owed a `RESPONSE` by was just declared dead,
    ///    re-drive the `ROLLBACK` broadcast immediately — its
    ///    successor needs our rollback vector, and waiting for the
    ///    retry clock would leave `Replaying{progress}` wedged on a
    ///    corpse for a whole retry interval per cascade link.
    ///
    /// Locks: none of the layer hierarchy until (only when duty 3
    /// applies) `recovery` — the fence and detector updates run on
    /// the lock-free plane and the detector's leaf mutex.
    fn handle_membership(&self, view: MembershipView) {
        let advanced = self
            .reliability
            .transport
            .apply_fence_floors(view.epoch, &view.floor);
        if self.reliability.transport.is_self_fenced() {
            self.fenced.store(true, Ordering::Release);
        }
        if let Some(adv) = &advanced {
            let now = self.cfg.clock.now();
            self.reliability.with_detector(|det| {
                for &r in adv {
                    det.reset_peer(r, now);
                }
            });
        }
        let Some(advanced) = advanced else {
            return; // stale or already-applied view
        };
        if advanced.is_empty() || !self.recovering.load(Ordering::Acquire) {
            return;
        }
        let mut rec = self.lock_recovery();
        if !rec.machine.is_recovering() {
            return;
        }
        let pending = rec.machine.pending_targets();
        if advanced.iter().any(|r| pending.contains(r)) {
            self.broadcast_rollback(&mut rec);
        }
    }

    /// Forced-verdict entry point for deterministic harnesses: apply a
    /// certified membership view exactly as if the arbiter had
    /// delivered it over the wire. The schedule explorer uses this to
    /// make detector outcomes *choice points* — it synthesizes the
    /// `(epoch, floor[])` view a real arbiter would certify for a
    /// chosen verdict and applies it synchronously to each survivor,
    /// instead of waiting on φ-accrual timing that virtual time never
    /// advances past. Semantically identical to receiving
    /// `WireMsg::Membership(view)`; idempotent and safe on stale
    /// views (they are ignored, like any non-advancing view).
    pub fn apply_membership(&self, view: MembershipView) {
        self.handle_membership(view);
    }

    /// Periodic maintenance — the kernel tick that closes the batching
    /// epochs: opportunistically drain the staged sender log, admit
    /// staged ingress, drive the transport's retransmission timers and
    /// the failure detector (liveness feed, forced suspicions,
    /// threshold crossings, idle heartbeats), flush coalesced acks,
    /// then rebroadcast `ROLLBACK` to peers that have not responded
    /// (they may have been dead when the first broadcast went out —
    /// the multi-failure case of Fig. 2).
    pub fn tick(&self) {
        // Sparse-codec resyncs first: frames queued behind an
        // undecodable one stay parked until the snapshot round-trip
        // completes, so the *first* request goes out immediately.
        // Re-requests are paced by a per-source full-jitter backoff:
        // the protocol re-queues the request on every gate check while
        // the snapshot is in flight, and re-sending each tick would be
        // a request storm that the snapshot sender answers in kind.
        let resyncs = self.lock_tracking().protocol.take_resync_requests();
        if !resyncs.is_empty() {
            let now = self.cfg.clock.now();
            for src in self.resync_pacer.lock().admit(&resyncs, now) {
                self.send_wire(src, &WireMsg::ResyncReq(self.me as u32));
            }
        }
        // Opportunistic log-ring drain: bound how long staged entries
        // can sit in their rings without ever blocking the tick behind
        // a busy recovery lock (whoever holds it drains on entry).
        if let Some(mut rec) = self.try_lock_recovery() {
            self.drain_log_rings(&mut rec);
        }
        self.drain_ingress();
        let transport = &self.reliability.transport;
        transport.tick();
        // (rank, believed incarnation, φ·100) per new suspicion.
        let mut suspects: Vec<(Rank, u64, u64)> = Vec::new();
        self.reliability.with_detector(|det| {
            let now = self.cfg.clock.now();
            transport.take_heard(|r| det.heard(r, now));
            // Budget exhaustion = forced threshold crossing.
            let mut crossed: Vec<(Rank, u64)> = Vec::new();
            for r in transport.take_pending_suspects() {
                if det.force_suspect(r) {
                    crossed.push((r, (det.phi(r, now) * 100.0) as u64));
                }
            }
            crossed.extend(det.poll(now));
            if det.heartbeat_due(now) {
                for k in 0..self.n {
                    if k != self.me {
                        transport.send_heartbeat(k);
                    }
                }
            }
            // The believed incarnation: the highest one we have
            // evidence of — data-frame epochs or heartbeats seen
            // (`peer_incarnation`), or the membership floor if a
            // successor has been declared but never spoke. A
            // stale belief is harmless: the arbiter answers it
            // with the current view instead of a declaration.
            for (r, phi_x100) in crossed {
                let believed = transport
                    .peer_incarnation(r)
                    .max(transport.fence_floor(r))
                    .max(1);
                suspects.push((r, believed, phi_x100));
            }
        });
        self.reliability.flush_acks();
        if transport.is_self_fenced() {
            self.fenced.store(true, Ordering::Release);
        }
        for (r, incarnation, phi_x100) in suspects {
            self.events.emit(
                self.me,
                EventKind::PeerSuspected {
                    peer: r,
                    incarnation,
                    phi_x100,
                },
            );
            self.send_wire(
                crate::logger_rank(self.n),
                &WireMsg::Suspect(SuspectWire {
                    rank: r as u32,
                    incarnation,
                }),
            );
        }
        if self.recovering.load(Ordering::Acquire) {
            let mut rec = self.lock_recovery();
            if rec
                .machine
                .rebroadcast_due(self.cfg.retry_interval, self.cfg.clock.now())
            {
                self.broadcast_rollback(&mut rec);
            }
        }
    }

    /// The backing store checkpoints were written to (tests re-create
    /// kernels around the same storage).
    #[cfg(test)]
    pub(crate) fn ckpt_storage(&self) -> std::sync::Arc<dyn lclog_stable::StableStorage> {
        std::sync::Arc::clone(self.lock_recovery().ckpt_store.storage())
    }
}

/// Per-source pacing of outgoing `RESYNC_REQ` frames.
///
/// The sparse protocol queues a resync request every time a gate check
/// hits an undecodable frame, which is every delivery attempt while
/// the snapshot round-trip is in flight. The pacer collapses that
/// stream into: one immediate request, then re-requests only after a
/// full-jitter backoff deadline passes (covering the lost-`SNAP` /
/// lost-`REQ` cases), with the schedule reset once a snapshot arrives.
/// The backoff is clock-free (seeded jitter), so paced schedules stay
/// deterministic under the explorer's virtual clock.
struct ResyncPacer {
    /// Per-source schedule; allocated lazily (resyncs are rare).
    slots: Vec<Option<ResyncSlot>>,
    initial: Duration,
    cap: Duration,
    seed: u64,
}

struct ResyncSlot {
    backoff: RetryBackoff,
    /// Next instant a re-request may go out.
    deadline: std::time::Instant,
}

impl ResyncPacer {
    fn new(me: Rank, n: usize, cfg: &RunConfig) -> Self {
        ResyncPacer {
            slots: (0..n).map(|_| None).collect(),
            // A resync is one wire round-trip, same scale as a
            // retransmission; reuse the transport's envelope.
            initial: cfg.retransmit_timeout,
            cap: cfg.retransmit_cap,
            seed: 0x5EED_5EED ^ ((me as u64) << 32),
        }
    }

    /// Filter the protocol's drained requests down to the ones whose
    /// schedule allows a send now. First request per source goes out
    /// immediately; later ones wait out the jittered deadline.
    fn admit(&mut self, requests: &[Rank], now: std::time::Instant) -> Vec<Rank> {
        let mut due = Vec::new();
        for &src in requests {
            if src >= self.slots.len() {
                continue;
            }
            match &mut self.slots[src] {
                slot @ None => {
                    let mut backoff =
                        RetryBackoff::new(self.initial, self.cap, self.seed ^ src as u64);
                    let wait = self.initial / 2 + backoff.next_wait();
                    *slot = Some(ResyncSlot {
                        backoff,
                        deadline: now + wait,
                    });
                    due.push(src);
                }
                Some(slot) => {
                    if now >= slot.deadline {
                        let wait = self.initial / 2 + slot.backoff.next_wait();
                        slot.deadline = now + wait;
                        due.push(src);
                    }
                }
            }
        }
        due
    }

    /// A snapshot from `src` arrived: restart that source's schedule
    /// so the *next* desync gets a fresh fast first request.
    fn settle(&mut self, src: Rank) {
        if let Some(slot) = self.slots.get_mut(src) {
            *slot = None;
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Canonical lock order, same as every other multi-layer path.
        let rec = self.lock_recovery();
        let trk = self.lock_tracking();
        let del = self.lock_delivery();
        let staged: Vec<(usize, usize, usize)> = self
            .log_stage
            .iter()
            .enumerate()
            .filter_map(|(dst, slot)| {
                let ring = slot.get()?;
                (!ring.is_empty()).then(|| (dst, ring.len(), ring.capacity()))
            })
            .collect();
        let transport = &self.reliability.transport;
        f.debug_struct("Kernel")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("protocol", &self.cfg.protocol)
            .field("queued_len", &del.queue.len())
            .field("queued", &del.queue.summary())
            .field("log_bytes", &rec.log.bytes())
            .field("log_entries", &rec.log.len())
            .field("log_staged (dst, len, cap)", &staged)
            .field("last_send", &self.last_send_index)
            .field("last_deliver", &del.last_deliver_index.as_slice())
            .field("delivered_total", &trk.protocol.delivered_total())
            .field("recovery_phase", rec.machine.phase())
            .field("dup_discarded", &transport.dup_discarded())
            .field("corrupt_detected", &transport.corrupt_detected())
            .field("fence_epoch", &transport.fence_epoch())
            .field("fenced_rejected", &transport.fenced_rejected())
            .field("channels", &transport.channel_summary())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use lclog_core::ProtocolKind;
    use lclog_simnet::NetConfig;
    use lclog_stable::MemStore;
    use std::sync::Arc;
    use std::time::Duration;

    fn harness(n: usize, kind: ProtocolKind) -> (Vec<Kernel>, SimNet, Vec<lclog_simnet::Endpoint>) {
        let net = SimNet::new(n + 1, NetConfig::direct());
        let store = CheckpointStore::new(Arc::new(MemStore::new()));
        let endpoints: Vec<_> = (0..n).map(|r| net.attach(r)).collect();
        let kernels = (0..n)
            .map(|r| {
                Kernel::new(
                    r,
                    n,
                    RunConfig::new(kind),
                    net.clone(),
                    store.clone(),
                )
            })
            .collect();
        (kernels, net, endpoints)
    }

    /// Drain one endpoint fully into its kernel — `&Kernel`: every
    /// runtime-path method is lock-internal now.
    fn pump(kernel: &Kernel, ep: &lclog_simnet::Endpoint) {
        while let Ok(env) = ep.try_recv() {
            kernel.ingest(env);
        }
    }

    #[test]
    fn send_deliver_roundtrip_updates_counters() {
        let (mut ks, _net, eps) = harness(2, ProtocolKind::Tdi);
        let (k0, k1) = {
            let mut it = ks.drain(..);
            (it.next().unwrap(), it.next().unwrap())
        };
        let (idx, sent) = k0.app_send(1, 7, Bytes::from_static(b"hello"), false);
        assert_eq!(idx, 1);
        assert!(sent);
        let snap = k0.snapshot();
        assert_eq!(snap.stats.sends, 1);
        assert_eq!(snap.stats.piggyback_ids, 2); // TDI: n identifiers
        pump(&k1, &eps[1]);
        let msg = k1.try_deliver(RecvSpec::any()).expect("deliverable");
        assert_eq!(msg.src, 0);
        assert_eq!(msg.tag, 7);
        assert_eq!(&msg.data[..], b"hello");
        assert_eq!(k1.snapshot().stats.delivers, 1);
        assert!(k1.try_deliver(RecvSpec::any()).is_none());
    }

    #[test]
    fn fifo_gap_blocks_delivery_until_predecessor_arrives() {
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        // Send two messages, but ingest only the second first.
        k0.app_send(1, 0, Bytes::from_static(b"first"), false);
        k0.app_send(1, 0, Bytes::from_static(b"second"), false);
        let first = eps[1].try_recv().unwrap();
        let second = eps[1].try_recv().unwrap();
        k1.ingest(second);
        assert!(k1.try_deliver(RecvSpec::any()).is_none(), "gap must block");
        k1.ingest(first);
        assert_eq!(&k1.try_deliver(RecvSpec::any()).unwrap().data[..], b"first");
        assert_eq!(&k1.try_deliver(RecvSpec::any()).unwrap().data[..], b"second");
        drop(net);
    }

    #[test]
    fn repetitive_message_discarded_and_acked() {
        let (mut ks, _net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        k0.app_send(1, 0, Bytes::from_static(b"m"), true);
        pump(&k1, &eps[1]);
        k1.try_deliver(RecvSpec::any()).unwrap();
        // Ack for the first transmission.
        pump(&k0, &eps[0]);
        assert_eq!(k0.rendezvous_progress(1), (1, false));
        // Re-transmit the same message (as a recovering sender would).
        k0.resend_unacked(1, 1);
        pump(&k1, &eps[1]);
        // Discarded as repetitive — not deliverable again…
        assert!(k1.try_deliver(RecvSpec::any()).is_none());
        // …but still acknowledged (Fig. 3's duplicate handling).
        pump(&k0, &eps[0]);
        assert_eq!(k0.rendezvous_progress(1).0, 1);
    }

    #[test]
    fn checkpoint_advance_releases_peer_log() {
        let (mut ks, _net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        k0.app_send(1, 0, Bytes::from_static(b"a"), false);
        k0.app_send(1, 0, Bytes::from_static(b"b"), false);
        assert!(k0.snapshot().log_bytes > 0);
        pump(&k1, &eps[1]);
        k1.try_deliver(RecvSpec::any()).unwrap();
        k1.try_deliver(RecvSpec::any()).unwrap();
        // Rank 1 checkpoints: its CkptAdvance lets rank 0 GC both
        // entries.
        k1.do_checkpoint(vec![], 1);
        pump(&k0, &eps[0]);
        let snap = k0.snapshot();
        assert_eq!(snap.log_bytes, 0);
        assert_eq!(snap.log_entries, 0);
    }

    #[test]
    fn rollback_resends_lost_messages_with_logged_piggyback() {
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        // Rank 0 sends 3 messages; rank 1 delivers only the first,
        // checkpoints, then fails.
        for b in [&b"a"[..], b"b", b"c"] {
            k0.app_send(1, 0, Bytes::copy_from_slice(b), false);
        }
        pump(&k1, &eps[1]);
        k1.try_deliver(RecvSpec::any()).unwrap();
        k1.do_checkpoint(vec![], 1);
        pump(&k0, &eps[0]); // absorb CkptAdvance (releases "a")
        // Crash rank 1, respawn.
        net.kill(1);
        let ep1b = net.respawn(1);
        let store = CheckpointStore::new(k1.ckpt_storage());
        let mut k1b = Kernel::new(1, 2, RunConfig::new(ProtocolKind::Tdi), net.clone(), store);
        k1b.set_incarnation(2);
        let image = k1b.load_checkpoint().expect("checkpoint exists");
        let (step, _app) = k1b.restore(image).expect("image restores");
        assert_eq!(step, 1);
        assert_eq!(k1b.recovery_phase(), RecoveryPhase::Running);
        k1b.begin_recovery();
        assert!(k1b.is_recovering());
        assert_eq!(k1b.recovery_phase(), RecoveryPhase::Logging);
        // Rank 0 handles the rollback: responds + resends b, c.
        pump(&k0, &eps[0]);
        // Incarnation ingests the response and resends.
        while let Ok(env) = ep1b.try_recv() {
            k1b.ingest(env);
        }
        assert!(!k1b.is_recovering(), "response received");
        assert_eq!(k1b.recovery_phase(), RecoveryPhase::Synced);
        let m = k1b.try_deliver(RecvSpec::any()).unwrap();
        assert_eq!(&m.data[..], b"b");
        let m = k1b.try_deliver(RecvSpec::any()).unwrap();
        assert_eq!(&m.data[..], b"c");
    }

    /// Regression: a stored generation that passes its CRC seal but is
    /// not a checkpoint image (format drift, wrong contents under the
    /// key) used to abort the process with an `expect`; it must read
    /// as "no checkpoint" so the incarnation restarts from the initial
    /// state and rolls forward through recovery.
    #[test]
    fn crc_valid_garbage_generation_reads_as_no_checkpoint() {
        let (mut ks, _net, _eps) = harness(1, ProtocolKind::Tdi);
        let k0 = ks.pop().unwrap();
        // CheckpointStore::save seals whatever bytes it is given, so
        // this plants a CRC-intact blob that is not an image.
        CheckpointStore::new(k0.ckpt_storage()).save(0, 1, b"not a checkpoint image");
        assert!(k0.load_checkpoint().is_none());
    }

    /// Regression: an image whose protocol snapshot does not decode
    /// used to abort the process inside `restore`; it must surface as
    /// a typed fault, leaving the kernel untouched so the caller can
    /// fall back to the initial state and recover normally.
    #[test]
    fn restore_with_undecodable_protocol_state_is_a_typed_fault() {
        let (mut ks, _net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        k1.do_checkpoint(b"app".to_vec(), 1);
        let mut image = k1.load_checkpoint().expect("checkpoint exists");
        image.protocol = vec![0xFF; 3]; // not a TDI depend vector
        assert_eq!(k1.restore(image), Err(Fault::Desync));
        // The kernel is still functional after the failed restore.
        k0.app_send(1, 7, Bytes::from_static(b"still alive"), false);
        pump(&k1, &eps[1]);
        let m = k1.try_deliver(RecvSpec::any()).expect("deliverable");
        assert_eq!(&m.data[..], b"still alive");
    }

    #[test]
    fn recovering_sender_suppresses_already_delivered_sends() {
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        // Rank 0 sends two messages; rank 1 delivers both. Rank 0 then
        // fails before checkpointing.
        k0.app_send(1, 0, Bytes::from_static(b"x"), false);
        k0.app_send(1, 0, Bytes::from_static(b"y"), false);
        pump(&k1, &eps[1]);
        k1.try_deliver(RecvSpec::any()).unwrap();
        k1.try_deliver(RecvSpec::any()).unwrap();
        net.kill(0);
        let ep0b = net.respawn(0);
        let store = CheckpointStore::new(k0.ckpt_storage());
        let mut k0b = Kernel::new(0, 2, RunConfig::new(ProtocolKind::Tdi), net.clone(), store);
        k0b.set_incarnation(2);
        // No checkpoint: fresh state, recover from scratch.
        assert!(k0b.load_checkpoint().is_none());
        k0b.begin_recovery();
        pump(&k1, &eps[1]); // rank 1 responds: delivered 2 from you
        while let Ok(env) = ep0b.try_recv() {
            k0b.ingest(env);
        }
        // Roll-forward: rank 0 re-executes both sends; both must be
        // suppressed (logged but not transmitted).
        let (_, sent) = k0b.app_send(1, 0, Bytes::from_static(b"x"), false);
        assert!(!sent, "send 1 suppressed by RESPONSE");
        let (_, sent) = k0b.app_send(1, 0, Bytes::from_static(b"y"), false);
        assert!(!sent, "send 2 suppressed by RESPONSE");
        let (_, sent) = k0b.app_send(1, 0, Bytes::from_static(b"z"), false);
        assert!(sent, "new send transmitted");
        // Log was rebuilt for all three.
        assert_eq!(k0b.snapshot().log_entries, 3);
    }

    #[test]
    fn recovering_sender_resupplies_in_flight_sends_from_checkpointed_log() {
        // The dual of the suppression test: rank 0 sends two messages
        // whose frames are lost on the wire, checkpoints (recording
        // them in last_send and in the sender log), then dies. Its old
        // transport's retransmission window dies with it, and the new
        // incarnation re-executes from *after* the sends — so the only
        // surviving copies are in the checkpointed log, and the
        // RESPONSE (delivered 0 from you) must trigger their resend.
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        k0.app_send(1, 0, Bytes::from_static(b"a"), false);
        k0.app_send(1, 0, Bytes::from_static(b"b"), false);
        // The fabric eats both frames (chaos drop) — and the
        // checkpoint's CkptAdvance with them.
        k0.do_checkpoint(vec![], 1);
        while eps[1].try_recv().is_ok() {}
        net.kill(0);
        let ep0b = net.respawn(0);
        let store = CheckpointStore::new(k0.ckpt_storage());
        let mut k0b = Kernel::new(0, 2, RunConfig::new(ProtocolKind::Tdi), net.clone(), store);
        k0b.set_incarnation(2);
        let image = k0b.load_checkpoint().expect("checkpoint exists");
        k0b.restore(image).expect("image restores");
        k0b.begin_recovery();
        pump(&k1, &eps[1]); // ROLLBACK in, RESPONSE (delivered 0) out
        while let Ok(env) = ep0b.try_recv() {
            k0b.ingest(env);
        }
        assert!(!k0b.is_recovering());
        // The RESPONSE resupplied both logged sends.
        pump(&k1, &eps[1]);
        assert_eq!(&k1.try_deliver(RecvSpec::any()).unwrap().data[..], b"a");
        assert_eq!(&k1.try_deliver(RecvSpec::any()).unwrap().data[..], b"b");
    }

    #[test]
    fn rollback_rebroadcast_reaches_late_incarnations() {
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        drop(k1);
        // Both ranks die "simultaneously"; rank 0 recovers first and
        // broadcasts while rank 1 is still dead.
        net.kill(0);
        net.kill(1);
        let ep0b = net.respawn(0);
        let store = CheckpointStore::new(k0.ckpt_storage());
        let mut cfg = RunConfig::new(ProtocolKind::Tdi);
        cfg.retry_interval = Duration::from_millis(1);
        let mut k0b = Kernel::new(0, 2, cfg.clone(), net.clone(), store.clone());
        k0b.set_incarnation(2);
        k0b.begin_recovery();
        // The first broadcast is dropped (rank 1 dead).
        std::thread::sleep(Duration::from_millis(2));
        let ep1b = net.respawn(1);
        let mut k1b = Kernel::new(1, 2, cfg, net.clone(), store);
        k1b.set_incarnation(2);
        k1b.begin_recovery();
        // k0's tick rebroadcasts; k1 (now alive) answers.
        k0b.tick();
        while let Ok(env) = ep1b.try_recv() {
            k1b.ingest(env);
        }
        while let Ok(env) = ep0b.try_recv() {
            k0b.ingest(env);
        }
        // One more round so k1's own rollback (sent before k0's
        // rebroadcast reached it) also completes.
        k1b.tick();
        while let Ok(env) = ep0b.try_recv() {
            k0b.ingest(env);
        }
        while let Ok(env) = ep1b.try_recv() {
            k1b.ingest(env);
        }
        assert!(!k0b.is_recovering());
        assert!(!k1b.is_recovering());
        assert_eq!(k0b.recovery_phase(), RecoveryPhase::Synced);
        assert_eq!(k1b.recovery_phase(), RecoveryPhase::Synced);
        drop(eps);
    }

    // Regression: `on_deliver` rejecting a message the delivery gate
    // approved used to hit `expect("delivery gate approved this
    // message")` and abort the whole process. TAG's gate never decodes
    // the piggyback (PWD records order, it does not constrain it), so
    // a poisoned piggyback sails through the gate and fails only in
    // the merge — which must now fault this one rank, not abort.
    #[test]
    fn poisoned_piggyback_faults_rank_instead_of_aborting() {
        let (mut ks, _net, _eps) = harness(2, ProtocolKind::Tag);
        let mut k1 = ks.pop().unwrap();
        let sink = EventSink::recording();
        k1.set_event_sink(sink.clone());
        assert!(!k1.is_desynced());
        k1.ingest_app(
            0,
            AppWire {
                tag: 3,
                send_index: 1,
                piggyback: Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef]),
                needs_ack: false,
                data: Bytes::from_static(b"poison"),
            },
        );
        // The gate approves (FIFO next + PWD records any order), the
        // merge rejects: the message is discarded, not delivered.
        assert!(k1.try_deliver(RecvSpec::any()).is_none());
        assert!(k1.is_desynced(), "rank must be marked desynchronized");
        let snap = k1.snapshot();
        assert_eq!(snap.stats.delivers, 0, "merge failure must not count");
        assert!(
            sink.take().iter().any(|e| matches!(
                e.kind,
                EventKind::TrackingDesync { src: 0, send_index: 1 }
            )),
            "timeline must record the desync"
        );
    }

    // Duplicate-suppression audit: a respawned incarnation re-executes
    // its sends with *reused* send_indexes. If the receiver still holds
    // the pre-crash copy in its queue, the resend must be recognized as
    // the same message — delivered exactly once, neither wrongly
    // dropped (it was never delivered) nor double-delivered.
    #[test]
    fn reused_send_index_across_incarnations_delivers_exactly_once() {
        let (mut ks, net, eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = ks.pop().unwrap();
        // Incarnation 1 of rank 0 sends; rank 1 queues but does NOT
        // deliver before rank 0 dies without a checkpoint.
        k0.app_send(1, 0, Bytes::from_static(b"once"), false);
        pump(&k1, &eps[1]);
        net.kill(0);
        let ep0b = net.respawn(0);
        let store = CheckpointStore::new(k0.ckpt_storage());
        let mut k0b = Kernel::new(0, 2, RunConfig::new(ProtocolKind::Tdi), net.clone(), store);
        k0b.set_incarnation(2);
        k0b.begin_recovery();
        pump(&k1, &eps[1]); // ROLLBACK in → RESPONSE (delivered 0 from you) out
        while let Ok(env) = ep0b.try_recv() {
            k0b.ingest(env);
        }
        assert!(!k0b.is_recovering());
        // Roll-forward regenerates send_index 1. Rank 1 never delivered
        // it, so suppression must NOT swallow it.
        let (idx, sent) = k0b.app_send(1, 0, Bytes::from_static(b"once"), false);
        assert_eq!(idx, 1, "re-execution reuses the send_index");
        assert!(sent, "undelivered send must be retransmitted");
        // Rank 1 now holds two copies of (src 0, send_index 1): the
        // queued pre-crash one and the incarnation-2 resend.
        pump(&k1, &eps[1]);
        let m = k1.try_deliver(RecvSpec::any()).expect("delivered exactly once");
        assert_eq!(m.src, 0);
        assert_eq!(&m.data[..], b"once");
        assert!(
            k1.try_deliver(RecvSpec::any()).is_none(),
            "the duplicate copy must not deliver a second time"
        );
        assert_eq!(k1.snapshot().stats.delivers, 1);
    }

    #[test]
    fn concurrent_send_and_ingest_do_not_serialize_or_corrupt() {
        // The point of the lock split: rank 0's app thread hammers
        // app_send while another thread concurrently ingests rank 0's
        // inbound acks — the two paths share no lock except the
        // reliability leaf. Assert the counters come out exact.
        let (mut ks, _net, mut eps) = harness(2, ProtocolKind::Tdi);
        let k1 = ks.pop().unwrap();
        let k0 = Arc::new(ks.pop().unwrap());
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let sends = 2_000u64;
        let ingester = {
            let k0 = Arc::clone(&k0);
            std::thread::spawn(move || {
                // Every rendezvous send produces exactly one Ack frame.
                let mut seen = 0u64;
                while seen < sends {
                    match ep0.try_recv() {
                        Ok(env) => {
                            k0.ingest(env);
                            seen += 1;
                        }
                        Err(_) => std::hint::spin_loop(),
                    }
                }
            })
        };
        for i in 0..sends {
            k0.app_send(1, 0, Bytes::from(vec![i as u8; 16]), true);
            // Keep rank 1 consuming so acks flow back.
            pump(&k1, &ep1);
            while k1.try_deliver(RecvSpec::any()).is_some() {}
        }
        pump(&k1, &ep1);
        while k1.try_deliver(RecvSpec::any()).is_some() {}
        ingester.join().unwrap();
        assert_eq!(k0.snapshot().stats.sends, sends);
        assert_eq!(k1.snapshot().stats.delivers, sends);
    }

    #[test]
    fn resync_pacer_admits_boundedly_and_resets_on_settle() {
        let cfg = RunConfig::new(ProtocolKind::TdiSparse(64));
        let mut pacer = ResyncPacer::new(1, 2, &cfg);
        let t0 = std::time::Instant::now();
        // The protocol re-queues the request on every gate check, so
        // the pacer sees the same source once per tick. One simulated
        // tick per millisecond for 400 ms.
        let mut admitted = 0usize;
        let mut first_admitted = false;
        for ms in 0..400u64 {
            let now = t0 + Duration::from_millis(ms);
            let due = pacer.admit(&[0], now);
            if ms == 0 {
                first_admitted = !due.is_empty();
            }
            admitted += due.len();
        }
        assert!(first_admitted, "first request must go out immediately");
        assert!(admitted >= 2, "deadline passing must re-request: {admitted}");
        assert!(
            admitted <= 20,
            "request storm: {admitted} sends in 400 ticks"
        );
        // Snapshot arrived: the schedule restarts, so the next desync
        // gets a fresh immediate first request.
        pacer.settle(0);
        let due = pacer.admit(&[0], t0 + Duration::from_millis(400));
        assert_eq!(due, vec![0]);
    }

    #[test]
    fn lost_resync_snap_converges_without_request_storm() {
        use crate::clock::Clock;
        use lclog_simnet::SimClock;

        // Two kernels under TDI-S on a virtual clock. Rank 1's sparse
        // receiver is put into the needs-resync state the same way the
        // codec's own unit test does it — a delta frame whose FULL
        // predecessor it never saw — then the *kernel* machinery runs
        // for real: tick() drains the protocol's re-requests, the
        // pacer gates them, and the RESYNC_REQ/RESYNC_SNAP round-trip
        // crosses the wire.
        let n = 2;
        let sim = SimClock::new();
        let net = SimNet::new(n + 1, NetConfig::direct());
        let store = CheckpointStore::new(Arc::new(MemStore::new()));
        let endpoints: Vec<_> = (0..n).map(|r| net.attach(r)).collect();
        let kernels: Vec<Kernel> = (0..n)
            .map(|r| {
                let cfg = RunConfig::new(ProtocolKind::TdiSparse(64))
                    .with_clock(Clock::Sim(sim.clone()));
                Kernel::new(r, n, cfg, net.clone(), store.clone())
            })
            .collect();

        // A throwaway sender protocol manufactures a mid-chain delta
        // frame (its first frame per channel is FULL, later ones are
        // deltas).
        let mut side_sender = make_protocol(ProtocolKind::TdiSparse(64), 0, n);
        let _full = side_sender.on_send(1, 1);
        let delta = side_sender.on_send(1, 2).piggyback;
        assert_eq!(
            kernels[1]
                .tracking
                .lock()
                .protocol
                .deliverable(0, 2, &delta),
            DeliveryVerdict::Wait,
            "delta without base must wait and queue a resync request"
        );
        // Rank 0's kernel must answer snapshot requests with the state
        // that actually produced the delta, so install the side sender
        // as its live protocol.
        kernels[0].tracking.lock().protocol = side_sender;

        // Simulate the stall: rank 1's app keeps polling (each gate
        // check re-queues the request) and the kernel ticks once per
        // simulated millisecond. Rank 0 receives the REQ and answers
        // with a SNAP, but rank 1 never ingests it — the lost-snapshot
        // window.
        for _ in 0..400 {
            sim.advance(Duration::from_millis(1));
            let _ = kernels[1]
                .tracking
                .lock()
                .protocol
                .deliverable(0, 2, &delta);
            kernels[1].tick();
            while let Ok(env) = endpoints[0].try_recv() {
                kernels[0].ingest(env);
            }
            kernels[0].tick();
            // The SNAP replies (and rank 0's acks) park unread at
            // rank 1's endpoint — the lost-snapshot window.
        }
        // The pacer's backoff attempt counter is exactly the number of
        // `RESYNC_REQ` frames the kernel *originated* (transport-level
        // retransmission of unacked frames is bounded separately by
        // the retransmit budget, so it is excluded here on purpose).
        let originated = {
            let pacer = kernels[1].resync_pacer.lock();
            pacer.slots[0].as_ref().expect("slot live while desynced").backoff.attempt()
        };
        assert!(
            originated >= 2,
            "a lost snapshot must be re-requested: {originated}"
        );
        assert!(
            originated <= 25,
            "request storm: {originated} REQ frames originated in 400 ticks"
        );

        // The "lost" snapshot finally arrives (any retransmitted copy
        // will do): the channel heals and the pacer schedule resets.
        while let Ok(env) = endpoints[1].try_recv() {
            kernels[1].ingest(env);
        }
        assert_eq!(
            kernels[1]
                .tracking
                .lock()
                .protocol
                .deliverable(0, 2, &delta),
            DeliveryVerdict::Deliver,
            "installed snapshot must unblock the parked delta"
        );
        assert!(kernels[1].resync_pacer.lock().slots[0].is_none());
    }
}
