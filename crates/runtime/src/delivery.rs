//! The delivery layer: the receiving queue (queue "B" of Fig. 4b)
//! plus the per-sender FIFO delivery counter — everything between "a
//! message was ingested" and "the application got it" except the
//! protocol's own dependency gate, which lives in the tracking layer.
//!
//! Owns [`RecvQueue`] and `last_deliver_index` under one lock so the
//! comm thread's enqueue and the app thread's dequeue (`try_deliver`)
//! serialize only against each other — never against an `app_send` on
//! the outbound side.
//!
//! Admission is batched (DESIGN.md §11): inbound app wires stage in
//! per-sender ingress rings and the kernel's `drain_ingress` admits a
//! whole batch under a *single* `delivery` acquisition, sending any
//! re-acks owed to repetitive rendezvous duplicates after the lock is
//! released. One lock round per drained batch, not per message.

use crate::message::AppWire;
use crate::recvq::{Pending, RecvQueue};
use lclog_core::{CounterVector, Rank};

/// What [`Delivery::admit`] decided about an ingested application
/// message.
pub(crate) enum Admit {
    /// Queued for delivery.
    Queued,
    /// Repetitive (§III.C.3): already consumed before — discarded, and
    /// the sender must be re-acked if it asked for one.
    Repetitive { needs_ack: bool, send_index: u64 },
    /// A copy with the same identity is already queued; drop silently.
    Duplicate,
}

/// Receiving queue + per-sender FIFO delivery counters.
pub(crate) struct Delivery {
    pub queue: RecvQueue,
    /// `last_deliver_index` vector (Algorithm 1 line 17).
    pub last_deliver_index: CounterVector,
}

impl Delivery {
    pub fn new(n: usize) -> Self {
        Delivery {
            queue: RecvQueue::with_ranks(n),
            last_deliver_index: CounterVector::zeroed(n),
        }
    }

    /// Admission control for an ingested application message
    /// (repetitive-message identification + in-queue dedup).
    pub fn admit(&mut self, src: Rank, wire: AppWire) -> Admit {
        // Repetitive-message identification (§III.C.3): the original
        // was already consumed, so discard — and acknowledge, because
        // the sender may be blocked on this retransmission.
        if wire.send_index <= self.last_deliver_index.get(src) {
            return Admit::Repetitive {
                needs_ack: wire.needs_ack,
                send_index: wire.send_index,
            };
        }
        // A copy is already queued (recovery resend/retransmission
        // crossing): drop silently; the queued copy's delivery will
        // acknowledge.
        if self.queue.contains(src, wire.send_index) {
            return Admit::Duplicate;
        }
        // Rendezvous sends are acknowledged at *delivery*, not
        // ingestion: §IV.B's observation that the communication
        // subsystem cannot buffer a whole large message, so the sender
        // stays blocked until the receiver transits from computing (or
        // recovering) to receiving.
        self.queue.push(Pending { src, wire });
        Admit::Queued
    }

    /// Bump the delivery counter for `src` and prune queued copies the
    /// counter now covers. Returns the new counter value.
    pub fn note_delivered(&mut self, src: Rank) -> u64 {
        let upto = self.last_deliver_index.bump(src);
        // Stale duplicates of already-delivered messages (recovery
        // resend crossings) would otherwise linger in the queue
        // forever.
        self.queue.drop_repetitive(src, upto);
        upto
    }
}
