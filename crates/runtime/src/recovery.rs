//! The checkpoint/recovery layer: an explicit typed state machine for
//! incarnation recovery (Algorithm 1 lines 32–53) plus the state a
//! checkpoint durably captures — the sender-based message log and the
//! checkpoint-store plumbing.
//!
//! This is the outermost layer of the kernel's lock hierarchy (see
//! [`crate::kernel`] for the ordering rules) — and since the staged
//! sender-log rings it is a **cold** lock: `app_send` stages its log
//! entry in a lock-free per-destination ring instead of taking this
//! lock, and only the rare recovery/checkpoint control paths
//! (`ROLLBACK`, `RESPONSE`, `CHECKPOINT_ADVANCE`, checkpoints,
//! snapshots, the tick's opportunistic drain) acquire it — each one
//! draining the rings on entry so the log it observes is complete.
//!
//! ## The recovery state machine
//!
//! ```text
//!            begin()          first recovery info       all info in
//!  Running ──────────▶ Logging ──────────────▶ Replaying{progress} ──▶ Synced
//!                         │                                            ▲
//!                         └────────── nothing to collect (n = 1) ──────┘
//! ```
//!
//! * [`RecoveryPhase::Running`] — normal forward execution; the state
//!   every first incarnation lives in for its whole life.
//! * [`RecoveryPhase::Logging`] — the incarnation has restored its
//!   checkpoint and broadcast `ROLLBACK` (line 46); survivors are
//!   consulting their sender logs. No `RESPONSE` has arrived yet.
//! * [`RecoveryPhase::Replaying`] — recovery information is flowing
//!   back and logged messages are being replayed; `progress` counts
//!   the contributions (survivor `RESPONSE`s + the event-logger
//!   answer) collected so far.
//! * [`RecoveryPhase::Synced`] — every survivor (and the event logger,
//!   when the protocol uses one) has answered; the PWD roll-forward
//!   barrier is lifted. Terminal within an incarnation: re-entering
//!   `Logging` or `Replaying` without a fresh incarnation is a
//!   protocol bug and panics.
//!
//! Stale recovery information arriving after `Synced` (a survivor
//! answering a rebroadcast it had already answered, or a retransmitted
//! `RESPONSE`) is a legal no-op — the chaos fabric makes such
//! duplicates routine. Calling [`RecoveryMachine::begin`] anywhere but
//! `Running` is illegal and panics: one incarnation recovers at most
//! once.

use crate::config::CheckpointPolicy;
use crate::log::SenderLog;
use lclog_core::{CounterVector, Rank};
use lclog_stable::CheckpointStore;
use std::time::{Duration, Instant};

/// Where an incarnation stands in its recovery lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// Normal forward execution (initial incarnation state).
    Running,
    /// `ROLLBACK` broadcast; waiting for the first recovery answer.
    Logging,
    /// Recovery information arriving; logged messages replaying.
    Replaying {
        /// Recovery contributions (`RESPONSE`s + logger answer)
        /// collected so far.
        progress: u64,
    },
    /// All recovery information collected; roll-forward unrestricted.
    Synced,
}

impl RecoveryPhase {
    /// Short lowercase name, used in timeline events and assertions.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPhase::Running => "running",
            RecoveryPhase::Logging => "logging",
            RecoveryPhase::Replaying { .. } => "replaying",
            RecoveryPhase::Synced => "synced",
        }
    }

    /// True in `Logging` or `Replaying`: recovery information is still
    /// outstanding (the old `is_recovering()`).
    pub fn is_recovering(&self) -> bool {
        matches!(self, RecoveryPhase::Logging | RecoveryPhase::Replaying { .. })
    }
}

impl std::fmt::Display for RecoveryPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryPhase::Replaying { progress } => write!(f, "replaying({progress})"),
            other => f.write_str(other.name()),
        }
    }
}

/// The typed recovery state machine of one rank incarnation.
///
/// Owns the rollback-handshake bookkeeping (who has answered, when we
/// last rebroadcast) and enforces the legal transition set documented
/// on the module. All mutating methods return the phase transition
/// they caused, if any, so the caller can emit timeline events.
#[derive(Debug)]
pub struct RecoveryMachine {
    phase: RecoveryPhase,
    /// Which ranks have answered our `ROLLBACK` (self counts).
    responded: Vec<bool>,
    /// Whether the TEL event logger has answered (vacuously true when
    /// the protocol uses none).
    logger_synced: bool,
    last_broadcast: Instant,
    started: Instant,
}

/// A phase change, reported as `(from, to)` names.
pub type Transition = (&'static str, &'static str);

impl RecoveryMachine {
    /// A machine in `Running` for an `n`-rank system, created at `now`
    /// (the kernel clock — virtual under deterministic simulation).
    pub fn new(n: usize, now: Instant) -> Self {
        RecoveryMachine {
            phase: RecoveryPhase::Running,
            responded: vec![false; n],
            logger_synced: true,
            last_broadcast: now,
            started: now,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> &RecoveryPhase {
        &self.phase
    }

    /// True while recovery information is outstanding.
    pub fn is_recovering(&self) -> bool {
        self.phase.is_recovering()
    }

    /// `Running → Logging`: the incarnation `me` has restored its
    /// checkpoint and is about to broadcast `ROLLBACK`.
    ///
    /// # Panics
    ///
    /// From any phase but `Running` — one incarnation recovers at most
    /// once; a second failure spawns a fresh incarnation (and machine).
    pub fn begin(&mut self, me: Rank, needs_logger: bool, now: Instant) -> Transition {
        assert!(
            matches!(self.phase, RecoveryPhase::Running),
            "recovery state machine: begin() in phase {}, only legal in running",
            self.phase
        );
        self.responded.iter_mut().for_each(|r| *r = false);
        self.responded[me] = true;
        self.logger_synced = !needs_logger;
        self.started = now;
        self.last_broadcast = now;
        self.phase = RecoveryPhase::Logging;
        ("running", "logging")
    }

    /// A survivor's `RESPONSE` arrived. Returns `(newly_recorded,
    /// transition)`; duplicates and post-`Synced` stragglers are legal
    /// no-ops.
    ///
    /// # Panics
    ///
    /// In `Running` (debug builds): a `RESPONSE` can only answer a
    /// `ROLLBACK`, and `Running` incarnations never broadcast one.
    pub fn note_response(&mut self, from: Rank) -> (bool, Option<Transition>) {
        debug_assert!(
            !matches!(self.phase, RecoveryPhase::Running),
            "RESPONSE from rank {from} while running (never broadcast ROLLBACK)"
        );
        if !self.phase.is_recovering() || self.responded[from] {
            return (false, None);
        }
        self.responded[from] = true;
        (true, self.note_progress())
    }

    /// The event logger answered our `LOG_QUERY`. Duplicates and
    /// post-`Synced` stragglers are legal no-ops.
    pub fn note_logger_synced(&mut self) -> (bool, Option<Transition>) {
        debug_assert!(
            !matches!(self.phase, RecoveryPhase::Running),
            "logger answer while running (never queried)"
        );
        if !self.phase.is_recovering() || self.logger_synced {
            return (false, None);
        }
        self.logger_synced = true;
        (true, self.note_progress())
    }

    fn note_progress(&mut self) -> Option<Transition> {
        match &mut self.phase {
            RecoveryPhase::Logging => {
                self.phase = RecoveryPhase::Replaying { progress: 1 };
                Some(("logging", "replaying"))
            }
            RecoveryPhase::Replaying { progress } => {
                *progress += 1;
                None
            }
            _ => unreachable!("note_progress gated on is_recovering"),
        }
    }

    /// Transition to `Synced` if every survivor and the logger have
    /// answered. Returns `(sync_ns, transition)` on the edge — the
    /// nanoseconds spent collecting recovery information.
    pub fn try_complete(&mut self, now: Instant) -> Option<(u64, Transition)> {
        if !self.phase.is_recovering() {
            return None;
        }
        if self.logger_synced && self.responded.iter().all(|&r| r) {
            let from = self.phase.name();
            self.phase = RecoveryPhase::Synced;
            let sync_ns = now.saturating_duration_since(self.started).as_nanos() as u64;
            Some((sync_ns, (from, "synced")))
        } else {
            None
        }
    }

    /// Ranks that have not answered yet (rebroadcast targets).
    pub fn pending_targets(&self) -> Vec<Rank> {
        self.responded
            .iter()
            .enumerate()
            .filter(|(_, &r)| !r)
            .map(|(k, _)| k)
            .collect()
    }

    /// Is the event logger's answer still outstanding?
    pub fn needs_logger_sync(&self) -> bool {
        !self.logger_synced
    }

    /// Should `ROLLBACK` be rebroadcast (unresponsive peers may have
    /// been dead for the first broadcast)?
    pub fn rebroadcast_due(&self, interval: Duration, now: Instant) -> bool {
        self.is_recovering() && now.saturating_duration_since(self.last_broadcast) >= interval
    }

    /// A (re)broadcast just went out.
    pub fn note_broadcast(&mut self, now: Instant) {
        self.last_broadcast = now;
    }
}

/// The checkpoint/recovery layer: the recovery machine plus everything
/// a checkpoint durably captures on the send side — the sender log,
/// checkpoint-time counter snapshots — and the checkpoint-store
/// plumbing. The live `last_send_index` / `rollback_last_send_index`
/// vectors moved to the kernel as lock-free [`crate::ring::AtomicCounters`]
/// (the send fast path reads them without this lock); their *writes*
/// during recovery still happen under this lock, which is what makes
/// the suppression re-check in `app_send`'s slow path authoritative.
pub(crate) struct RecoveryLayer {
    pub machine: RecoveryMachine,
    /// `last_send_index` as restored from the checkpoint (zero on a
    /// first incarnation). Sends at or below this bound happened
    /// before the checkpoint, so re-execution will never regenerate
    /// them — if one was still sitting in the dead incarnation's
    /// retransmission window, only the checkpointed sender log can
    /// resupply it.
    pub restored_send_index: CounterVector,
    /// `last_deliver_index` at our last checkpoint (per peer).
    pub last_ckpt_deliver_index: CounterVector,
    /// Highest `CHECKPOINT_ADVANCE` horizon received from each peer.
    /// With [`crate::RunConfig::log_gc_lag`] set, log release trails
    /// this by one advance, retaining one extra generation of entries
    /// for node-loss restores that fall back a generation.
    pub peer_ckpt_advance: CounterVector,
    /// The sender-based message log (line 12).
    pub log: SenderLog,
    pub ckpt_store: CheckpointStore,
    pub ckpt_version: u64,
    pub last_ckpt_at: Instant,
    pub steps_at_ckpt: u64,
    /// Distinguishes `ROLLBACK` rebroadcasts.
    pub rollback_epoch: u64,
}

impl RecoveryLayer {
    pub fn new(n: usize, ckpt_store: CheckpointStore, now: Instant) -> Self {
        RecoveryLayer {
            machine: RecoveryMachine::new(n, now),
            restored_send_index: CounterVector::zeroed(n),
            last_ckpt_deliver_index: CounterVector::zeroed(n),
            peer_ckpt_advance: CounterVector::zeroed(n),
            log: SenderLog::new(n),
            ckpt_store,
            ckpt_version: 0,
            last_ckpt_at: now,
            steps_at_ckpt: 0,
            rollback_epoch: 0,
        }
    }

    /// Is a checkpoint due after `step` under `policy`?
    pub fn checkpoint_due(&self, policy: CheckpointPolicy, step: u64, now: Instant) -> bool {
        match policy {
            CheckpointPolicy::EverySteps(k) => k > 0 && step >= self.steps_at_ckpt + k,
            CheckpointPolicy::EveryElapsed(d) => {
                now.saturating_duration_since(self.last_ckpt_at) >= d
            }
            CheckpointPolicy::Never => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lifecycle_with_logger() {
        let mut m = RecoveryMachine::new(3, Instant::now());
        assert_eq!(m.phase(), &RecoveryPhase::Running);
        assert!(!m.is_recovering());

        assert_eq!(m.begin(0, true, Instant::now()), ("running", "logging"));
        assert_eq!(m.phase(), &RecoveryPhase::Logging);
        assert!(m.is_recovering());
        assert!(m.needs_logger_sync());
        assert_eq!(m.pending_targets(), vec![1, 2]);
        assert!(m.try_complete(Instant::now()).is_none(), "nothing answered yet");

        // First response: Logging -> Replaying{1}.
        let (newly, tr) = m.note_response(1);
        assert!(newly);
        assert_eq!(tr, Some(("logging", "replaying")));
        assert_eq!(m.phase(), &RecoveryPhase::Replaying { progress: 1 });

        // Duplicate response: legal no-op, no progress.
        let (newly, tr) = m.note_response(1);
        assert!(!newly);
        assert!(tr.is_none());
        assert_eq!(m.phase(), &RecoveryPhase::Replaying { progress: 1 });

        // Second response and logger: progress without phase change.
        assert_eq!(m.note_response(2), (true, None));
        assert_eq!(m.phase(), &RecoveryPhase::Replaying { progress: 2 });
        assert!(m.try_complete(Instant::now()).is_none(), "logger still outstanding");
        assert_eq!(m.note_logger_synced(), (true, None));
        assert_eq!(m.phase(), &RecoveryPhase::Replaying { progress: 3 });

        let (sync_ns, tr) = m.try_complete(Instant::now()).expect("complete");
        assert_eq!(tr, ("replaying", "synced"));
        let _ = sync_ns;
        assert_eq!(m.phase(), &RecoveryPhase::Synced);
        assert!(!m.is_recovering());

        // Stale straggler after Synced: legal no-op, never re-enters.
        assert_eq!(m.note_response(2), (false, None));
        assert_eq!(m.note_logger_synced(), (false, None));
        assert_eq!(m.phase(), &RecoveryPhase::Synced);
        assert!(m.try_complete(Instant::now()).is_none());
    }

    #[test]
    fn degenerate_single_rank_goes_logging_to_synced() {
        let mut m = RecoveryMachine::new(1, Instant::now());
        m.begin(0, false, Instant::now());
        assert_eq!(m.phase(), &RecoveryPhase::Logging);
        let (_, tr) = m.try_complete(Instant::now()).expect("nothing to collect");
        assert_eq!(tr, ("logging", "synced"));
        assert_eq!(m.phase(), &RecoveryPhase::Synced);
    }

    #[test]
    fn rebroadcast_clock() {
        let mut m = RecoveryMachine::new(2, Instant::now());
        assert!(
            !m.rebroadcast_due(Duration::ZERO, Instant::now()),
            "running never rebroadcasts"
        );
        m.begin(0, false, Instant::now());
        std::thread::sleep(Duration::from_millis(1));
        assert!(m.rebroadcast_due(Duration::from_micros(1), Instant::now()));
        m.note_broadcast(Instant::now());
        assert!(!m.rebroadcast_due(Duration::from_secs(60), Instant::now()));
    }

    #[test]
    #[should_panic(expected = "only legal in running")]
    fn begin_twice_is_illegal() {
        let mut m = RecoveryMachine::new(2, Instant::now());
        m.begin(0, false, Instant::now());
        m.begin(0, false, Instant::now());
    }

    #[test]
    #[should_panic(expected = "only legal in running")]
    fn begin_after_synced_is_illegal() {
        let mut m = RecoveryMachine::new(1, Instant::now());
        m.begin(0, false, Instant::now());
        m.try_complete(Instant::now()).expect("degenerate sync");
        m.begin(0, false, Instant::now());
    }

    #[test]
    #[should_panic(expected = "while running")]
    fn response_while_running_is_a_bug() {
        let mut m = RecoveryMachine::new(2, Instant::now());
        let out = m.note_response(1);
        // Debug builds never reach this point — the debug_assert in
        // note_response fires first. Release builds tolerate the
        // straggler as a no-op; verify that, then panic explicitly so
        // the should_panic expectation holds in both build modes.
        assert_eq!(out, (false, None));
        assert_eq!(m.phase(), &RecoveryPhase::Running);
        panic!("response while running is tolerated in release");
    }

    #[test]
    fn display_names() {
        assert_eq!(RecoveryPhase::Running.to_string(), "running");
        assert_eq!(RecoveryPhase::Logging.to_string(), "logging");
        assert_eq!(
            RecoveryPhase::Replaying { progress: 4 }.to_string(),
            "replaying(4)"
        );
        assert_eq!(RecoveryPhase::Synced.to_string(), "synced");
        assert_eq!(RecoveryPhase::Replaying { progress: 4 }.name(), "replaying");
    }
}
