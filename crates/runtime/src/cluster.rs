//! The cluster harness: spawns rank threads, injects failures,
//! respawns incarnations, runs the TEL event-logger service, and
//! collects results — the reproduction's equivalent of the paper's
//! testbed scripts.

use crate::config::RunConfig;
use crate::detector::MembershipTable;
use crate::engine::Engine;
use crate::events::{Event, EventKind, EventSink};
use crate::fault::{Fault, StepStatus};
use crate::kernel::Kernel;
use crate::process::{RankApp, RankCtx};
use crate::replicator::{Replicator, ReplicatorConfig, ReplicatorStats};
use crate::service::spawn_event_logger;
use crate::transport::DataPlaneStats;
use lclog_core::{Rank, TrackingStats};
use std::collections::HashMap;
use lclog_simnet::{NetConfig, SimNet, StorageChaos};
use lclog_stable::{
    CheckpointStore, DiskStore, FaultyRemote, MemRemote, MemStore, RemoteStore, StableStorage,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One planned failure: the given incarnation of `rank` crashes when
/// its step counter reaches `at_step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kill {
    /// Victim rank.
    pub rank: Rank,
    /// Crash before executing this step.
    pub at_step: u64,
    /// Which incarnation to kill (1 = the original process; higher
    /// values test repeated failures).
    pub incarnation: u64,
    /// Node loss: wipe the victim's local stable store along with the
    /// process, forcing the respawn to restore from the remote.
    pub wipe: bool,
    /// Also damage the victim's newest remote generation (an upload
    /// torn by the node's death), forcing the restore to fall back
    /// one generation. Only meaningful together with `wipe`.
    pub corrupt_remote: bool,
}

/// Deterministic failure-injection schedule.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    kills: Vec<Kill>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kill the original incarnation of `rank` at `at_step`.
    pub fn kill_at(rank: Rank, at_step: u64) -> Self {
        Self::none().and_kill(rank, at_step)
    }

    /// Add another first-incarnation kill (multi-failure scenarios).
    pub fn and_kill(mut self, rank: Rank, at_step: u64) -> Self {
        self.kills.push(Kill {
            rank,
            at_step,
            incarnation: 1,
            wipe: false,
            corrupt_remote: false,
        });
        self
    }

    /// Add a kill of a specific incarnation (repeated-failure tests).
    pub fn and_kill_incarnation(mut self, rank: Rank, at_step: u64, incarnation: u64) -> Self {
        self.kills.push(Kill {
            rank,
            at_step,
            incarnation,
            wipe: false,
            corrupt_remote: false,
        });
        self
    }

    /// Kill the original incarnation of `rank` at `at_step` AND wipe
    /// its local stable store — node loss, not just process loss.
    pub fn kill_wipe_at(rank: Rank, at_step: u64) -> Self {
        Self::none().and_kill_wipe(rank, at_step)
    }

    /// Add a node-loss kill (process + local store).
    pub fn and_kill_wipe(mut self, rank: Rank, at_step: u64) -> Self {
        self.kills.push(Kill {
            rank,
            at_step,
            incarnation: 1,
            wipe: true,
            corrupt_remote: false,
        });
        self
    }

    /// Add a node-loss kill that also tears the victim's newest
    /// remote generation, exercising the restore fallback.
    pub fn and_kill_wipe_corrupt(mut self, rank: Rank, at_step: u64) -> Self {
        self.kills.push(Kill {
            rank,
            at_step,
            incarnation: 1,
            wipe: true,
            corrupt_remote: true,
        });
        self
    }

    /// The planned kill for a given incarnation of `rank`, if any.
    pub fn kill_for(&self, rank: Rank, incarnation: u64) -> Option<&Kill> {
        self.kills
            .iter()
            .find(|k| k.rank == rank && k.incarnation == incarnation)
    }

    /// A seeded pseudo-random schedule of `count` kills over `n` ranks
    /// with crash points up to `max_step`. Roughly every fourth kill
    /// targets the *second* incarnation of an already-killed rank —
    /// i.e. it fires while (or right after) that rank is recovering,
    /// the repeated-failure case of the paper's Fig. 2. Deterministic
    /// in `seed`, and every `(rank, incarnation)` pair is distinct so
    /// each planned kill actually fires exactly once.
    pub fn seeded_random(seed: u64, n: usize, count: usize, max_step: u64) -> Self {
        fn mix(mut z: u64) -> u64 {
            // splitmix64 finalizer.
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        assert!(n > 0, "need at least one rank");
        let mut kills: Vec<Kill> = Vec::with_capacity(count);
        let max_step = max_step.max(1);
        let mut stream = seed;
        for i in 0..count {
            stream = mix(stream ^ i as u64);
            let at_step = 1 + stream % max_step;
            let want_recovery_kill = i % 4 == 3;
            let prior_first_kill = kills
                .iter()
                .find(|k| {
                    k.incarnation == 1
                        && !kills
                            .iter()
                            .any(|other| other.rank == k.rank && other.incarnation == 2)
                })
                .map(|k| k.rank);
            let (rank, incarnation) = match (want_recovery_kill, prior_first_kill) {
                (true, Some(rank)) => (rank, 2),
                _ => {
                    // Probe for a rank whose first incarnation is not
                    // already scheduled to die.
                    let mut rank = (mix(stream) % n as u64) as Rank;
                    let mut probes = 0;
                    while kills.iter().any(|k| k.rank == rank && k.incarnation == 1) {
                        rank = (rank + 1) % n;
                        probes += 1;
                        if probes == n {
                            break;
                        }
                    }
                    if probes == n {
                        // Every rank already dies once; stack a
                        // second-incarnation kill instead.
                        let rank = (mix(stream) % n as u64) as Rank;
                        (rank, 2)
                    } else {
                        (rank, 1)
                    }
                }
            };
            if kills
                .iter()
                .any(|k| k.rank == rank && k.incarnation == incarnation)
            {
                continue; // duplicate pair: drop rather than double-count
            }
            kills.push(Kill {
                rank,
                at_step,
                incarnation,
                wipe: false,
                corrupt_remote: false,
            });
        }
        FailurePlan { kills }
    }

    /// Number of planned kills.
    pub fn len(&self) -> usize {
        self.kills.len()
    }

    /// True when no kills are planned.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    pub(crate) fn should_kill(&self, rank: Rank, incarnation: u64, step: u64) -> bool {
        self.kills
            .iter()
            .any(|k| k.rank == rank && k.incarnation == incarnation && step >= k.at_step)
    }
}

/// Where checkpoints and the TEL/PES event log live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StorageKind {
    /// In-process store (default): crash survival is modelled by the
    /// runtime never reading volatile state back after a kill.
    #[default]
    Memory,
    /// Real files under the given directory — durable across OS
    /// processes, for demos and paranoia.
    Disk(PathBuf),
}

/// Remote durability for a cluster run: the backend object store and
/// the replication pipeline shipping into it.
#[derive(Clone)]
pub struct RemoteConfig {
    /// The backend object store.
    pub store: Arc<dyn RemoteStore>,
    /// Replication pipeline knobs.
    pub replicator: ReplicatorConfig,
}

impl std::fmt::Debug for RemoteConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteConfig")
            .field("replicator", &self.replicator)
            .finish_non_exhaustive()
    }
}

impl RemoteConfig {
    /// Ship to the given backend with default replicator knobs.
    pub fn new(store: Arc<dyn RemoteStore>) -> Self {
        RemoteConfig {
            store,
            replicator: ReplicatorConfig::default(),
        }
    }

    /// A healthy in-memory backend.
    pub fn in_memory() -> Self {
        Self::new(Arc::new(MemRemote::new()))
    }

    /// A fault-injected in-memory backend driven by the given chaos
    /// schedule. Also returns the `FaultyRemote` handle so tests can
    /// force wall-clock outages with `set_available`.
    pub fn faulty(chaos: StorageChaos) -> (Self, Arc<FaultyRemote<MemRemote>>) {
        let remote = Arc::new(FaultyRemote::new(MemRemote::new(), chaos));
        (
            Self::new(Arc::clone(&remote) as Arc<dyn RemoteStore>),
            remote,
        )
    }

    /// Builder-style replicator knob override.
    pub fn with_replicator(mut self, cfg: ReplicatorConfig) -> Self {
        self.replicator = cfg;
        self
    }
}

/// Full configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of application ranks.
    pub n: usize,
    /// Runtime (protocol / engine / checkpoint) configuration.
    pub run: RunConfig,
    /// Fabric configuration.
    pub net: NetConfig,
    /// Failure injection schedule.
    pub failures: FailurePlan,
    /// Stable-storage backend.
    pub storage: StorageKind,
    /// Collect a structured fault-tolerance timeline into
    /// [`RunReport::timeline`].
    pub trace: bool,
    /// Abort the run (with an error) after this much wall time — a
    /// watchdog against protocol deadlocks.
    pub max_wall: Duration,
    /// Durable log shipping to a remote store (`None` = local-only
    /// stable storage, the paper's baseline).
    pub remote: Option<RemoteConfig>,
    /// Global-rank offset of this job's rank namespace. The runtime
    /// itself always sees local ranks `0..n`; the offset shifts every
    /// durable artefact (checkpoint generations, remote manifest
    /// entries, node-loss restores) into `rank_base..rank_base + n`,
    /// so concurrent tenant jobs can share one storage backend and one
    /// replication pipeline without colliding. Leave 0 for standalone
    /// runs.
    pub rank_base: usize,
}

impl ClusterConfig {
    /// Defaults: direct fabric, no failures, 60 s watchdog.
    pub fn new(n: usize, run: RunConfig) -> Self {
        ClusterConfig {
            n,
            run,
            net: NetConfig::direct(),
            failures: FailurePlan::none(),
            storage: StorageKind::Memory,
            trace: false,
            max_wall: Duration::from_secs(60),
            remote: None,
            rank_base: 0,
        }
    }

    /// Builder-style rank-namespace override (see
    /// [`ClusterConfig::rank_base`]).
    pub fn with_rank_base(mut self, base: usize) -> Self {
        self.rank_base = base;
        self
    }

    /// Builder-style fabric override.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Builder-style failure plan override.
    pub fn with_failures(mut self, failures: FailurePlan) -> Self {
        self.failures = failures;
        self
    }

    /// Builder-style stable-storage override.
    pub fn with_storage(mut self, storage: StorageKind) -> Self {
        self.storage = storage;
        self
    }

    /// Builder-style timeline collection toggle.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Builder-style remote durability override.
    pub fn with_remote(mut self, remote: RemoteConfig) -> Self {
        self.remote = Some(remote);
        self
    }

    /// Builder-style watchdog override (long scaling runs need more
    /// than the 60 s default).
    pub fn with_max_wall(mut self, max_wall: Duration) -> Self {
        self.max_wall = max_wall;
        self
    }
}

/// What a completed cluster run reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-rank application digests (recovery correctness: equal to a
    /// fault-free run's digests).
    pub digests: Vec<u64>,
    /// Per-rank tracking statistics, merged across incarnations.
    pub per_rank_stats: Vec<TrackingStats>,
    /// Cluster-wide sum of `per_rank_stats`.
    pub stats: TrackingStats,
    /// Wall-clock duration of the run (Fig. 8's accomplishment time).
    pub wall: Duration,
    /// Number of injected crashes that actually fired.
    pub kills: u32,
    /// Fabric envelope count (app + control + recovery traffic).
    pub net_msgs: u64,
    /// Fabric payload bytes.
    pub net_bytes: u64,
    /// Transport-layer retransmissions (timeout and NACK driven).
    pub retransmits: u64,
    /// Envelopes the chaos fabric silently dropped.
    pub chaos_dropped: u64,
    /// Envelopes the chaos fabric delivered twice.
    pub chaos_duplicated: u64,
    /// Envelopes the chaos fabric flipped a bit in.
    pub chaos_corrupted: u64,
    /// Per-rank data-plane byte accounting (frames built, payload
    /// copies, zero-copy resends, ack coalescing), merged across
    /// incarnations.
    pub per_rank_data_plane: Vec<DataPlaneStats>,
    /// Cluster-wide sum of `per_rank_data_plane`.
    pub data_plane: DataPlaneStats,
    /// Structured fault-tolerance timeline (empty unless
    /// [`ClusterConfig::trace`] was set).
    pub timeline: Vec<Event>,
    /// Failure-detection bookkeeping (`None` unless the run had a
    /// detector configured).
    pub detector: Option<DetectorReport>,
    /// Replication bookkeeping (`None` unless the run had a remote
    /// configured).
    pub replicator: Option<ReplicatorStats>,
}

/// What a detected-failures run learned about its own detector: how
/// fast real deaths were certified and how many live incarnations a
/// false suspicion fenced.
#[derive(Debug, Clone, Default)]
pub struct DetectorReport {
    /// Death declarations certified by the membership arbiter.
    pub declarations: u32,
    /// Live incarnations fenced by a false suspicion; each one cost a
    /// full crash-and-rejoin cycle.
    pub false_kills: u32,
    /// Per injected kill that was certified: time from the crash to
    /// the arbiter's declaration.
    pub detection_latency: Vec<Duration>,
    /// Respawns that started on the gate-timeout fallback instead of a
    /// certified declaration (no survivor managed to detect in time).
    pub gate_timeouts: u32,
}

impl DetectorReport {
    /// Mean declared-dead latency across certified kills.
    pub fn mean_latency(&self) -> Option<Duration> {
        if self.detection_latency.is_empty() {
            return None;
        }
        Some(self.detection_latency.iter().sum::<Duration>() / self.detection_latency.len() as u32)
    }
}

enum Outcome {
    Done {
        rank: Rank,
        digest: u64,
        stats: TrackingStats,
        data_plane: DataPlaneStats,
    },
    Killed {
        rank: Rank,
        stats: TrackingStats,
        data_plane: DataPlaneStats,
        /// True when the death was a membership fencing of a live
        /// incarnation (false suspicion), not an injected kill.
        fenced: bool,
        /// Node loss: wipe the local store before respawning.
        wipe: bool,
        /// Also tear the victim's newest remote generation.
        corrupt_remote: bool,
    },
    /// A respawn gate fell through on its timeout (bookkeeping only).
    GateTimeout,
}

/// Stable-storage wrapper that mirrors durable writes into the
/// replicator: checkpoint-generation puts and append-log records are
/// offered (non-blocking) after landing locally. Deletes are local
/// only — remote retention is the manifest's business, and keeping
/// superseded generations remotely deepens the restore fallback.
pub(crate) struct ShippingStorage {
    inner: Arc<dyn StableStorage>,
    repl: Arc<Replicator>,
}

impl ShippingStorage {
    pub(crate) fn new(inner: Arc<dyn StableStorage>, repl: Arc<Replicator>) -> Self {
        ShippingStorage { inner, repl }
    }
}

impl StableStorage for ShippingStorage {
    fn put(&self, key: &str, bytes: &[u8]) {
        self.inner.put(key, bytes);
        if key.starts_with("ckpt/") {
            self.repl.offer_generation(key, bytes);
        }
    }

    fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.get(key)
    }

    fn delete(&self, key: &str) {
        self.inner.delete(key);
    }

    fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.inner.keys_with_prefix(prefix)
    }

    fn append(&self, key: &str, record: &[u8]) {
        self.inner.append(key, record);
        self.repl.offer_record(key, record);
    }

    fn read_log(&self, key: &str) -> Vec<Vec<u8>> {
        self.inner.read_log(key)
    }

    fn truncate_log(&self, key: &str) {
        self.inner.truncate_log(key)
    }
}

/// Entry point for running applications under rollback recovery.
pub struct Cluster;

impl Cluster {
    /// Run `app` on `cfg.n` ranks to completion, injecting the
    /// configured failures. Returns an error string if the watchdog
    /// fires.
    pub fn run<A: RankApp>(cfg: &ClusterConfig, app: A) -> Result<RunReport, String> {
        let n = cfg.n;
        assert!(n > 0, "cluster needs at least one rank");
        let net = SimNet::new(n + 1, cfg.net.clone());
        let raw_storage: Arc<dyn StableStorage> = match &cfg.storage {
            StorageKind::Memory => Arc::new(MemStore::new()),
            StorageKind::Disk(dir) => Arc::new(
                DiskStore::open(dir).map_err(|e| format!("open disk store: {e}"))?,
            ),
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let sink = if cfg.trace {
            EventSink::recording()
        } else {
            EventSink::disabled()
        };
        // With a remote configured, durable writes flow through the
        // shipping wrapper; restores install straight into the raw
        // store (avoiding a re-ship of what just came down).
        let (replicator, storage) = match &cfg.remote {
            Some(rc) => {
                let repl = Replicator::spawn(
                    Arc::clone(&rc.store),
                    rc.replicator.clone(),
                    sink.clone(),
                    cfg.rank_base + crate::logger_rank(n),
                );
                let wrapped: Arc<dyn StableStorage> = Arc::new(ShippingStorage::new(
                    Arc::clone(&raw_storage),
                    Arc::clone(&repl),
                ));
                (Some(repl), wrapped)
            }
            None => (None, Arc::clone(&raw_storage)),
        };
        let ckpts = CheckpointStore::new(Arc::clone(&storage)).with_rank_base(cfg.rank_base);
        // Replicated checkpoints imply a node-loss restore may fall
        // back one generation; survivors must then keep one extra
        // generation of sender-log entries resendable.
        let run_cfg = {
            let mut rc = cfg.run.clone();
            if cfg.remote.is_some() {
                rc.log_gc_lag = true;
            }
            rc
        };
        let app = Arc::new(app);
        let plan = Arc::new(cfg.failures.clone());
        let (tx, rx) = crossbeam::channel::unbounded::<Outcome>();

        // Detected-failures mode: the stable service slot doubles as
        // the membership arbiter, so the service runs even for
        // protocols that need no event logger.
        let membership = cfg
            .run
            .detector
            .map(|_| Arc::new(MembershipTable::new(n)));
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        if cfg.run.protocol.uses_event_logger() || membership.is_some() {
            handles.push(spawn_event_logger(
                net.clone(),
                net.attach(crate::logger_rank(n)),
                Arc::clone(&storage),
                Arc::clone(&shutdown),
                sink.clone(),
                membership.clone(),
            ));
        }
        // Attach every endpoint *before* spawning any rank thread: a
        // send to a not-yet-attached slot would be dropped as if the
        // destination were dead.
        let endpoints: Vec<_> = (0..n).map(|rank| net.attach(rank)).collect();
        for (rank, endpoint) in endpoints.into_iter().enumerate() {
            handles.push(spawn_rank(
                Arc::clone(&app),
                rank,
                n,
                run_cfg.clone(),
                net.clone(),
                endpoint,
                ckpts.clone(),
                Arc::clone(&plan),
                1,
                Arc::clone(&shutdown),
                sink.clone(),
                tx.clone(),
                membership.clone(),
                replicator.clone(),
                Arc::clone(&raw_storage),
            ));
        }

        let start = Instant::now();
        let mut digests: Vec<Option<u64>> = vec![None; n];
        let mut per_rank_stats = vec![TrackingStats::default(); n];
        let mut per_rank_data_plane = vec![DataPlaneStats::default(); n];
        let mut incarnations = vec![1u64; n];
        let mut kills = 0u32;
        let mut false_kills = 0u32;
        let mut gate_timeouts = 0u32;
        // Detection-latency bookkeeping: when each incarnation died
        // (the rank thread reports its own death immediately, so the
        // receive time is the crash time to within scheduling noise).
        let mut killed_at: HashMap<(Rank, u64), Instant> = HashMap::new();

        while digests.iter().any(Option::is_none) {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Outcome::Done {
                    rank,
                    digest,
                    stats,
                    data_plane,
                }) => {
                    digests[rank] = Some(digest);
                    per_rank_stats[rank].merge(&stats);
                    per_rank_data_plane[rank].merge(&data_plane);
                }
                Ok(Outcome::Killed {
                    rank,
                    stats,
                    data_plane,
                    fenced,
                    wipe,
                    corrupt_remote,
                }) => {
                    kills += 1;
                    if fenced {
                        false_kills += 1;
                        // A fenced incarnation was falsely declared —
                        // its digest (if any) is void; it must rejoin.
                        digests[rank] = None;
                    } else {
                        killed_at.insert((rank, incarnations[rank]), Instant::now());
                    }
                    // Node loss: the local store dies with the node.
                    // Let the replicator drain before the replacement
                    // comes up: the respawn must not restore against a
                    // manifest staler than what survivors can still
                    // replay (a backend outage in progress is ridden
                    // out here, bounded). For the torn-upload variant,
                    // then damage the newest remote generation — which
                    // after the drain is the one the victim just
                    // checkpointed.
                    if wipe {
                        if let Some(repl) = &replicator {
                            repl.wait_synced(Duration::from_secs(2));
                            if corrupt_remote {
                                repl.corrupt_newest_remote_generation(cfg.rank_base + rank);
                            }
                        }
                        let prefix = CheckpointStore::prefix(cfg.rank_base + rank);
                        let gens = raw_storage.keys_with_prefix(&prefix);
                        for key in &gens {
                            raw_storage.delete(key);
                        }
                        sink.emit(
                            rank,
                            EventKind::StoreWiped {
                                generations: gens.len(),
                            },
                        );
                    }
                    per_rank_stats[rank].merge(&stats);
                    per_rank_data_plane[rank].merge(&data_plane);
                    incarnations[rank] += 1;
                    let endpoint = net.respawn(rank);
                    handles.push(spawn_rank(
                        Arc::clone(&app),
                        rank,
                        n,
                        run_cfg.clone(),
                        net.clone(),
                        endpoint,
                        ckpts.clone(),
                        Arc::clone(&plan),
                        incarnations[rank],
                        Arc::clone(&shutdown),
                        sink.clone(),
                        tx.clone(),
                        membership.clone(),
                        replicator.clone(),
                        Arc::clone(&raw_storage),
                    ));
                }
                Ok(Outcome::GateTimeout) => gate_timeouts += 1,
                Err(_) => {
                    if start.elapsed() > cfg.max_wall {
                        shutdown.store(true, Ordering::Relaxed);
                        for h in handles {
                            let _ = h.join();
                        }
                        if let Some(repl) = &replicator {
                            repl.finish();
                        }
                        return Err(format!(
                            "cluster watchdog fired after {:?} (protocol {}, {} ranks)",
                            cfg.max_wall, cfg.run.protocol, n
                        ));
                    }
                }
            }
        }
        let wall = start.elapsed();
        shutdown.store(true, Ordering::Relaxed);
        for h in handles {
            let _ = h.join();
        }
        let replicator_stats = replicator.map(|repl| {
            repl.finish();
            repl.stats()
        });
        let mut stats = TrackingStats::default();
        for s in &per_rank_stats {
            stats.merge(s);
        }
        let mut data_plane = DataPlaneStats::default();
        for d in &per_rank_data_plane {
            data_plane.merge(d);
        }
        let detector = membership.map(|table| {
            let mut report = DetectorReport {
                false_kills,
                gate_timeouts,
                ..DetectorReport::default()
            };
            for decl in table.declarations() {
                report.declarations += 1;
                // Latency is only meaningful for declarations matching
                // an injected kill; a declaration with no matching
                // death was a false suspicion.
                if let Some(&died) = killed_at.get(&(decl.rank, decl.incarnation)) {
                    report
                        .detection_latency
                        .push(decl.at.saturating_duration_since(died));
                }
            }
            report
        });
        Ok(RunReport {
            digests: digests.into_iter().map(Option::unwrap).collect(),
            per_rank_stats,
            stats,
            wall,
            kills,
            net_msgs: net.stats().msgs_sent(),
            net_bytes: net.stats().bytes_sent(),
            retransmits: net.stats().retransmits(),
            chaos_dropped: net.stats().chaos_dropped(),
            chaos_duplicated: net.stats().chaos_duplicated(),
            chaos_corrupted: net.stats().chaos_corrupted(),
            per_rank_data_plane,
            data_plane,
            timeline: sink.take(),
            detector,
            replicator: replicator_stats,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_rank<A: RankApp>(
    app: Arc<A>,
    rank: Rank,
    n: usize,
    run: RunConfig,
    net: SimNet,
    endpoint: lclog_simnet::Endpoint,
    ckpts: CheckpointStore,
    plan: Arc<FailurePlan>,
    incarnation: u64,
    shutdown: Arc<AtomicBool>,
    sink: EventSink,
    tx: crossbeam::channel::Sender<Outcome>,
    membership: Option<Arc<MembershipTable>>,
    replicator: Option<Arc<Replicator>>,
    raw_storage: Arc<dyn StableStorage>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("lclog-rank-{rank}.{incarnation}"))
        .spawn(move || {
            rank_main(
                app,
                rank,
                n,
                run,
                net,
                endpoint,
                ckpts,
                plan,
                incarnation,
                shutdown,
                sink,
                tx,
                membership,
                replicator,
                raw_storage,
            )
        })
        .expect("spawn rank thread")
}

#[allow(clippy::too_many_arguments)]
fn rank_main<A: RankApp>(
    app: Arc<A>,
    rank: Rank,
    n: usize,
    run: RunConfig,
    net: SimNet,
    endpoint: lclog_simnet::Endpoint,
    ckpts: CheckpointStore,
    plan: Arc<FailurePlan>,
    incarnation: u64,
    shutdown: Arc<AtomicBool>,
    sink: EventSink,
    tx: crossbeam::channel::Sender<Outcome>,
    membership: Option<Arc<MembershipTable>>,
    replicator: Option<Arc<Replicator>>,
    raw_storage: Arc<dyn StableStorage>,
) {
    // Detected-failures mode: a replacement incarnation does not start
    // until the arbiter has *certified* its predecessor dead — the
    // respawn is driven by detection, not by the injection script. The
    // gate-timeout fallback preserves liveness if no survivor can
    // detect (e.g. everyone else is also down).
    if incarnation > 1 {
        if let (Some(table), Some(dcfg)) = (&membership, &run.detector) {
            if !table.wait_floor_above(rank, incarnation - 1, dcfg.gate_timeout)
                && !shutdown.load(Ordering::Relaxed)
            {
                let _ = tx.send(Outcome::GateTimeout);
            }
        }
    }
    let global_rank = ckpts.rank_base() + rank;
    let mut kernel = Kernel::new(rank, n, run, net, ckpts);
    kernel.set_incarnation(incarnation);
    kernel.set_event_sink(sink.clone());
    sink.emit(rank, EventKind::Spawned { incarnation });
    let (mut step, mut state) = if incarnation == 1 {
        (0u64, app.init(rank, n))
    } else {
        // Incarnation: restore the last checkpoint (or the initial
        // state if the process died before ever checkpointing), then
        // announce the rollback (Algorithm 1 lines 40–46).
        let mut image = kernel.load_checkpoint();
        if image.is_none() {
            // An empty local store after a death is the node-loss
            // signature: pull the newest fully-certified generation
            // from the remote, then read it back as usual. Remote
            // manifests speak global rank (the job's namespace).
            if let Some(repl) = &replicator {
                if repl
                    .restore_rank(global_rank, raw_storage.as_ref())
                    .is_some()
                {
                    image = kernel.load_checkpoint();
                }
            }
        }
        // An image whose protocol or application state does not decode
        // is treated like no image at all: restart from the initial
        // state and roll forward through recovery (restore leaves the
        // kernel untouched on error).
        let restored = image.and_then(|image| {
            let (step, app_bytes) = kernel.restore(image).ok()?;
            let state = lclog_wire::decode_from_slice(&app_bytes).ok()?;
            Some((step, state))
        });
        let restored = restored.unwrap_or_else(|| (0u64, app.init(rank, n)));
        kernel.begin_recovery();
        restored
    };

    let mut engine = Engine::new(kernel, endpoint, Arc::clone(&shutdown));
    loop {
        if plan.should_kill(rank, incarnation, step) {
            sink.emit(rank, EventKind::Crashed { step });
            engine.crash();
            let snap = engine.snapshot();
            let kill = plan.kill_for(rank, incarnation);
            let _ = tx.send(Outcome::Killed {
                rank,
                stats: snap.stats,
                data_plane: snap.data_plane,
                fenced: false,
                wipe: kill.map(|k| k.wipe).unwrap_or(false),
                corrupt_remote: kill.map(|k| k.corrupt_remote).unwrap_or(false),
            });
            return;
        }
        let mut ctx = RankCtx::new(&engine, step);
        match app.step(&mut ctx, &mut state) {
            Ok(StepStatus::Continue) => {
                step += 1;
                engine.maybe_checkpoint(|| lclog_wire::encode_to_vec(&state), step);
            }
            Ok(StepStatus::Done) => {
                sink.emit(rank, EventKind::Done { step });
                // A final checkpoint lets every peer release the last
                // log entries referring to us.
                engine.checkpoint_now(lclog_wire::encode_to_vec(&state), step);
                let snap = engine.snapshot();
                let _ = tx.send(Outcome::Done {
                    rank,
                    digest: app.digest(&state),
                    stats: snap.stats,
                    data_plane: snap.data_plane,
                });
                // Stay responsive: peers may still fail and need our
                // logged messages resent.
                engine.serve_until_shutdown();
                if engine.is_fenced() && !shutdown.load(Ordering::Relaxed) {
                    // A false suspicion fenced a *finished* rank. Its
                    // reported digest is void; crash and rejoin like
                    // any other fenced incarnation. Stats were already
                    // reported with the Done outcome, so send empties
                    // to avoid double counting.
                    engine.crash();
                    let _ = tx.send(Outcome::Killed {
                        rank,
                        stats: TrackingStats::default(),
                        data_plane: DataPlaneStats::default(),
                        fenced: true,
                        wipe: false,
                        corrupt_remote: false,
                    });
                }
                return;
            }
            Err(Fault::Killed) => {
                engine.crash();
                let snap = engine.snapshot();
                let kill = plan.kill_for(rank, incarnation);
                let _ = tx.send(Outcome::Killed {
                    rank,
                    stats: snap.stats,
                    data_plane: snap.data_plane,
                    fenced: false,
                    wipe: kill.map(|k| k.wipe).unwrap_or(false),
                    corrupt_remote: kill.map(|k| k.corrupt_remote).unwrap_or(false),
                });
                return;
            }
            Err(Fault::Unreachable(_peer)) => {
                // A peer stayed silent across the whole retransmit
                // budget. Treat it like our own crash: restore from
                // the checkpoint and re-run recovery, so the operation
                // is retried against whatever incarnation of the peer
                // eventually answers. The run watchdog bounds repeated
                // failures. (With a detector configured this fault is
                // never surfaced — exhaustion becomes a suspicion.)
                sink.emit(rank, EventKind::Crashed { step });
                engine.crash();
                let snap = engine.snapshot();
                let _ = tx.send(Outcome::Killed {
                    rank,
                    stats: snap.stats,
                    data_plane: snap.data_plane,
                    fenced: false,
                    wipe: false,
                    corrupt_remote: false,
                });
                return;
            }
            Err(Fault::Fenced) => {
                // The membership service declared this very (live)
                // incarnation dead. Every peer rejects our frames now,
                // so volatile state is forfeit exactly as if we had
                // crashed: unwind and rejoin via the normal rollback
                // path as the next incarnation.
                sink.emit(rank, EventKind::Crashed { step });
                engine.crash();
                let snap = engine.snapshot();
                let _ = tx.send(Outcome::Killed {
                    rank,
                    stats: snap.stats,
                    data_plane: snap.data_plane,
                    fenced: true,
                    wipe: false,
                    corrupt_remote: false,
                });
                return;
            }
            Err(Fault::Desync) | Err(Fault::Collective(_)) => {
                // The tracking merge rejected a gate-approved message
                // (protocol state untrusted), or a collective's
                // contribution pattern broke under it. Either way the
                // incarnation cannot make trustworthy progress:
                // unwind like a crash and rebuild through the normal
                // rollback path.
                sink.emit(rank, EventKind::Crashed { step });
                engine.crash();
                let snap = engine.snapshot();
                let _ = tx.send(Outcome::Killed {
                    rank,
                    stats: snap.stats,
                    data_plane: snap.data_plane,
                    fenced: false,
                    wipe: false,
                    corrupt_remote: false,
                });
                return;
            }
            Err(Fault::Shutdown) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_plan_matching() {
        let plan = FailurePlan::kill_at(2, 10).and_kill_incarnation(2, 5, 2);
        assert!(plan.should_kill(2, 1, 10));
        assert!(plan.should_kill(2, 1, 11));
        assert!(!plan.should_kill(2, 1, 9));
        assert!(!plan.should_kill(1, 1, 10));
        assert!(plan.should_kill(2, 2, 5));
        assert!(!plan.should_kill(2, 3, 99));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn seeded_random_plan_is_deterministic_and_bounded() {
        let a = FailurePlan::seeded_random(42, 8, 6, 100);
        let b = FailurePlan::seeded_random(42, 8, 6, 100);
        assert_eq!(a.kills, b.kills, "same seed replays the same schedule");
        let c = FailurePlan::seeded_random(43, 8, 6, 100);
        assert_ne!(a.kills, c.kills, "different seed, different schedule");
        assert!(!a.is_empty());
        for k in &a.kills {
            assert!(k.rank < 8);
            assert!(k.at_step >= 1 && k.at_step <= 100);
            assert!(k.incarnation == 1 || k.incarnation == 2);
        }
        // Every (rank, incarnation) pair fires at most once.
        for (i, k) in a.kills.iter().enumerate() {
            for other in &a.kills[i + 1..] {
                assert!(!(k.rank == other.rank && k.incarnation == other.incarnation));
            }
        }
        // With six kills requested, at least one targets a recovering
        // incarnation, and its rank also dies once in incarnation 1.
        let recovery_kill = a
            .kills
            .iter()
            .find(|k| k.incarnation == 2)
            .expect("schedule includes a kill during recovery");
        assert!(a
            .kills
            .iter()
            .any(|k| k.rank == recovery_kill.rank && k.incarnation == 1));
    }
}
